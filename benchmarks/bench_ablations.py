"""Ablations over the design choices DESIGN.md calls out.

* FIFO pipeline depth vs added latency (paper footnote 5: the latency
  "depends greatly on the VHDL designer's ability to meet timing
  constraints without pipelining the inject logic excessively");
* CRC fix-up on/off: the §4.3.3 dichotomy between CRC-detected drops and
  valid-but-misaddressed deliveries;
* serial baud rate vs achievable once-mode re-arm rate (campaign pacing);
* short-timeout length vs throughput under STOP deletion.
"""

from benchmarks.conftest import record_result, scaled_ps
from repro.core import FaultInjectorDevice, InjectorSession
from repro.core.faults import control_symbol_swap, replace_bytes
from repro.hw.registers import InjectorConfig, MatchMode
from repro.myrinet.network import build_paper_testbed
from repro.myrinet.symbols import IDLE, STOP
from repro.nftape import Experiment, FaultPlan, WorkloadConfig
from repro.nftape.experiment import TestbedOptions
from repro.nftape.results import ResultTable
from repro.sim import Simulator
from repro.sim.timebase import MS, US, to_ns, to_us


def test_ablation_pipeline_depth_vs_latency(benchmark):
    """Deeper inject pipelines buy timing slack at latency cost."""

    def run():
        rows = []
        for depth in (4, 8, 20, 64, 128):
            sim = Simulator()
            device = FaultInjectorDevice(sim, pipeline_depth=depth)
            build_paper_testbed(sim, device=device).settle()
            rows.append((depth, to_ns(device.pipeline_latency_ps)))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["ablation: pipeline depth vs device transit latency",
             "depth  latency_ns"]
    for depth, latency in rows:
        lines.append(f"{depth:>5}  {latency:.0f}")
    record_result("ablation_pipeline_depth", "\n".join(lines))
    latencies = [latency for _d, latency in rows]
    assert latencies == sorted(latencies)
    # The paper's ~250 ns figure corresponds to the default depth 20.
    default = dict(rows)[20]
    assert 200 <= default <= 350


def test_ablation_crc_fixup_changes_failure_mode(benchmark):
    """Same corruption; the fix-up flag flips the observable from a
    CRC-detected drop to a misaddressed-but-valid delivery."""

    def run(crc_fixup):
        sim = Simulator()
        device = FaultInjectorDevice(sim)
        network = build_paper_testbed(sim, device=device)
        network.settle()
        sparc1 = network.host("sparc1").interface
        sparc2 = network.host("sparc2").interface
        device.configure("R", replace_bytes(
            sparc1.mac.to_bytes()[2:], sparc2.mac.to_bytes()[2:],
            match_mode=MatchMode.ON, crc_fixup=crc_fixup,
        ))
        network.host("pc").interface.send_to(sparc1.mac, b"addressed")
        sim.run_for(2 * MS)
        return sparc1.crc_errors, sparc1.misaddressed_drops

    with_fixup = benchmark.pedantic(lambda: run(True), rounds=1,
                                    iterations=1)
    without_fixup = run(False)
    record_result(
        "ablation_crc_fixup",
        "ablation: CRC fix-up and the §4.3.3 dichotomy\n"
        f"fixup off: crc_errors={without_fixup[0]}, "
        f"misaddressed={without_fixup[1]}  (drop at the link CRC)\n"
        f"fixup on : crc_errors={with_fixup[0]}, "
        f"misaddressed={with_fixup[1]}  (valid frame, wrong address)",
    )
    assert without_fixup == (1, 0)
    assert with_fixup == (0, 1)


def test_ablation_serial_baud_vs_rearm_rate(benchmark):
    """The RS-232 line paces once-mode campaigns: a re-arm command is
    ~6 bytes + an ~11-byte response."""

    def rearm_time(baud):
        sim = Simulator()
        device = FaultInjectorDevice(sim, serial_baud=baud)
        build_paper_testbed(sim, device=device).settle()
        session = InjectorSession(sim, device)
        done = []
        session.arm("R", MatchMode.ONCE, lambda line: done.append(sim.now))
        start = sim.now
        sim.run_for(200 * MS)
        assert done
        return to_us(done[0] - start)

    times = benchmark.pedantic(
        lambda: {baud: rearm_time(baud) for baud in (9600, 38400, 115200)},
        rounds=1, iterations=1,
    )
    lines = ["ablation: serial baud rate vs once-mode re-arm time",
             "baud     rearm_us   max_rearms_per_s"]
    for baud, micros in sorted(times.items()):
        lines.append(f"{baud:>6}  {micros:>9.0f}   {1e6 / micros:>10.0f}")
    record_result("ablation_serial_baud", "\n".join(lines))
    assert times[9600] > times[38400] > times[115200]


def test_ablation_short_timeout_vs_stop_deletion(benchmark):
    """A longer short-period timeout makes deleted STOPs *less* harmful:
    the sender stays stopped longer on its own."""

    def run(periods):
        plan = FaultPlan(
            "RL", control_symbol_swap(STOP, IDLE, MatchMode.ON),
            use_serial=False,
        )
        experiment = Experiment(
            f"stop-deletion-{periods}",
            duration_ps=scaled_ps(6 * MS),
            plan=plan,
            workload_config=WorkloadConfig(send_interval_ps=4 * US),
            testbed_options=TestbedOptions(
                host_kwargs={"rx_drain_factor": 2.0},
            ),
        )
        return experiment.run()

    result_default = benchmark.pedantic(lambda: run(16), rounds=1,
                                        iterations=1)
    lines = [
        "ablation: STOP deletion at the default short timeout",
        f"loss={result_default.loss_rate:.1%} "
        f"truncated={result_default.total_host_counter('truncated_frames')}",
    ]
    record_result("ablation_short_timeout", "\n".join(lines))
    assert result_default.loss_rate > 0.03
