"""Scenario compiler throughput — parse, compile, and codec rates.

The scenario pipeline sits in front of every campaign the DSL starts
(``scenario run``, ``campaign --scenario``, ``POST /campaigns``), so
its cost is pure overhead on top of the engine.  Three rates bound it:

* **compile throughput** — full ``load_scenario`` + ``compile_scenario``
  passes per second over the entire library (yamlish parse included);
* **codec round-trip** — ``scenario_to_json`` / ``scenario_from_json``
  document round-trips per second (the server's ingest path);
* **sweep expansion** — compiled experiments per second for the
  seu-sweep scenario, whose sweep axis fans one document out into many
  experiment specs.

Writes ``BENCH_scenario.json`` at the repo root; the committed snapshot
is the baseline to compare regenerated numbers against.  Compilation is
pure and deterministic, so the digest recorded here must match the
golden corpus (``tests/golden/scenario_*.expected``) — the assert keeps
the benchmark honest about compiling the real library.
"""

import hashlib
import json
import pathlib
import time

from benchmarks.conftest import record_result
from repro.runtime import spec_to_json
from repro.scenario import (
    compile_scenario,
    list_scenarios,
    load_scenario,
    scenario_from_json,
    scenario_to_json,
)

#: Repo-root snapshot: {compile: {...}, codec: {...}, sweep: {...}}.
BENCH_SCENARIO_PATH = (
    pathlib.Path(__file__).parent.parent / "BENCH_scenario.json"
)

COMPILE_PASSES = 20
CODEC_PASSES = 200
SWEEP_PASSES = 50


def _compile_digest(spec) -> str:
    text = json.dumps(spec_to_json(spec), sort_keys=True, separators=(",", ":"))
    return hashlib.blake2b(text.encode("utf-8"), digest_size=16).hexdigest()


def test_scenario_compile_throughput(benchmark):
    names = list_scenarios()
    golden_dir = pathlib.Path(__file__).parent.parent / "tests" / "golden"

    def compile_library():
        t0 = time.perf_counter()
        specs = {}
        for _ in range(COMPILE_PASSES):
            specs = {
                name: compile_scenario(load_scenario(name)) for name in names
            }
        return specs, time.perf_counter() - t0

    specs, compile_wall = benchmark.pedantic(
        compile_library, rounds=1, iterations=1
    )
    assert len(specs) == len(names)
    for name, spec in specs.items():
        expected = golden_dir / f"scenario_{name}.expected"
        assert _compile_digest(spec) == expected.read_text().strip()

    compiles = COMPILE_PASSES * len(names)
    experiments = sum(len(s.experiments) for s in specs.values())
    compile_row = {
        "passes": COMPILE_PASSES,
        "library_scenarios": len(names),
        "wall_s": round(compile_wall, 6),
        "compiles_per_s": (
            round(compiles / compile_wall, 1) if compile_wall else 0.0
        ),
        "experiments_per_library_pass": experiments,
    }

    # Codec round-trip: the server's ingest path re-decodes documents.
    docs = [scenario_to_json(load_scenario(name)) for name in names]
    t0 = time.perf_counter()
    for _ in range(CODEC_PASSES):
        for doc in docs:
            assert scenario_to_json(scenario_from_json(doc)) == doc
    codec_wall = time.perf_counter() - t0
    round_trips = CODEC_PASSES * len(docs)
    codec_row = {
        "passes": CODEC_PASSES,
        "wall_s": round(codec_wall, 6),
        "round_trips_per_s": (
            round(round_trips / codec_wall, 1) if codec_wall else 0.0
        ),
    }

    # Sweep expansion: one document fanning out into N experiments.
    sweep_doc = load_scenario("seu-sweep")
    t0 = time.perf_counter()
    sweep_spec = None
    for _ in range(SWEEP_PASSES):
        sweep_spec = compile_scenario(sweep_doc)
    sweep_wall = time.perf_counter() - t0
    points = len(sweep_spec.experiments)
    sweep_row = {
        "passes": SWEEP_PASSES,
        "sweep_points": points,
        "wall_s": round(sweep_wall, 6),
        "experiments_per_s": (
            round(SWEEP_PASSES * points / sweep_wall, 1)
            if sweep_wall else 0.0
        ),
    }

    document = {
        "generated_by": "benchmarks/bench_scenario.py",
        "schema": (
            "compile -> library pass rates; codec -> document round-trip "
            "rates; sweep -> seu-sweep expansion rates"
        ),
        "compile": compile_row,
        "codec": codec_row,
        "sweep": sweep_row,
    }
    BENCH_SCENARIO_PATH.write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n"
    )

    lines = [
        "Scenario compiler throughput",
        "============================",
        "",
        f"compile : {compile_row['compiles_per_s']:>10.1f} compiles/s "
        f"({len(names)} library scenarios, {COMPILE_PASSES} passes)",
        f"codec   : {codec_row['round_trips_per_s']:>10.1f} round-trips/s "
        f"({CODEC_PASSES} passes)",
        f"sweep   : {sweep_row['experiments_per_s']:>10.1f} experiments/s "
        f"(seu-sweep, {points} points/pass)",
    ]
    record_result("scenario_compiler", "\n".join(lines))
