"""Campaign-pacing sweep: message loss vs injector duty cycle.

The Table 4 loss rates are set by how densely NFTAPE paces the armed
windows.  The sweep varies the GAP->GO duty cycle and shows loss scaling
monotonically from the clean baseline through the paper's 9-11% band up
to the saturated ON-mode figure — the series that connects §3.5 (0%),
Table 4 (~10%) and §4.3.1 (collapse) into one curve.
"""

from benchmarks.conftest import record_result, scaled_ps
from repro.core.faults import control_symbol_swap
from repro.hw.registers import MatchMode
from repro.myrinet.symbols import GAP, GO
from repro.nftape import DutyCyclePlan, Experiment, FaultPlan, WorkloadConfig
from repro.nftape.experiment import TestbedOptions
from repro.sim.timebase import MS, US

WORKLOAD = WorkloadConfig(send_interval_ps=4 * US)
OPTIONS = TestbedOptions(host_kwargs={"rx_drain_factor": 2.0})


def _run(duty):
    config = control_symbol_swap(GAP, GO, MatchMode.ON)
    if duty == 0.0:
        plan = None
    elif duty >= 1.0:
        plan = FaultPlan("RL", config, use_serial=False)
    else:
        period = 10 * MS
        plan = DutyCyclePlan("RL", config,
                             on_ps=int(duty * period),
                             off_ps=int((1 - duty) * period),
                             use_serial=False)
    experiment = Experiment(
        f"duty-{duty:.2f}",
        duration_ps=scaled_ps(10 * MS),
        plan=plan,
        workload_config=WORKLOAD,
        testbed_options=OPTIONS,
    )
    return experiment.run()


def test_loss_vs_duty_cycle(benchmark):
    duties = [0.0, 0.1, 0.3, 1.0]
    results = benchmark.pedantic(
        lambda: [(duty, _run(duty)) for duty in duties],
        rounds=1, iterations=1,
    )
    lines = ["loss vs GAP->GO duty cycle (paper: 0% clean, ~11% paced, "
             "collapse at ON)",
             "duty   sent   received  loss"]
    losses = []
    for duty, result in results:
        losses.append(result.loss_rate)
        lines.append(
            f"{duty:>4.0%}  {result.messages_sent:>6} "
            f"{result.messages_received:>9}  {result.loss_rate:>6.1%}"
        )
    record_result("duty_sweep", "\n".join(lines))

    # Monotone non-decreasing loss with duty (small tolerance for noise).
    for lower, higher in zip(losses, losses[1:]):
        assert higher >= lower - 0.02
    assert losses[0] < 0.02          # clean baseline
    assert losses[-1] > 0.25         # saturated corruption
    # The intermediate duties bracket the paper's Table 4 GAP band.
    assert losses[1] < 0.20
    assert losses[2] > 0.03
