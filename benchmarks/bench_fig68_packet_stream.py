"""Figures 6 and 8 — Myrinet packet structure and the symbol stream.

Exercises the wire format (arbitrary route | 4-byte type | payload |
CRC-8) and the GAP-delimited, control-interleaved symbol stream framing,
measuring encode/parse/assembly throughput.
"""

from benchmarks.conftest import record_result
from repro.myrinet.crc8 import crc8
from repro.myrinet.frames import FrameAssembler
from repro.myrinet.packet import MyrinetPacket, PACKET_TYPE_DATA
from repro.myrinet.symbols import GAP, GO, STOP, data_symbols

PACKETS = [
    MyrinetPacket.for_route([i % 8], PACKET_TYPE_DATA,
                            bytes([i % 251]) * (16 + i % 64))
    for i in range(1, 200)
]


def _stream():
    symbols = []
    for index, packet in enumerate(PACKETS):
        symbols.extend(data_symbols(packet.to_bytes()))
        if index % 3 == 0:
            symbols.append(STOP)   # interleaved control symbols (Fig. 8)
        if index % 5 == 0:
            symbols.append(GO)
        symbols.append(GAP)
        if index % 4 == 0:
            symbols.append(GAP)    # any positive number of GAPs
    return symbols


def test_fig6_packet_encode(benchmark):
    raws = benchmark(lambda: [p.to_bytes() for p in PACKETS])
    assert all(crc8(raw) == 0 for raw in raws)
    record_result(
        "fig68_packet_stream",
        f"Figure 6 wire format: {len(PACKETS)} packets, "
        f"{sum(len(r) for r in raws)} bytes, all CRC-8 clean; "
        f"stream framing recovers every packet with control symbols "
        f"interleaved (Figure 8)",
    )


def test_fig6_packet_parse(benchmark):
    raws = [p.to_bytes() for p in PACKETS]

    def run():
        return [MyrinetPacket.from_bytes(raw, route_len=1) for raw in raws]

    parsed = benchmark(run)
    assert [p.payload for p in parsed] == [p.payload for p in PACKETS]


def test_fig8_stream_assembly(benchmark):
    stream = _stream()

    def run():
        frames = []
        controls = []
        assembler = FrameAssembler(frames.append, controls.append)
        assembler.push_burst(stream)
        return frames, controls

    frames, controls = benchmark(run)
    assert len(frames) == len(PACKETS)
    assert len(controls) == sum(1 for s in stream if s in (STOP, GO))
    for frame, packet in zip(frames, PACKETS):
        assert frame == packet.to_bytes()
