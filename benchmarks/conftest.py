"""Shared plumbing for the reproduction benchmarks.

Every benchmark regenerates one of the paper's tables or figures and
writes its rendered output to ``benchmarks/results/``.  Durations scale
with the ``REPRO_BENCH_SCALE`` environment variable (default 1.0); the
reported quantities are normalized rates and fractions, so the
comparison against the paper is scale-free.
"""

from __future__ import annotations

import os
import pathlib

import pytest

#: Directory where each benchmark drops its rendered table.
RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def bench_scale() -> float:
    """Duration multiplier from the environment."""
    try:
        return max(0.05, float(os.environ.get("REPRO_BENCH_SCALE", "1.0")))
    except ValueError:
        return 1.0


def scaled_ps(base_ps: int) -> int:
    """Scale a base duration by the bench scale."""
    return int(base_ps * bench_scale())


def record_result(name: str, text: str) -> None:
    """Print a rendered table and persist it under results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print()
    print(text)


@pytest.fixture
def results():
    """The record_result helper as a fixture."""
    return record_result
