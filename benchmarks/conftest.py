"""Shared plumbing for the reproduction benchmarks.

Every benchmark regenerates one of the paper's tables or figures and
writes its rendered output to ``benchmarks/results/``.  Durations scale
with the ``REPRO_BENCH_SCALE`` environment variable (default 1.0); the
reported quantities are normalized rates and fractions, so the
comparison against the paper is scale-free.
"""

from __future__ import annotations

import json
import os
import pathlib
from typing import Dict

import pytest

from repro.telemetry import TelemetrySession

#: Directory where each benchmark drops its rendered table.
RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Repo-root perf-trajectory artifact: bench name -> wall/sim-event rates.
BENCH_TELEMETRY_PATH = (
    pathlib.Path(__file__).parent.parent / "BENCH_telemetry.json"
)

#: Per-session accumulator for :data:`BENCH_TELEMETRY_PATH`.
_BENCH_TELEMETRY: Dict[str, Dict[str, float]] = {}


def bench_scale() -> float:
    """Duration multiplier from the environment."""
    try:
        return max(0.05, float(os.environ.get("REPRO_BENCH_SCALE", "1.0")))
    except ValueError:
        return 1.0


def scaled_ps(base_ps: int) -> int:
    """Scale a base duration by the bench scale."""
    return int(base_ps * bench_scale())


def record_result(name: str, text: str) -> None:
    """Print a rendered table and persist it under results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print()
    print(text)


@pytest.fixture
def results():
    """The record_result helper as a fixture."""
    return record_result


@pytest.fixture(autouse=True)
def _bench_telemetry(request):
    """Wrap every benchmark in a telemetry session; collect rates.

    The session's registry receives the kernel's batch accounting
    (``sim.events_fired``) from the instrumented simulator, so each
    bench contributes one ``{wall_s, sim_events, events_per_s}`` row to
    the repo-root ``BENCH_telemetry.json`` perf trajectory.  Telemetry
    observes only — bench results and digests are unchanged.
    """
    session = TelemetrySession(label=request.node.name)
    with session:
        yield
    name = request.node.name
    if name.startswith("test_"):
        name = name[len("test_"):]
    wall_s = session.wall_s or 0.0
    sim_events = int(session.registry.value("sim.events_fired"))
    _BENCH_TELEMETRY[name] = {
        "wall_s": round(wall_s, 6),
        "sim_events": sim_events,
        "events_per_s": round(sim_events / wall_s, 1) if wall_s else 0.0,
    }


def pytest_sessionfinish(session, exitstatus):
    """Persist the perf trajectory once the benchmark session ends."""
    if not _BENCH_TELEMETRY:
        return
    document = {
        "generated_by": "benchmarks/conftest.py",
        "schema": "bench name -> {wall_s, sim_events, events_per_s}",
        "bench_scale": bench_scale(),
        "benches": dict(sorted(_BENCH_TELEMETRY.items())),
    }
    BENCH_TELEMETRY_PATH.write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n"
    )
