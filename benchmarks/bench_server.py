"""Monitoring-service throughput — sustained campaigns/s and
submit->first-event latency under many concurrent streaming clients.

One :class:`~repro.server.MonitorServer` (serial runner, the container
is 1-CPU) faces :data:`CLIENTS` concurrent threads, each repeatedly:

1. ``POST /campaigns`` with a 1-experiment, 1 ms-sim CampaignSpec;
2. opening ``GET /campaigns/{id}/events`` and blocking until the first
   NDJSON event arrives (the synchronously-published
   ``campaign_queued``, replayed from history at stream open);
3. recording the wall time from just before the POST to that first
   event line — the latency a live dashboard actually experiences.

The run then waits for every campaign to complete and reports

* **sustained campaigns/s** — completed campaigns over the wall time
  from first submission to last completion (execution is the
  bottleneck: one ~1 ms-sim campaign costs a few ms of host CPU, and
  the serial runner is deliberately a single thread);
* **p50/p99 submit->first-event latency** — dominated by the server's
  0.05 s stream poll tick, not by campaign execution.

Writes ``BENCH_server.json`` at the repo root; the committed snapshot
is the baseline (1-CPU container — absolute rates are modest and the
p99 includes scheduler noise from 100+ Python threads sharing one
core).
"""

import http.client
import json
import pathlib
import statistics
import threading
import time

from benchmarks.conftest import record_result, scaled_ps
from repro.runtime.spec import CampaignSpec, ExperimentSpec
from repro.runtime.spec_codec import spec_to_json
from repro.server import MonitorServer
from repro.sim.timebase import MS

#: Repo-root snapshot: {throughput: {...}, latency: {...}}.
BENCH_SERVER_PATH = (
    pathlib.Path(__file__).parent.parent / "BENCH_server.json"
)

#: Concurrent client threads (the ISSUE's floor is 100).
CLIENTS = 100
#: Campaigns submitted per client thread.
CAMPAIGNS_PER_CLIENT = 2
#: Wall-clock ceiling for the whole run.
DEADLINE_S = 600.0


def _bench_spec(index: int) -> CampaignSpec:
    duration_ps = max(1 * MS, scaled_ps(1 * MS))
    return CampaignSpec.build(
        f"bench-{index:04d}",
        [ExperimentSpec("only", duration_ps)],
        base_seed=index,
    )


def _submit_and_first_event(host, port, document):
    """POST one campaign, stream until the first event; return
    (campaign_id, latency_s, rejected_429_count)."""
    payload = json.dumps({"spec": document})
    rejections = 0
    start = time.perf_counter()
    while True:
        connection = http.client.HTTPConnection(host, port, timeout=60)
        connection.request("POST", "/campaigns", body=payload)
        response = connection.getresponse()
        body = response.read()
        connection.close()
        if response.status == 202:
            campaign_id = json.loads(body)["id"]
            break
        if response.status == 429:
            rejections += 1
            time.sleep(0.05)
            continue
        raise AssertionError(f"submit failed: {response.status} {body!r}")

    connection = http.client.HTTPConnection(host, port, timeout=60)
    connection.request("GET", f"/campaigns/{campaign_id}/events")
    response = connection.getresponse()
    assert response.status == 200
    first = response.fp.readline()
    latency = time.perf_counter() - start
    connection.close()
    assert json.loads(first)["kind"] == "campaign_queued"
    return campaign_id, latency, rejections


def test_server_throughput_and_latency(benchmark, tmp_path):
    server = MonitorServer(
        root=str(tmp_path / "srv"),
        queue_limit=CLIENTS * CAMPAIGNS_PER_CLIENT,
    )
    server.start()
    host, port = server.address
    documents = [
        spec_to_json(_bench_spec(index))
        for index in range(CLIENTS * CAMPAIGNS_PER_CLIENT)
    ]

    latencies = []
    campaign_ids = []
    rejections = [0]
    errors = []
    lock = threading.Lock()

    def client_main(client_index):
        try:
            for round_index in range(CAMPAIGNS_PER_CLIENT):
                document = documents[
                    client_index * CAMPAIGNS_PER_CLIENT + round_index]
                campaign_id, latency, rejected = _submit_and_first_event(
                    host, port, document)
                with lock:
                    campaign_ids.append(campaign_id)
                    latencies.append(latency)
                    rejections[0] += rejected
        except Exception as exc:  # noqa: BLE001 - surfaced below
            with lock:
                errors.append(f"client {client_index}: {exc}")

    def run_fleet():
        start = time.perf_counter()
        threads = [
            threading.Thread(target=client_main, args=(index,))
            for index in range(CLIENTS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=DEADLINE_S)
        # Wait for the runner to drain every accepted campaign.
        deadline = time.monotonic() + DEADLINE_S
        while time.monotonic() < deadline:
            states = {
                record.id: record.state
                for record in server._records.values()
            }
            if states and all(state in ("completed", "failed")
                              for state in states.values()):
                break
            time.sleep(0.05)
        return time.perf_counter() - start

    try:
        total_wall = benchmark.pedantic(run_fleet, rounds=1, iterations=1)
        assert not errors, errors[:3]
        completed = sum(
            1 for record in server._records.values()
            if record.state == "completed"
        )
        events_published = server.bus.published
        events_dropped = server.bus.dropped
    finally:
        server.stop()

    total = CLIENTS * CAMPAIGNS_PER_CLIENT
    assert completed == total
    assert len(latencies) == total

    ordered = sorted(latencies)
    p50 = statistics.median(ordered)
    p99 = ordered[min(len(ordered) - 1, int(len(ordered) * 0.99))]

    throughput_row = {
        "clients": CLIENTS,
        "campaigns": total,
        "completed": completed,
        "wall_s": round(total_wall, 3),
        "campaigns_per_s": (
            round(completed / total_wall, 2) if total_wall else 0.0
        ),
        "rejected_429_retries": rejections[0],
        "events_published": events_published,
        "events_dropped": events_dropped,
    }
    latency_row = {
        "samples": len(latencies),
        "p50_ms": round(1000.0 * p50, 1),
        "p99_ms": round(1000.0 * p99, 1),
        "max_ms": round(1000.0 * ordered[-1], 1),
    }

    document = {
        "generated_by": "benchmarks/bench_server.py",
        "schema": "throughput -> fleet completion; latency -> "
                  "submit->first-event percentiles",
        "notes": "1-CPU container: the serial runner executes campaigns "
                 "one at a time while 100 client threads share the same "
                 "core as the asyncio loop, so campaigns/s measures the "
                 "whole machine, not the server alone; first-event "
                 "latency includes the 0.05s stream poll tick.",
        "throughput": throughput_row,
        "latency": latency_row,
    }
    BENCH_SERVER_PATH.write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n"
    )

    lines = [
        "monitoring-service throughput "
        f"({CLIENTS} concurrent streaming clients)",
        f"  throughput: {completed}/{total} campaigns in "
        f"{throughput_row['wall_s']:.2f}s "
        f"({throughput_row['campaigns_per_s']:.2f} campaigns/s, "
        f"{rejections[0]} 429-retry(ies))",
        f"  latency:    submit->first-event p50 "
        f"{latency_row['p50_ms']:.0f} ms, p99 "
        f"{latency_row['p99_ms']:.0f} ms over "
        f"{latency_row['samples']} submissions",
        f"  events:     {events_published} published, "
        f"{events_dropped} dropped",
    ]
    record_result("server_throughput", "\n".join(lines))
