"""§4.3.2 — Myrinet packet type and source route corruption.

* mapping packets (0x0005) corrupted -> the node is removed from the
  network until the next mapping round restores it;
* data packets (0x0004) corrupted -> dropped as unrecognized; internal
  structures (routing tables) unchanged;
* source route MSB set at the destination -> consumed and handled as an
  error, without incident;
* misrouted packets -> expected losses, never accepted by the wrong
  node, no error propagation.
"""

from benchmarks.conftest import record_result
from repro.nftape.paper import sec432_packet_types


def test_sec432_packet_type_corruption(benchmark):
    table = benchmark.pedantic(sec432_packet_types, rounds=1, iterations=1)
    record_result("sec432_packet_types", table.render())

    rows = {r["target"]: r for r in table.rows}
    results = {r["target"]: res
               for r, res in zip(table.rows, table.results)}

    # Mapping corruption: removed, tables updated, restored next round.
    mapping = rows["mapping packet (0x0005)"]["observed"]
    assert "node removed=True" in mapping
    assert "back next round=True" in mapping

    # Data corruption: drops without structural damage or misdelivery.
    data = results["data packet (0x0004)"]
    assert data.total_host_counter("unknown_type_drops") > 0
    assert data.active_misdeliveries == 0
    assert "routing tables intact=True" in rows["data packet (0x0004)"]["observed"]

    # Route MSB: consume errors, nothing else.
    msb = results["source route MSB at destination"]
    assert msb.host_stats["pc"]["consume_errors"] > 0
    assert msb.active_misdeliveries == 0
    assert msb.corrupted_deliveries == 0

    # Misrouting: losses but never acceptance by the wrong node.
    wrong_host = results["route-to-wrong-host"]
    assert wrong_host.messages_lost > 0
    assert wrong_host.total_host_counter("misaddressed_drops") > 0
    assert wrong_host.active_misdeliveries == 0

    dead_port = results["route-to-dead-port"]
    assert dead_port.total_switch_counter("routing_errors") > 0
    assert dead_port.active_misdeliveries == 0
