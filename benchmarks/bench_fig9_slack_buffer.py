"""Figure 9 — the Myrinet slack buffer.

Sweeps fill/drain cycles across the high- and low-water marks and
measures the buffer's throughput; asserts the hysteresis behaviour the
flow-control results depend on (STOP at high water, GO at low water,
drops only past capacity).
"""

from benchmarks.conftest import record_result
from repro.myrinet.slack import QueueSlackBuffer, RateDrainedSlackBuffer
from repro.myrinet.symbols import data_symbol
from repro.sim import Simulator

SYMBOL = data_symbol(0x5A)


def test_fig9_watermark_hysteresis(benchmark):
    def run():
        events = []
        buffer = QueueSlackBuffer(capacity=1024, high_water=512,
                                  low_water=192,
                                  on_backpressure=events.append)
        for _cycle in range(100):
            while not buffer.pressured:
                buffer.push(SYMBOL)
            while buffer.pressured:
                buffer.pop()
        return buffer, events

    buffer, events = benchmark.pedantic(run, rounds=1, iterations=1)
    assert buffer.stop_crossings == 100
    assert buffer.go_crossings == 100
    assert buffer.symbols_dropped == 0
    assert events == [True, False] * 100
    record_result(
        "fig9_slack_buffer",
        "Figure 9 slack buffer: 100 fill/drain cycles, "
        f"{buffer.stop_crossings} STOP crossings at high water (512), "
        f"{buffer.go_crossings} GO crossings at low water (192), "
        "0 drops below capacity",
    )


def test_fig9_overflow_only_past_capacity(benchmark):
    def run():
        buffer = QueueSlackBuffer(capacity=1024, high_water=512,
                                  low_water=192)
        for _index in range(2048):
            buffer.push(SYMBOL)
        return buffer

    buffer = benchmark.pedantic(run, rounds=1, iterations=1)
    assert buffer.occupancy == 1024
    assert buffer.symbols_dropped == 1024


def test_fig9_rate_drained_buffer_throughput(benchmark):
    def run():
        sim = Simulator()
        crossings = []
        buffer = RateDrainedSlackBuffer(
            sim, drain_period_ps=25_000, capacity=1024, high_water=512,
            low_water=192, on_backpressure=crossings.append,
        )
        for _burst in range(200):
            buffer.push_burst(128)
            sim.run_for(2_000_000)  # 2 us between bursts: drains 80
        sim.run()
        return buffer, crossings

    buffer, crossings = benchmark.pedantic(run, rounds=1, iterations=1)
    assert buffer.stop_crossings >= 1
    assert buffer.go_crossings >= 1


def test_push_pop_throughput(benchmark):
    buffer = QueueSlackBuffer(capacity=4096, high_water=2048, low_water=512)

    def run():
        for _index in range(1000):
            buffer.push(SYMBOL)
        for _index in range(1000):
            buffer.pop()

    benchmark(run)
