"""§4.3.4 — UDP address/checksum corruption.

"Because the checksum is 16 bits, this can be done by swapping bits that
are 16 bits apart.  In our case, we corrupted a UDP packet consisting of
the string 'Have a lot of fun' to read instead 'veHa a lot of fun'.  The
checksum was unable to detect this ... When the corruption did not
satisfy the checksum, the packets were dropped."
"""

from benchmarks.conftest import record_result
from repro.hostsim import internet_checksum
from repro.nftape.paper import sec434_udp_checksum


def test_sec434_udp_checksum(benchmark):
    table = benchmark.pedantic(sec434_udp_checksum, rounds=1, iterations=1)
    record_result("sec434_udp_checksum", table.render())

    rows = {r["corruption"]: r for r in table.rows}
    swap = rows["16-bit-apart swap"]
    plain = rows["plain corruption"]

    # The swap is checksum-invisible: every corrupted message delivered.
    assert swap["delivered"] == swap["sent"]
    assert swap["corrupted_delivered"] == swap["sent"]
    assert swap["checksum_drops"] == 0

    # Plain corruption: all caught by the checksum.
    assert plain["delivered"] == 0
    assert plain["checksum_drops"] == plain["sent"]

    # The underlying invariant, straight from the paper's example.
    assert internet_checksum(b"Have a lot of fun") == \
        internet_checksum(b"veHa a lot of fun")
