"""Capture overhead — the same campaign with the flight recorder off/on.

``repro.capture`` promises that the disabled path is one slotted
attribute read per hook site and that the enabled path only appends to a
bounded deque.  This benchmark runs an identical control-symbol campaign
twice — same seeds, same SDRAM monitor configuration, so the simulated
work is bit-identical — varying only whether a
:class:`~repro.capture.session.CaptureSession` is active, and records
both wall-clock rates in ``BENCH_capture.json`` at the repo root (the
committed snapshot is the overhead baseline; regenerate with the same
``REPRO_BENCH_SCALE`` to compare).

The observation-only contract shows up as a hard assertion here: both
variants must fire exactly the same number of kernel events.
"""

import json
import pathlib

from benchmarks.conftest import record_result, scaled_ps
from repro.capture import CaptureSession
from repro.core.faults import control_symbol_swap
from repro.core.monitor import MonitorConfig
from repro.hw.registers import MatchMode
from repro.myrinet.symbols import GAP, IDLE
from repro.nftape.campaign import Campaign
from repro.nftape.experiment import Experiment, TestbedOptions
from repro.nftape.plan import DutyCyclePlan
from repro.sim.timebase import MS
from repro.telemetry import TelemetrySession

#: Repo-root overhead artifact: variant -> {wall_s, sim_events, ...}.
BENCH_CAPTURE_PATH = (
    pathlib.Path(__file__).parent.parent / "BENCH_capture.json"
)


def _build_campaign(duration_ps: int) -> Campaign:
    """The CLI demo campaign, fixed at two experiments and seed 0/1.

    SDRAM monitors are enabled in *both* variants so the simulated work
    (and therefore the kernel event stream) is identical — the only
    difference between the runs is the flight recorder.
    """
    campaign = Campaign("capture overhead campaign")
    for index, (source, target) in enumerate([(IDLE, GAP), (GAP, IDLE)]):
        plan = DutyCyclePlan(
            "RL",
            control_symbol_swap(source, target, MatchMode.ON),
            on_ps=duration_ps // 8,
            off_ps=duration_ps // 2,
            use_serial=False,
        )
        campaign.add(Experiment(
            f"{source.name}->{target.name}",
            duration_ps=duration_ps,
            plan=plan,
            testbed_options=TestbedOptions(
                seed=index,
                device_kwargs={
                    "monitor_config": MonitorConfig(
                        enabled=True, pre_symbols=128, post_symbols=128
                    ),
                },
            ),
        ))
    return campaign


def _run_variant(duration_ps: int, with_capture: bool) -> dict:
    """Run the campaign; return wall/sim rates (+ recorder stats)."""
    campaign = _build_campaign(duration_ps)
    # A nested telemetry session provides the wall clock (the SIM001
    # allowance) and the kernel event count for this variant alone.
    session = TelemetrySession(label=f"capture={'on' if with_capture else 'off'}")
    if with_capture:
        capture = CaptureSession(label=campaign.name)
        with session, capture:
            campaign.run()
    else:
        with session:
            campaign.run()
    wall_s = session.wall_s or 0.0
    sim_events = int(session.registry.value("sim.events_fired"))
    row = {
        "wall_s": round(wall_s, 6),
        "sim_events": sim_events,
        "events_per_s": round(sim_events / wall_s, 1) if wall_s else 0.0,
    }
    if with_capture:
        recorder = capture.recorder
        row["lifecycle_events"] = (
            len(recorder.events) + recorder.events_dropped
        )
        row["corr_ids_assigned"] = recorder.corr_ids_assigned
    return row


def test_capture_overhead(benchmark):
    duration_ps = scaled_ps(2 * MS)

    def run_both():
        return (
            _run_variant(duration_ps, with_capture=False),
            _run_variant(duration_ps, with_capture=True),
        )

    off, on = benchmark.pedantic(run_both, rounds=1, iterations=1)

    # Observation-only: enabling capture must not change the simulation.
    assert off["sim_events"] == on["sim_events"], (off, on)
    # The enabled path actually recorded provenance.
    assert on["lifecycle_events"] > 0
    assert on["corr_ids_assigned"] > 0

    ratio = (
        round(on["wall_s"] / off["wall_s"], 3) if off["wall_s"] else 0.0
    )
    document = {
        "generated_by": "benchmarks/bench_capture_overhead.py",
        "schema": "variant -> {wall_s, sim_events, events_per_s, ...}",
        "bench_scale": round(duration_ps / (2 * MS), 3),
        "capture_off": off,
        "capture_on": on,
        "wall_ratio_on_over_off": ratio,
    }
    BENCH_CAPTURE_PATH.write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n"
    )

    lines = [
        "capture overhead (same campaign, flight recorder off vs on)",
        f"  off: {off['sim_events']} events in {off['wall_s']:.3f}s "
        f"({off['events_per_s']:,.0f} events/s)",
        f"  on:  {on['sim_events']} events in {on['wall_s']:.3f}s "
        f"({on['events_per_s']:,.0f} events/s), "
        f"{on['lifecycle_events']} lifecycle events, "
        f"{on['corr_ids_assigned']} correlation ids",
        f"  wall ratio on/off: {ratio}",
    ]
    record_result("capture_overhead", "\n".join(lines))
