"""§4.3.1 — throughput collapse under continuous flow-control faults.

The paper's prose numbers: a run with erroneous STOP conditions dropped
a test program from 48000 to 5038 messages/minute (~10.5%), and lost
GAPs — paths reclaimed only by the ~50 ms long-period timeout — dropped
network throughput to ~12% of normal.

The benchmark asserts the mechanism shape (documented in EXPERIMENTS.md):

* the instrumented host's receive rate collapses by >= 10x under the
  erroneous-STOP run (paper: ~9.5x);
* the lost-GAP run degrades network throughput by >= 2x with long-period
  timeouts actually firing (our chunked switch model understates the
  paper's head-of-line amplification, so 12% absolute is not claimed).
"""

from benchmarks.conftest import record_result, scaled_ps
from repro.nftape.paper import sec431_throughput
from repro.sim.timebase import MS


def test_sec431_throughput_under_faults(benchmark):
    table = benchmark.pedantic(
        lambda: sec431_throughput(duration_ps=scaled_ps(15 * MS)),
        rounds=1, iterations=1,
    )
    record_result("sec431_throughput", table.render())

    rows = {r["run"]: r for r in table.rows}

    def fraction(row, key="network_fraction"):
        return float(rows[row][key].rstrip("%")) / 100.0

    assert fraction("baseline") == 1.0
    # Faulty STOP conditions: the instrumented host's test program
    # collapses by an order of magnitude (paper: 5038/48000).
    assert fraction("faulty-stop-conditions",
                    "instrumented_host_fraction") < 0.10
    # Lost GAPs: significant network-wide degradation with long-period
    # timeouts involved.
    assert fraction("lost-gaps") < 0.55
    gap_row = rows["lost-gaps"]
    assert gap_row["long_timeouts"] + gap_row["tx_timeout_drops"] > 0
