"""Sharded campaign engine — serial vs pooled vs fabric, same bytes.

The engine's contract (docs/runtime.md) is *determinism first*: a
campaign spec run through :class:`~repro.runtime.SerialExecutor`,
:class:`~repro.runtime.PooledExecutor`, or the distributed
:class:`~repro.runtime.FabricExecutor` at any worker count must produce
byte-identical tables.  This benchmark asserts that contract on a
nine-experiment Table 4 campaign and records the wall-clock of the
serial, pooled (2/4 workers), and fabric (2/4 workers) runs in
``BENCH_parallel.json`` at the repo root — plus the fabric's
**execution/merge overlap**: the coordinator folds completed artifact
shards while later experiments are still running, and
``merge_overlap_s`` records how much merge work was hidden behind
execution instead of serialized after it.

Honesty note on speedups: the simulation is CPU-bound pure Python, so
sharding only pays when the host grants more than one core.  The
snapshot therefore records ``cpu_count`` (the *effective* affinity, not
the nominal core count) and a ``cpu_limited`` flag; the >=2-worker
speedup assertions (pooled and fabric) are gated on having at least two
schedulable CPUs.  On a single-core container the committed numbers
legitimately show the parallel runs paying process-spawn overhead for
no parallelism — the determinism assertions and the overlap accounting
still hold, which is the part the paper's methodology depends on.
"""

import json
import os
import pathlib
import tempfile

from benchmarks.conftest import bench_scale, record_result
from repro.nftape.campaign import Campaign
from repro.nftape.paper import _table4_row, table4_spec
from repro.runtime import FabricExecutor, PooledExecutor, SerialExecutor
from repro.sim.timebase import MS

#: Repo-root scaling artifact: variant -> wall_s, plus speedups + cpu info.
BENCH_PARALLEL_PATH = (
    pathlib.Path(__file__).parent.parent / "BENCH_parallel.json"
)

#: Base per-experiment duration before ``REPRO_BENCH_SCALE`` (the full
#: Table 4 run uses 20 ms; the benchmark only needs enough sim work per
#: experiment for the scheduler's overhead to be visible in proportion).
BASE_DURATION_PS = 4 * MS


def _spec():
    """The nine-experiment Table 4 campaign at benchmark scale."""
    duration_ps = int(BASE_DURATION_PS * bench_scale())
    return table4_spec(
        duration_ps=duration_ps,
        duty_on_ps=duration_ps // 8,
        duty_off_ps=duration_ps // 2,
        seed=0,
    )


def _run_variant(spec, workers: int, fabric: bool = False) -> dict:
    """Run the spec through one executor variant; time it."""
    import time

    scratch = None
    if fabric:
        # The fabric needs an artifacts home to exercise (and measure)
        # the incremental shard merge.
        scratch = tempfile.TemporaryDirectory(prefix="repro-bench-fabric-")
        executor = FabricExecutor(workers=workers, poll_s=0.01,
                                  artifacts_dir=scratch.name)
    elif workers == 1:
        executor = SerialExecutor()
    else:
        executor = PooledExecutor(workers=workers)
    campaign = Campaign.from_spec(spec, row_builder=_table4_row)
    start = time.perf_counter()
    table = campaign.run(executor=executor)
    wall_s = time.perf_counter() - start
    variant = {
        "workers": workers,
        "wall_s": round(wall_s, 6),
        "render": table.render(),
    }
    if fabric:
        variant["merge_busy_s"] = round(
            executor.timings["merge_busy_s"], 6)
        variant["merge_overlap_s"] = round(
            executor.timings["merge_overlap_s"], 6)
        scratch.cleanup()
    return variant


def test_parallel_campaign_scaling(benchmark):
    spec = _spec()
    cpu_count = len(os.sched_getaffinity(0))

    def run_all():
        return (
            _run_variant(spec, workers=1),
            _run_variant(spec, workers=2),
            _run_variant(spec, workers=4),
            _run_variant(spec, workers=2, fabric=True),
            _run_variant(spec, workers=4, fabric=True),
        )

    serial, pooled2, pooled4, fabric2, fabric4 = benchmark.pedantic(
        run_all, rounds=1, iterations=1
    )

    # The engine's core guarantee: identical bytes at any worker count,
    # through the pool and through the fabric alike.
    assert serial["render"] == pooled2["render"] == pooled4["render"]
    assert serial["render"] == fabric2["render"] == fabric4["render"]

    # Overlap accounting is well-formed: overlapped merge time is a
    # subset of total merge time, which is a subset of the run.
    for variant in (fabric2, fabric4):
        assert 0 <= variant["merge_overlap_s"] <= variant["merge_busy_s"]
        assert variant["merge_busy_s"] <= variant["wall_s"]

    def speedup(variant):
        return (
            round(serial["wall_s"] / variant["wall_s"], 3)
            if variant["wall_s"] else 0.0
        )

    speedup_2w, speedup_4w = speedup(pooled2), speedup(pooled4)
    fabric_speedup_2w = speedup(fabric2)
    fabric_speedup_4w = speedup(fabric4)
    cpu_limited = cpu_count < 2
    if not cpu_limited:
        # With real cores available the sharded runs must beat serial.
        assert speedup_2w > 1.0, (serial, pooled2)
        assert fabric_speedup_2w > 1.0, (serial, fabric2)

    def snapshot(variant, **extra):
        doc = {"workers": variant["workers"],
               "wall_s": variant["wall_s"]}
        doc.update(extra)
        return doc

    document = {
        "generated_by": "benchmarks/bench_parallel_campaign.py",
        "schema": ("variant -> {workers, wall_s"
                   "[, merge_busy_s, merge_overlap_s]}; "
                   "speedups vs serial"),
        "bench_scale": bench_scale(),
        "experiments": len(spec),
        "cpu_count": cpu_count,
        "cpu_limited": cpu_limited,
        "serial": snapshot(serial),
        "workers_2": snapshot(pooled2),
        "workers_4": snapshot(pooled4),
        "fabric_2": snapshot(
            fabric2, merge_busy_s=fabric2["merge_busy_s"],
            merge_overlap_s=fabric2["merge_overlap_s"]),
        "fabric_4": snapshot(
            fabric4, merge_busy_s=fabric4["merge_busy_s"],
            merge_overlap_s=fabric4["merge_overlap_s"]),
        "speedup_2w": speedup_2w,
        "speedup_4w": speedup_4w,
        "fabric_speedup_2w": fabric_speedup_2w,
        "fabric_speedup_4w": fabric_speedup_4w,
        "tables_identical": True,
    }
    BENCH_PARALLEL_PATH.write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n"
    )

    lines = [
        f"sharded campaign scaling ({len(spec)} experiments, "
        f"{cpu_count} schedulable cpu(s))",
        f"  serial:    {serial['wall_s']:.3f}s",
        f"  2 workers: {pooled2['wall_s']:.3f}s  (speedup {speedup_2w}x)",
        f"  4 workers: {pooled4['wall_s']:.3f}s  (speedup {speedup_4w}x)",
        f"  fabric 2w: {fabric2['wall_s']:.3f}s  "
        f"(speedup {fabric_speedup_2w}x, "
        f"merge overlap {fabric2['merge_overlap_s']:.3f}s "
        f"of {fabric2['merge_busy_s']:.3f}s)",
        f"  fabric 4w: {fabric4['wall_s']:.3f}s  "
        f"(speedup {fabric_speedup_4w}x, "
        f"merge overlap {fabric4['merge_overlap_s']:.3f}s "
        f"of {fabric4['merge_busy_s']:.3f}s)",
        "  tables byte-identical across all worker counts: yes",
    ]
    if cpu_limited:
        lines.append(
            "  note: single-cpu host; parallel runs pay spawn overhead "
            "without parallelism (speedup gates skipped)"
        )
    record_result("parallel_campaign", "\n".join(lines))
