"""Sharded campaign engine — serial vs pooled wall time, same bytes.

The engine's contract (docs/runtime.md) is *determinism first*: a
campaign spec run through :class:`~repro.runtime.SerialExecutor` and
through :class:`~repro.runtime.PooledExecutor` at any worker count must
produce byte-identical tables.  This benchmark asserts that contract on
a nine-experiment Table 4 campaign and records the wall-clock of the
serial, two-worker, and four-worker runs in ``BENCH_parallel.json`` at
the repo root.

Honesty note on speedups: the simulation is CPU-bound pure Python, so
sharding only pays when the host grants more than one core.  The
snapshot therefore records ``cpu_count`` (the *effective* affinity, not
the nominal core count) and a ``cpu_limited`` flag; the speedup
assertion is gated on having at least two schedulable CPUs.  On a
single-core container the committed numbers legitimately show the
pooled runs paying process-spawn overhead for no parallelism — the
determinism assertions still hold, which is the part the paper's
methodology depends on.
"""

import json
import os
import pathlib

from benchmarks.conftest import bench_scale, record_result
from repro.nftape.campaign import Campaign
from repro.nftape.paper import _table4_row, table4_spec
from repro.runtime import PooledExecutor, SerialExecutor
from repro.sim.timebase import MS

#: Repo-root scaling artifact: variant -> wall_s, plus speedups + cpu info.
BENCH_PARALLEL_PATH = (
    pathlib.Path(__file__).parent.parent / "BENCH_parallel.json"
)

#: Base per-experiment duration before ``REPRO_BENCH_SCALE`` (the full
#: Table 4 run uses 20 ms; the benchmark only needs enough sim work per
#: experiment for the scheduler's overhead to be visible in proportion).
BASE_DURATION_PS = 4 * MS


def _spec():
    """The nine-experiment Table 4 campaign at benchmark scale."""
    duration_ps = int(BASE_DURATION_PS * bench_scale())
    return table4_spec(
        duration_ps=duration_ps,
        duty_on_ps=duration_ps // 8,
        duty_off_ps=duration_ps // 2,
        seed=0,
    )


def _run_variant(spec, workers: int) -> dict:
    """Run the spec serially (``workers == 1``) or pooled; time it."""
    import time

    if workers == 1:
        executor = SerialExecutor()
    else:
        executor = PooledExecutor(workers=workers)
    campaign = Campaign.from_spec(spec, row_builder=_table4_row)
    start = time.perf_counter()
    table = campaign.run(executor=executor)
    wall_s = time.perf_counter() - start
    return {
        "workers": workers,
        "wall_s": round(wall_s, 6),
        "render": table.render(),
    }


def test_parallel_campaign_scaling(benchmark):
    spec = _spec()
    cpu_count = len(os.sched_getaffinity(0))

    def run_all():
        return (
            _run_variant(spec, workers=1),
            _run_variant(spec, workers=2),
            _run_variant(spec, workers=4),
        )

    serial, pooled2, pooled4 = benchmark.pedantic(
        run_all, rounds=1, iterations=1
    )

    # The engine's core guarantee: identical bytes at any worker count.
    assert serial["render"] == pooled2["render"] == pooled4["render"]

    def speedup(variant):
        return (
            round(serial["wall_s"] / variant["wall_s"], 3)
            if variant["wall_s"] else 0.0
        )

    speedup_2w, speedup_4w = speedup(pooled2), speedup(pooled4)
    cpu_limited = cpu_count < 2
    if not cpu_limited:
        # With real cores available the sharded run must beat serial.
        assert speedup_2w > 1.0, (serial, pooled2)

    document = {
        "generated_by": "benchmarks/bench_parallel_campaign.py",
        "schema": "variant -> {workers, wall_s}; speedups vs serial",
        "bench_scale": bench_scale(),
        "experiments": len(spec),
        "cpu_count": cpu_count,
        "cpu_limited": cpu_limited,
        "serial": {"workers": 1, "wall_s": serial["wall_s"]},
        "workers_2": {"workers": 2, "wall_s": pooled2["wall_s"]},
        "workers_4": {"workers": 4, "wall_s": pooled4["wall_s"]},
        "speedup_2w": speedup_2w,
        "speedup_4w": speedup_4w,
        "tables_identical": True,
    }
    BENCH_PARALLEL_PATH.write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n"
    )

    lines = [
        f"sharded campaign scaling ({len(spec)} experiments, "
        f"{cpu_count} schedulable cpu(s))",
        f"  serial:    {serial['wall_s']:.3f}s",
        f"  2 workers: {pooled2['wall_s']:.3f}s  (speedup {speedup_2w}x)",
        f"  4 workers: {pooled4['wall_s']:.3f}s  (speedup {speedup_4w}x)",
        "  tables byte-identical across all worker counts: yes",
    ]
    if cpu_limited:
        lines.append(
            "  note: single-cpu host; pooled runs pay spawn overhead "
            "without parallelism (speedup gate skipped)"
        )
    record_result("parallel_campaign", "\n".join(lines))
