"""Figures 2 and 3 — the two-phase FIFO injector operation.

Demonstrates the odd/even clock contract (push/pull on odd cycles,
inject on even cycles) and measures the injector's symbol throughput on
both the cycle-accurate and the fused paths.
"""

from benchmarks.conftest import record_result
from repro.core.faults import replace_bytes
from repro.hw.clock import ClockPhase
from repro.hw.injector import FifoInjector
from repro.hw.registers import MatchMode
from repro.myrinet.symbols import data_symbols, symbol_bytes

STREAM = data_symbols(bytes(range(256)) * 16)  # 4096 symbols


def test_fig2_odd_cycle_push_and_pull(benchmark):
    """Figure 2: on the odd cycle data is pushed onto the FIFO and the
    processed symbol is read toward the network."""

    def run():
        injector = FifoInjector(pipeline_depth=8)
        outputs = 0
        for symbol in STREAM:
            out = injector._odd_cycle(symbol)
            injector.clock.expect(ClockPhase.ODD)
            if out is not None:
                outputs += 1
            injector._even_cycle()
            injector.clock.expect(ClockPhase.EVEN)
        return injector, outputs

    injector, outputs = benchmark.pedantic(run, rounds=1, iterations=1)
    assert injector.clock.cycles == 2 * len(STREAM)
    assert outputs == len(STREAM) - 8  # pipeline depth still queued
    record_result(
        "fig23_fifo_phases",
        f"Figures 2/3 two-phase operation: {len(STREAM)} symbols, "
        f"{injector.clock.cycles} cycles "
        f"({injector.clock.segments} odd/even pairs), "
        f"{injector.fifo.ram.writes} RAM writes / "
        f"{injector.fifo.ram.reads} RAM reads",
    )


def test_fig3_even_cycle_injects_in_fifo(benchmark):
    """Figure 3: the compare result corrupts data *inside* the FIFO."""

    def run():
        injector = FifoInjector()
        injector.configure(replace_bytes(b"\x18\x18", b"\x19\x18",
                                         match_mode=MatchMode.ON))
        out = injector.process_burst(
            data_symbols(b"\x00\x18\x18\x00" * 64)
        )
        return injector, out

    injector, out = benchmark.pedantic(run, rounds=1, iterations=1)
    assert injector.fifo.in_place_rewrites == 64
    assert symbol_bytes(out).count(b"\x19\x18") == 64


def test_throughput_cycle_accurate(benchmark):
    injector = FifoInjector()
    injector.configure(replace_bytes(b"\xde\xad", b"\xbe\xef",
                                     match_mode=MatchMode.ON))

    def run():
        for symbol in STREAM:
            injector.step(symbol)
        injector.fifo.drain()

    benchmark(run)


def test_throughput_fused_path(benchmark):
    injector = FifoInjector()
    injector.configure(replace_bytes(b"\xde\xad", b"\xbe\xef",
                                     match_mode=MatchMode.ON))
    benchmark(lambda: injector.process_burst(STREAM))


def test_throughput_disarmed_fast_path(benchmark):
    injector = FifoInjector()
    benchmark(lambda: injector.process_burst(STREAM))
