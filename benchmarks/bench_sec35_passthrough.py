"""§3.5 — demonstration of the fault injector in pass-through mode.

"Both Myrinet control and data packets were transferred seamlessly
through the device ... routes are correctly mapped through in both
directions.  The fault injector caused no observable impact on the data
transfer rate."
"""

from benchmarks.conftest import record_result, scaled_ps
from repro.nftape.paper import sec35_passthrough
from repro.sim.timebase import MS


def test_sec35_passthrough_transparency(benchmark):
    table = benchmark.pedantic(
        lambda: sec35_passthrough(duration_ps=scaled_ps(10 * MS)),
        rounds=1, iterations=1,
    )
    record_result("sec35_passthrough", table.render())

    direct, with_device = table.rows
    # Routes map through the device in both directions.
    assert direct["routes_mapped_through"] is True
    assert with_device["routes_mapped_through"] is True
    # No observable impact on the data transfer rate.
    assert with_device["received"] == direct["received"]
    assert with_device["msgs_per_s"] == direct["msgs_per_s"]
    # And no losses on either configuration.
    assert direct["received"] == direct["sent"]
    assert with_device["received"] == with_device["sent"]
