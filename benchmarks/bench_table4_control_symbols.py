"""Table 4 — the control-symbol corruption campaign.

All nine mask/replacement pairs over a full-capacity network, with the
injector duty-cycled by the campaign runner.  The paper's loss band is
7-15%; the benchmark asserts the mechanism-level shape:

* STOP-mask rows lose messages through receiver-side overflow
  ("buffer overflows");
* GAP-mask rows lose messages through merged packets
  ("misinterpretation of packet tails and headers");
* every observed fault is passive (§4.4);
* GO-mask rows measure LOWER loss than the paper's 10-14% — under the
  literal short-timeout semantics a lost GO is masked by the
  16-character-period decay.  This deviation is expected and documented
  in EXPERIMENTS.md.
"""

from benchmarks.conftest import record_result, scaled_ps
from repro.nftape.paper import table4_control_symbols
from repro.sim.timebase import MS


def test_table4_control_symbol_corruption(benchmark):
    table = benchmark.pedantic(
        lambda: table4_control_symbols(duration_ps=scaled_ps(12 * MS)),
        rounds=1, iterations=1,
    )
    record_result("table4_control_symbols", table.render())

    rows = {(r["mask"], r["replacement"]): r for r in table.rows}
    results = {
        (r["mask"], r["replacement"]): result
        for r, result in zip(table.rows, table.results)
    }

    def loss(mask, replacement):
        return results[(mask, replacement)].loss_rate

    # STOP rows: overflow losses in the paper's band (within 2x).
    for replacement in ("IDLE", "GAP", "GO"):
        assert 0.03 < loss("STOP", replacement) < 0.30, (
            "STOP", replacement, loss("STOP", replacement))

    # GAP rows: merge losses, closest to the paper (9-11%).
    for replacement in ("GO", "IDLE", "STOP"):
        assert 0.05 < loss("GAP", replacement) < 0.25, (
            "GAP", replacement, loss("GAP", replacement))

    # GO rows: documented deviation — lower loss than STOP/GAP rows.
    for replacement in ("IDLE", "GAP", "STOP"):
        assert loss("GO", replacement) < loss("STOP", "IDLE")

    # Every row's faults were passive (§4.4).
    for row in table.rows:
        assert row["fault_class"] == "passive" or row["injections"] == 0

    # Injections actually happened on the STOP/GAP rows.
    for mask in ("STOP", "GAP"):
        for replacement in ("GO", "IDLE") if mask == "STOP" else ("GO",):
            assert results[(mask, replacement)].injections > 0
