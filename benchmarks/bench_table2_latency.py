"""Table 2 — latency added by inserting the device in the data path.

Regenerates the paper's five ping-pong experiments (2M small UDP packets
each on hardware; scaled here) with and without the injector in the data
path.  The paper's finding: the added latency is sub-1.4 us, of the same
order as cable propagation, and largely "lost in the granularity caused
by the computer's interrupt handler" — per-packet times stay ~235 us.
"""

from benchmarks.conftest import bench_scale, record_result
from repro.nftape.paper import PAPER_TABLE2, _run_pingpong, table2_latency


def test_table2_added_latency(benchmark):
    exchanges = max(100, int(600 * bench_scale()))
    table = benchmark.pedantic(
        lambda: table2_latency(exchanges=exchanges, experiments=5),
        rounds=1, iterations=1,
    )
    record_result("table2_latency", table.render())

    added = [
        row.results if False else float(r["added_ns"])
        for row, r in zip(table.results, table.rows)
    ]
    # Shape: the device adds sub-2us latency in every experiment, the
    # same order as the paper's 75..1407 ns band, and the absolute
    # per-packet times are ~235 us as in the paper.
    for row in table.rows:
        added_ns = float(row["added_ns"])
        without_ns = float(row["without_ns"])
        assert -500 < added_ns < 2_500
        assert 230_000 < without_ns < 242_000


def test_single_pingpong_run_benchmark(benchmark):
    """Wall-clock cost of one scaled latency experiment."""
    result = benchmark.pedantic(
        lambda: _run_pingpong(True, seed=5, exchanges=100),
        rounds=1, iterations=1,
    )
    assert result > 0
