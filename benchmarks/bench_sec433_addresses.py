"""§4.3.3 and Figure 11 — physical (48-bit) address corruption.

Four campaigns:

* destination address corrupted with a stale CRC -> dropped, received by
  neither node;
* a node's own address corrupted (CRC fixed) -> unreachable, drops all
  traffic as misaddressed, but still answers mapping;
* address corrupted to the CONTROLLER's -> the mapper sees another
  controller; address-keyed routing tables are damaged and
  controller-bound traffic lands on the impostor (Figure 11);
* address corrupted to a non-existent one -> the map simply updates, as
  if the machine were replaced.
"""

from benchmarks.conftest import record_result
from repro.nftape.paper import sec433_addresses


def test_sec433_address_corruption(benchmark):
    table, artifacts = benchmark.pedantic(sec433_addresses, rounds=1,
                                          iterations=1)
    fig11 = (
        "--- Figure 11: before ---\n"
        + "\n".join(artifacts["fig11_before"])
        + "\n--- Figure 11: after (corrupted rounds) ---\n"
        + "\n\n".join(artifacts["fig11_after"])
    )
    record_result("sec433_addresses", table.render() + "\n\n" + fig11)

    results = {r["campaign"]: res
               for r, res in zip(table.rows, table.results)}
    rows = {r["campaign"]: r for r in table.rows}

    # (a) stale CRC: dropped at the destination's CRC check.
    dest = results["destination address, stale CRC"]
    assert dest.total_host_counter("crc_errors") > 0
    assert dest.active_misdeliveries == 0
    assert dest.messages_lost > 0

    # (b) own address: everything misaddressed, mapping intact.
    own = rows["node's own address (valid CRC)"]["observed"]
    assert "delivered to pc=0" in own
    assert "still answers mapping=True" in own

    # (c) controller conflict: detected, and routing damaged.
    conflict = rows["address = controller's address"]["observed"]
    assert "conflict rounds=" in conflict
    assert "misrouted to impostor=20/20" in conflict

    # (d) non-existent address: replaced in the map, old one unroutable.
    ghost = rows["address = non-existent address"]["observed"]
    assert "new address=True" in ghost
    assert "still routable=False" in ghost

    # Figure 11 artifacts exist and show the duplicated address.
    assert artifacts["fig11_before"]
    assert any("CONFLICT" in text for text in artifacts["fig11_after"])
