"""Fast-path speedup on the §3.5 pass-through workload.

The fast path exists for exactly one reason: §3.5 traffic is almost
entirely pass-through, and the scalar pipeline pays full per-symbol
Python cost to *not* inject into it.  This benchmark drives the same
framed pass-through symbol stream through the scalar reference and the
:class:`~repro.fastpath.engine.FastPathEngine` and records symbols/sec
for both, plus the wall clock of the full §3.5 scenario under each
pipeline, in ``BENCH_fastpath.json`` at the repo root.

Honesty contract: the two runs must be symbol-exact (streams and
injector stats are asserted identical before any rate is reported), and
the ≥3× speedup target is reported as a pass/fail gate — if the armed
pass-through speedup falls short, ``speedup_gate_waived`` is set with
the measured number in the reason rather than quietly dropping the
field.
"""

from __future__ import annotations

import json
import pathlib
import time
from typing import List

from benchmarks.conftest import bench_scale, record_result, scaled_ps
from repro.core.faults import replace_bytes
from repro.fastpath import FastPathEngine, pipeline_override
from repro.hw.injector import FifoInjector
from repro.hw.registers import InjectorConfig, MatchMode
from repro.myrinet.crc8 import crc8
from repro.myrinet.symbols import GAP, Symbol, data_symbol, symbol_bytes
from repro.nftape.paper import sec35_passthrough
from repro.sim.timebase import MS

#: Repo-root artifact: variant -> {symbols_per_s, ...} + the gate verdict.
BENCH_FASTPATH_PATH = (
    pathlib.Path(__file__).parent.parent / "BENCH_fastpath.json"
)

PIPELINE_DEPTH = 8

#: The trigger byte the armed variant watches for; the workload below
#: never emits it, so the stream is 100% pass-through (§3.5: "the fault
#: injector caused no observable impact on the data transfer rate").
TRIGGER_BYTE = 0xEE


def _workload(n_bursts: int, frames_per_burst: int = 8,
              payload_len: int = 60) -> List[List[Symbol]]:
    """Framed bidirectional-style traffic: payload + CRC + GAP frames.

    Payload bytes cycle over 0x20..0x7F (never ``TRIGGER_BYTE``), so an
    armed injector watching for it does full compare work per symbol
    without ever firing — the pure §3.5 pass-through regime.
    """
    bursts: List[List[Symbol]] = []
    counter = 0
    for _ in range(n_bursts):
        burst: List[Symbol] = []
        for _ in range(frames_per_burst):
            payload = bytes(
                0x20 + ((counter + i) % 0x60) for i in range(payload_len)
            )
            counter += 7
            burst.extend(data_symbol(b) for b in payload)
            burst.append(data_symbol(crc8(payload)))
            burst.append(GAP)
        bursts.append(burst)
    return bursts


def _drive(front, bursts: List[List[Symbol]]) -> tuple:
    """Feed every burst through ``front``; return (wall_s, stream digest)."""
    import hashlib

    digest = hashlib.blake2b(digest_size=16)
    start = time.perf_counter()
    for burst in bursts:
        output = front.process_burst(list(burst))
        digest.update(symbol_bytes(output))
    wall_s = time.perf_counter() - start
    return wall_s, digest.hexdigest()


def _variant(config: InjectorConfig,
             bursts: List[List[Symbol]], repeats: int = 3) -> dict:
    """Best-of-N scalar vs fast rates for one register file."""
    total_symbols = sum(len(b) for b in bursts)
    best = {}
    digests = {}
    stats = {}
    for label, wrap in (("scalar", False), ("fast", True)):
        walls = []
        for _ in range(repeats):
            injector = FifoInjector(name=label,
                                    pipeline_depth=PIPELINE_DEPTH)
            injector.configure(config)
            front = FastPathEngine(injector) if wrap else injector
            wall_s, digest = _drive(front, bursts)
            walls.append(wall_s)
            digests[label] = digest
            stats[label] = injector.stats
        best[label] = min(walls)
    # Exactness before any rate is reported: same stream, same counters.
    assert digests["scalar"] == digests["fast"], digests
    assert stats["scalar"] == stats["fast"], stats
    speedup = best["scalar"] / best["fast"] if best["fast"] else 0.0
    return {
        "symbols": total_symbols,
        "scalar": {
            "wall_s": round(best["scalar"], 6),
            "symbols_per_s": round(total_symbols / best["scalar"], 1),
        },
        "fast": {
            "wall_s": round(best["fast"], 6),
            "symbols_per_s": round(total_symbols / best["fast"], 1),
        },
        "speedup": round(speedup, 2),
    }


def _scenario_walls(duration_ps: int) -> dict:
    """Full §3.5 scenario wall clock under each pipeline (context row).

    Event-kernel and host-model time dilute the data-path speedup here;
    the row is reported for honesty, not gated.
    """
    out = {}
    tables = {}
    for pipeline in ("scalar", "fast"):
        with pipeline_override(pipeline):
            start = time.perf_counter()
            table = sec35_passthrough(duration_ps=duration_ps)
            out[pipeline] = round(time.perf_counter() - start, 6)
            tables[pipeline] = table.render()
    assert tables["scalar"] == tables["fast"]
    ratio = out["scalar"] / out["fast"] if out["fast"] else 0.0
    return {
        "scalar_wall_s": out["scalar"],
        "fast_wall_s": out["fast"],
        "speedup": round(ratio, 2),
    }


def test_fastpath_speedup(benchmark):
    n_bursts = max(20, int(120 * bench_scale()))
    bursts = _workload(n_bursts)

    def run_all():
        return {
            # Disarmed transparent pipe: both paths short-circuit, so
            # this row is a no-regression check, not a speedup claim.
            "disarmed_passthrough": _variant(InjectorConfig(), bursts),
            # Armed, never firing: the scalar path does full per-symbol
            # compare work; the fast path prefilters and bulk-accounts.
            # This is the gated §3.5 pass-through regime.
            "armed_passthrough": _variant(
                replace_bytes(bytes([TRIGGER_BYTE]), b"\x00",
                              match_mode=MatchMode.ON),
                bursts,
            ),
            "sec35_scenario": _scenario_walls(scaled_ps(2 * MS)),
        }

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)

    gated = rows["armed_passthrough"]["speedup"]
    gate_met = gated >= 3.0
    document = {
        "generated_by": "benchmarks/bench_fastpath.py",
        "schema": (
            "variant -> {scalar, fast: {wall_s, symbols_per_s}, speedup}"
        ),
        "bench_scale": bench_scale(),
        "workload": {
            "bursts": n_bursts,
            "symbols": rows["armed_passthrough"]["symbols"],
            "shape": "8 frames/burst x (60B payload + CRC + GAP)",
        },
        "variants": rows,
        "speedup_target": 3.0,
        "speedup_measured": gated,
        "speedup_gate_waived": (
            False
            if gate_met
            else (
                f"armed pass-through speedup {gated}x below the 3x "
                "target on this host; symbol exactness still holds"
            )
        ),
    }
    BENCH_FASTPATH_PATH.write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n"
    )

    lines = [
        "fastpath speedup (scalar vs fast, symbol-exact runs)",
        "  disarmed pass-through: "
        f"{rows['disarmed_passthrough']['speedup']}x "
        f"({rows['disarmed_passthrough']['fast']['symbols_per_s']:,.0f} "
        "symbols/s fast)",
        "  armed pass-through:    "
        f"{gated}x "
        f"({rows['armed_passthrough']['fast']['symbols_per_s']:,.0f} "
        "symbols/s fast) "
        f"[gate >= 3x: {'met' if gate_met else 'WAIVED'}]",
        "  sec35 scenario wall:   "
        f"{rows['sec35_scenario']['speedup']}x "
        f"({rows['sec35_scenario']['scalar_wall_s']:.3f}s -> "
        f"{rows['sec35_scenario']['fast_wall_s']:.3f}s)",
    ]
    record_result("fastpath_speedup", "\n".join(lines))

    # The fast path must never be slower than scalar on its home turf.
    assert gated > 1.0, rows["armed_passthrough"]
