"""Table 1 — synthesis results of the FPGA code.

Regenerates the paper's per-entity resource table from the structural
synthesis estimator and checks the reproduction-relevant shape: the FIFO
injector dominates every resource class, the relative ordering of
entities matches, and totals agree within tolerance (see DESIGN.md for
why exact equality is out of scope without vendor synthesis).
"""

from benchmarks.conftest import record_result
from repro.hw.synthesis import (
    ENTITY_ORDER,
    PAPER_TABLE1,
    format_report,
    synthesis_report,
)


def test_table1_synthesis(benchmark):
    report = benchmark(synthesis_report)
    record_result("table1_synthesis", format_report(report))

    # Shape assertions.
    for key in ("gates", "function_generators", "multiplexers",
                "flip_flops"):
        fifo = report["fifo_inject"][key]
        rest = sum(report[n][key] for n in ENTITY_ORDER
                   if n != "fifo_inject")
        assert fifo > rest, f"FIFO injector must dominate {key}"
        ours = report["total"][key]
        paper = PAPER_TABLE1["total"][key]
        assert abs(ours - paper) / paper < 0.25, (key, ours, paper)

    ordering = sorted(ENTITY_ORDER, key=lambda n: report[n]["gates"])
    paper_ordering = sorted(ENTITY_ORDER,
                            key=lambda n: PAPER_TABLE1[n]["gates"])
    assert ordering == paper_ordering


def test_table1_two_instance_totals(benchmark):
    """The paper's text says totals assume two FIFO injector instances
    (its printed arithmetic uses one — a documented erratum)."""
    report = benchmark.pedantic(
        lambda: synthesis_report(fifo_instances=2), rounds=1, iterations=1
    )
    single = synthesis_report(fifo_instances=1)
    assert (report["total"]["flip_flops"]
            > single["total"]["flip_flops"])
