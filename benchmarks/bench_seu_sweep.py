"""§3.1 — availability characterization under SEU conditions.

"Random faults causing bit flip errors for system availability and fault
tolerance characterization under SEU conditions" is the injector's first
fault class.  The sweep measures delivered-message availability as the
random bit-flip rate rises, and checks the protective layering the paper
leans on: essentially every landed flip is absorbed by the CRC-8, the
UDP checksum, or framing — none reaches an application (§4.4).
"""

from benchmarks.conftest import record_result, scaled_ps
from repro.nftape import Experiment, RandomBitFlipPlan, WorkloadConfig
from repro.nftape.classify import FaultClass, classify_result
from repro.nftape.experiment import TestbedOptions
from repro.sim.timebase import MS, US


def _run(mean_interval_ps):
    plan = RandomBitFlipPlan(direction="RL",
                             mean_interval_ps=mean_interval_ps, seed=21)
    experiment = Experiment(
        f"seu-{mean_interval_ps}",
        duration_ps=scaled_ps(10 * MS),
        plan=plan,
        workload_config=WorkloadConfig(send_interval_ps=100 * US,
                                       flood_ping=False),
        testbed_options=TestbedOptions(seed=21),
    )
    result = experiment.run()
    return plan, result


def test_seu_rate_sweep(benchmark):
    intervals = [4 * MS, 1 * MS, 250 * US, 60 * US]

    def run():
        return [(interval, *_run(interval)) for interval in intervals]

    sweep = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = ["§3.1 SEU sweep: availability vs random bit-flip rate",
             "mean_interval  pulses  availability  crc8_drops  "
             "checksum_drops  class"]
    availabilities = []
    for interval, plan, result in sweep:
        availability = (result.messages_received / result.messages_sent
                        if result.messages_sent else 0.0)
        availabilities.append(availability)
        classified = classify_result(result)
        lines.append(
            f"{interval / MS:>11.2f}ms  {plan.pulses:>6}  "
            f"{availability:>11.1%}  "
            f"{result.total_host_counter('crc_errors'):>10}  "
            f"{result.checksum_drops:>14}  "
            f"{classified.fault_class.value}"
        )
        # No SEU ever reaches an application undetected.
        assert classified.fault_class is not FaultClass.ACTIVE
        assert result.corrupted_deliveries == 0
        assert result.active_misdeliveries == 0
    record_result("seu_sweep", "\n".join(lines))

    # Availability is monotone non-increasing with the SEU rate (within
    # one message of noise), and the heaviest rate does real damage.
    assert availabilities[0] >= availabilities[-1]
    assert availabilities[0] > 0.97
    assert availabilities[-1] < 1.0
