"""§4.4 — "Faults Considered Harmful": active/passive classification.

"Using this terminology, the faults observed in our injection campaigns
were all passive.  Data were dropped and lost, but not incorrectly
passed on."  The benchmark replays a representative slice of the
campaigns and classifies every outcome.
"""

from benchmarks.conftest import record_result, scaled_ps
from repro.core.faults import control_symbol_swap
from repro.hw.registers import MatchMode
from repro.myrinet.symbols import GAP, GO, IDLE, STOP
from repro.nftape import (
    Campaign,
    DutyCyclePlan,
    Experiment,
    FaultPlan,
    WorkloadConfig,
)
from repro.nftape.classify import FaultClass, classify_result
from repro.nftape.experiment import TestbedOptions
from repro.sim.timebase import MS, US

WORKLOAD = WorkloadConfig(send_interval_ps=4 * US)
OPTIONS = TestbedOptions(host_kwargs={"rx_drain_factor": 2.0})


def _campaign():
    campaign = Campaign("§4.4 classification slice")
    campaign.add(Experiment(
        "stop-deletion",
        duration_ps=scaled_ps(8 * MS),
        plan=FaultPlan("RL", control_symbol_swap(STOP, IDLE, MatchMode.ON),
                       use_serial=False),
        workload_config=WORKLOAD, testbed_options=OPTIONS,
    ))
    campaign.add(Experiment(
        "gap-merge",
        duration_ps=scaled_ps(8 * MS),
        plan=DutyCyclePlan("RL", control_symbol_swap(GAP, GO, MatchMode.ON),
                           on_ps=1 * MS, off_ps=3 * MS, use_serial=False),
        workload_config=WORKLOAD, testbed_options=OPTIONS,
    ))
    campaign.add(Experiment(
        "go-stall",
        duration_ps=scaled_ps(8 * MS),
        plan=FaultPlan("RL", control_symbol_swap(GO, STOP, MatchMode.ON),
                       use_serial=False),
        workload_config=WORKLOAD, testbed_options=OPTIONS,
    ))
    return campaign


def test_sec44_all_observed_faults_are_passive(benchmark):
    campaign = _campaign()
    table = benchmark.pedantic(campaign.run, rounds=1, iterations=1)

    lines = [table.render(), "", "classification detail:"]
    for result in campaign.results:
        classified = classify_result(result)
        lines.append(f"  {result.name:<16} {classified}")
        # The §4.4 headline: no fault passes incorrect data upward.
        assert classified.fault_class is not FaultClass.ACTIVE
        assert result.active_misdeliveries == 0
        assert result.corrupted_deliveries == 0
    # The injected faults did have passive effects.
    assert any(
        classify_result(r).fault_class is FaultClass.PASSIVE
        for r in campaign.results
    )
    record_result("sec44_classification", "\n".join(lines))
