"""Insight engine throughput — offline analysis and store query rates.

Two rates bound how ``repro.cli insight`` scales to long campaigns:

* **analysis throughput** — complete ``analyze_artifacts`` passes per
  second over a real (small) campaign artifact directory, including the
  capture decode, the span join, ranking, and the digest;
* **store query latency** — ``InsightStore.similar`` wall time against
  a store holding many campaigns (the nearest-neighbour scan is linear
  in stored campaigns by design; this pins the constant).

Writes ``BENCH_insight.json`` at the repo root; the committed snapshot
is the baseline to compare regenerated numbers against (use the same
``REPRO_BENCH_SCALE``).
"""

import json
import pathlib
import time

from benchmarks.conftest import record_result, scaled_ps
from repro.cli import main
from repro.insight import InsightStore, analyze_artifacts
from repro.sim.timebase import MS

#: Repo-root snapshot: {analyze: {...}, store: {...}}.
BENCH_INSIGHT_PATH = (
    pathlib.Path(__file__).parent.parent / "BENCH_insight.json"
)

ANALYZE_PASSES = 5
STORED_CAMPAIGNS = 64
QUERY_PASSES = 20


def _build_artifacts(tmp_path) -> pathlib.Path:
    """One engine-layout smoke campaign (the CI gate's shape)."""
    root = tmp_path / "art"
    duration_ms = max(1, int(scaled_ps(2 * MS) // MS))
    code = main([
        "campaign", "--experiments", "2",
        "--duration-ms", str(duration_ms),
        "--artifacts-dir", str(root),
        "--no-progress",
    ])
    assert code == 0
    return root


def test_insight_throughput(benchmark, tmp_path):
    root = _build_artifacts(tmp_path)

    def analyze_repeatedly():
        t0 = time.perf_counter()
        report = None
        for _ in range(ANALYZE_PASSES):
            report = analyze_artifacts(root)
        return report, time.perf_counter() - t0

    report, analyze_wall = benchmark.pedantic(
        analyze_repeatedly, rounds=1, iterations=1
    )
    assert report.incidents and report.counts["windows"] > 0

    windows = report.counts["windows"] * ANALYZE_PASSES
    analyze_row = {
        "passes": ANALYZE_PASSES,
        "wall_s": round(analyze_wall, 6),
        "windows_per_pass": report.counts["windows"],
        "windows_per_s": (
            round(windows / analyze_wall, 1) if analyze_wall else 0.0
        ),
        "reports_per_s": (
            round(ANALYZE_PASSES / analyze_wall, 2) if analyze_wall else 0.0
        ),
    }

    # Store scan: the same report under many labels is the worst case
    # for the tie-break path (every distance identical).
    with InsightStore() as store:
        for index in range(STORED_CAMPAIGNS):
            store.add_report(report, label=f"campaign-{index:03d}")
        t0 = time.perf_counter()
        results = None
        for _ in range(QUERY_PASSES):
            results = store.similar(report, top=5)
        query_wall = time.perf_counter() - t0
    assert results and len(results) == 5
    assert [r["label"] for r in results] == [
        f"campaign-{i:03d}" for i in range(5)
    ]

    store_row = {
        "stored_campaigns": STORED_CAMPAIGNS,
        "queries": QUERY_PASSES,
        "wall_s": round(query_wall, 6),
        "queries_per_s": (
            round(QUERY_PASSES / query_wall, 1) if query_wall else 0.0
        ),
        "ms_per_query": (
            round(1000.0 * query_wall / QUERY_PASSES, 3)
            if query_wall else 0.0
        ),
    }

    document = {
        "generated_by": "benchmarks/bench_insight.py",
        "schema": "analyze -> pass rates; store -> similar() scan rates",
        "report_digest": report.digest(),
        "analyze": analyze_row,
        "store": store_row,
    }
    BENCH_INSIGHT_PATH.write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n"
    )

    lines = [
        "insight engine throughput (flat smoke campaign)",
        f"  analyze: {analyze_row['passes']} passes in "
        f"{analyze_row['wall_s']:.3f}s "
        f"({analyze_row['windows_per_s']:,.0f} windows/s, "
        f"{analyze_row['reports_per_s']:.2f} reports/s)",
        f"  store:   {store_row['queries']} similar() queries over "
        f"{store_row['stored_campaigns']} campaigns in "
        f"{store_row['wall_s']:.3f}s "
        f"({store_row['ms_per_query']:.2f} ms/query)",
    ]
    record_result("insight_throughput", "\n".join(lines))
