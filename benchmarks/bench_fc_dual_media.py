"""Dual-media operation (§1, §3.4): the injector core on Fibre Channel.

"The current board has interfaces for Myrinet and FibreChannel ... the
injection logic is general and not customized to any one network."  The
benchmark drives FC frames through the tap (8b/10b decode -> the same
FIFO injector -> 8b/10b encode), measures frame throughput, and checks
the corruption semantics carry over (CRC-32 fix-up vs detection).
"""

from benchmarks.conftest import record_result, scaled_ps
from repro.core import FaultInjectorDevice
from repro.core.faults import replace_bytes
from repro.fc import FcFrame, FcFrameHeader, FcInjectorTap, FcPort
from repro.fc.encoding import Decoder8b10b, Encoder8b10b
from repro.fc.node import connect_fc
from repro.hw.registers import MatchMode
from repro.sim import Simulator
from repro.sim.timebase import MS


def _run_fc(frames: int, fault=None):
    sim = Simulator()
    device = FaultInjectorDevice(sim, medium="fibre-channel")
    tap = FcInjectorTap(sim, device)
    a = FcPort(sim, "a", 0x010101)
    b = FcPort(sim, "b", 0x020202)
    connect_fc(sim, a, b, tap=tap)
    if fault is not None:
        device.configure("R", fault)
    got = []
    b.on_frame(lambda frame: got.append(frame.payload))
    header = FcFrameHeader(d_id=0x020202, s_id=0x010101, type=0x08)
    for seq in range(frames):
        a.send_frame(FcFrame(header=header, payload=b"fc data payload %04d"
                             % seq))
    sim.run_for(scaled_ps(20 * MS))
    return got, b, tap


def test_fc_passthrough_throughput(benchmark):
    got, port, _tap = benchmark.pedantic(
        lambda: _run_fc(frames=100), rounds=1, iterations=1
    )
    assert len(got) == 100
    assert port.crc_errors == 0
    assert port.stats["disparity_errors"] == 0
    record_result(
        "fc_dual_media",
        f"FC pass-through: 100/100 frames through the injector tap, "
        f"0 CRC-32 errors, 0 disparity errors, "
        f"{port.r_rdy_sent} R_RDY credits returned",
    )


def test_fc_corruption_with_crc32_fixup(benchmark):
    fault = replace_bytes(b"data", b"DATA", match_mode=MatchMode.ON,
                          crc_fixup=True)
    got, port, tap = benchmark.pedantic(
        lambda: _run_fc(frames=50, fault=fault), rounds=1, iterations=1
    )
    assert len(got) == 50
    assert all(payload.startswith(b"fc DATA") for payload in got)
    assert tap.frames_crc_fixed == 50
    assert port.crc_errors == 0


def test_fc_corruption_detected_without_fixup(benchmark):
    fault = replace_bytes(b"data", b"DATA", match_mode=MatchMode.ON,
                          crc_fixup=False)
    got, port, _tap = benchmark.pedantic(
        lambda: _run_fc(frames=50, fault=fault), rounds=1, iterations=1
    )
    assert got == []
    assert port.crc_errors == 50


def test_8b10b_codec_throughput(benchmark):
    data = bytes(range(256)) * 8

    def run():
        encoder = Encoder8b10b()
        decoder = Decoder8b10b()
        for code in encoder.encode_stream(data):
            decoder.decode(code)
        return decoder

    decoder = benchmark(run)
    assert decoder.code_errors == 0


def test_fc_sequence_loss_amplification(benchmark):
    """Class 3 sequences amplify a single frame fault into whole-payload
    loss: the series reports the amplification factor per frame count."""
    from repro.fc import SequenceReassembler, SequenceSender
    from repro.sim.timebase import MS as _MS

    def run():
        rows = []
        for frames_per_seq in (1, 4, 8, 16):
            sim = Simulator()
            device = FaultInjectorDevice(sim, medium="fibre-channel")
            tap = FcInjectorTap(sim, device)
            a = FcPort(sim, "a", 1, bb_credit=8)
            b = FcPort(sim, "b", 2, bb_credit=8)
            connect_fc(sim, a, b, tap=tap)
            sender = SequenceSender(a, s_id=1, frame_payload=64)
            delivered = []
            reassembler = SequenceReassembler(
                sim, b, lambda s, p: delivered.append(p),
                timeout_ps=3 * _MS,
            )
            payload = bytes(
                (i % 251) for i in range(64 * frames_per_seq)
            )
            # Kill exactly one frame of the first sequence.
            device.configure("R", replace_bytes(
                payload[:4], b"\xde\xad\xbe\xef",
                match_mode=MatchMode.ONCE,
            ))
            sender.send(2, payload)   # victim
            sender.send(2, payload)   # control
            sim.run_for(scaled_ps(15 * _MS))
            rows.append((frames_per_seq, len(delivered),
                         reassembler.sequences_timed_out,
                         b.crc_errors))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["FC class 3 loss amplification: 1 corrupted frame kills the "
             "whole sequence",
             "frames/seq  delivered  timed_out  frame_crc_errors  "
             "payload_bytes_lost_per_fault"]
    for frames, delivered, timed_out, crc_errors in rows:
        lines.append(f"{frames:>10}  {delivered:>9}  {timed_out:>9}  "
                     f"{crc_errors:>16}  {64 * frames:>10}")
        assert delivered == 1          # only the control sequence arrives
        assert crc_errors == 1         # exactly one frame was hit
        # Multi-frame victims open an assembly that must age out; a
        # single-frame victim vanishes before reassembly ever starts.
        assert timed_out == (1 if frames > 1 else 0)
    record_result("fc_sequence_amplification", "\n".join(lines))
