"""Fibre Channel frames (FC-PH).

A frame is an SOF delimiter, a 24-byte header, up to 2112 payload bytes,
the IEEE CRC-32 (big-endian on the wire, covering header + payload), and
an EOF delimiter.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import CrcError, ProtocolError
from repro.fc.crc32 import crc32
from repro.fc.ordered_sets import EOF_T, SOF_I3, OrderedSet

#: Header length on the wire.
HEADER_LEN = 24
#: Maximum payload FC-PH permits.
MAX_PAYLOAD = 2112


@dataclass
class FcFrameHeader:
    """The 24-byte FC frame header."""

    r_ctl: int = 0x00
    d_id: int = 0x000000
    cs_ctl: int = 0x00
    s_id: int = 0x000000
    type: int = 0x00
    f_ctl: int = 0x000000
    seq_id: int = 0x00
    df_ctl: int = 0x00
    seq_cnt: int = 0x0000
    ox_id: int = 0xFFFF
    rx_id: int = 0xFFFF
    parameter: int = 0x00000000

    def to_bytes(self) -> bytes:
        return b"".join(
            (
                bytes([self.r_ctl]),
                self.d_id.to_bytes(3, "big"),
                bytes([self.cs_ctl]),
                self.s_id.to_bytes(3, "big"),
                bytes([self.type]),
                self.f_ctl.to_bytes(3, "big"),
                bytes([self.seq_id]),
                bytes([self.df_ctl]),
                self.seq_cnt.to_bytes(2, "big"),
                self.ox_id.to_bytes(2, "big"),
                self.rx_id.to_bytes(2, "big"),
                self.parameter.to_bytes(4, "big"),
            )
        )

    @classmethod
    def from_bytes(cls, raw: bytes) -> "FcFrameHeader":
        if len(raw) < HEADER_LEN:
            raise ProtocolError(f"FC header needs {HEADER_LEN} bytes")
        return cls(
            r_ctl=raw[0],
            d_id=int.from_bytes(raw[1:4], "big"),
            cs_ctl=raw[4],
            s_id=int.from_bytes(raw[5:8], "big"),
            type=raw[8],
            f_ctl=int.from_bytes(raw[9:12], "big"),
            seq_id=raw[12],
            df_ctl=raw[13],
            seq_cnt=int.from_bytes(raw[14:16], "big"),
            ox_id=int.from_bytes(raw[16:18], "big"),
            rx_id=int.from_bytes(raw[18:20], "big"),
            parameter=int.from_bytes(raw[20:24], "big"),
        )


@dataclass
class FcFrame:
    """One Fibre Channel frame."""

    header: FcFrameHeader
    payload: bytes = b""
    sof: OrderedSet = field(default_factory=lambda: SOF_I3)
    eof: OrderedSet = field(default_factory=lambda: EOF_T)

    def __post_init__(self) -> None:
        if len(self.payload) > MAX_PAYLOAD:
            raise ProtocolError(
                f"FC payload of {len(self.payload)} exceeds {MAX_PAYLOAD}"
            )

    def content_bytes(self) -> bytes:
        """Header + payload + CRC-32 (big-endian), as framed on the wire."""
        body = self.header.to_bytes() + self.payload
        return body + crc32(body).to_bytes(4, "big")

    @classmethod
    def from_content(cls, raw: bytes, sof: OrderedSet,
                     eof: OrderedSet) -> "FcFrame":
        """Parse the bytes between SOF and EOF; verifies the CRC-32."""
        if len(raw) < HEADER_LEN + 4:
            raise ProtocolError(f"FC frame content of {len(raw)} too short")
        body, crc_raw = raw[:-4], raw[-4:]
        expected = crc32(body)
        actual = int.from_bytes(crc_raw, "big")
        if expected != actual:
            raise CrcError(
                f"FC CRC-32 mismatch: computed {expected:#010x}, "
                f"framed {actual:#010x}"
            )
        return cls(
            header=FcFrameHeader.from_bytes(body[:HEADER_LEN]),
            payload=body[HEADER_LEN:],
            sof=sof,
            eof=eof,
        )
