"""IEEE CRC-32 as used by Fibre Channel frames.

Reflected polynomial 0xEDB88320, initial value 0xFFFFFFFF, final XOR
0xFFFFFFFF — the same CRC Ethernet and FC-PH use over the frame header
and payload.
"""

from __future__ import annotations

from typing import Iterable, List

_POLY = 0xEDB88320


def _build_table() -> List[int]:
    table = []
    for byte in range(256):
        crc = byte
        for _ in range(8):
            if crc & 1:
                crc = (crc >> 1) ^ _POLY
            else:
                crc >>= 1
        table.append(crc)
    return table


_TABLE = _build_table()


def crc32(data: Iterable[int], initial: int = 0xFFFFFFFF) -> int:
    """CRC-32 of a byte sequence.

    >>> hex(crc32(b"123456789"))
    '0xcbf43926'
    """
    crc = initial
    table = _TABLE
    for byte in data:
        crc = table[(crc ^ byte) & 0xFF] ^ (crc >> 8)
    return crc ^ 0xFFFFFFFF


def verify32(data: Iterable[int]) -> bool:
    """True if ``data`` ends in its own little-endian CRC-32."""
    raw = bytes(data)
    if len(raw) < 4:
        return False
    return crc32(raw[:-4]) == int.from_bytes(raw[-4:], "little")
