"""FC-PH class 3 sequences: multi-frame payload transfer.

A sequence carries one payload as a train of frames sharing SEQ_ID and
OX_ID, with SEQ_CNT increasing per frame: the first frame opens with
SOFi3, continuation frames use SOFn3/EOFn, and the final frame closes
the sequence with EOFt.  Class 3 is datagram service — no ACKs — so a
single lost or corrupted frame silently kills the whole sequence, which
is exactly the failure surface an in-path injector probes.

:class:`SequenceSender` segments payloads; :class:`SequenceReassembler`
collects arriving frames per (S_ID, OX_ID, SEQ_ID), delivers completed
payloads, and ages out incomplete sequences.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from repro.errors import ConfigurationError
from repro.fc.frame import FcFrame, FcFrameHeader, MAX_PAYLOAD
from repro.fc.node import FcPort
from repro.fc.ordered_sets import EOF_N, EOF_T, SOF_I3, SOF_N3
from repro.sim.kernel import Simulator
from repro.sim.timebase import MS

#: Default per-frame payload size for segmentation.
DEFAULT_FRAME_PAYLOAD = 512

#: Incomplete sequences are discarded after this long without progress.
DEFAULT_REASSEMBLY_TIMEOUT_PS = 20 * MS

#: F_CTL bits used by the model: bit 0 marks the last frame of the
#: sequence (a simplification of FC-PH's End_Sequence bit).
F_CTL_END_OF_SEQUENCE = 0x000001

SequenceKey = Tuple[int, int, int]  # (s_id, ox_id, seq_id)


class SequenceSender:
    """Segments payloads into class 3 sequences on one port."""

    def __init__(
        self,
        port: FcPort,
        s_id: int,
        frame_payload: int = DEFAULT_FRAME_PAYLOAD,
    ) -> None:
        if not 1 <= frame_payload <= MAX_PAYLOAD:
            raise ConfigurationError(
                f"frame payload must be 1..{MAX_PAYLOAD}"
            )
        self._port = port
        self._s_id = s_id
        self._frame_payload = frame_payload
        self._next_ox_id = 1
        self._next_seq_id = 0
        self.sequences_sent = 0
        self.frames_sent = 0

    def send(self, d_id: int, payload: bytes, type_code: int = 0x08) -> int:
        """Send one payload as a sequence; returns the OX_ID used."""
        ox_id = self._next_ox_id
        self._next_ox_id = (self._next_ox_id + 1) & 0xFFFF or 1
        seq_id = self._next_seq_id
        self._next_seq_id = (self._next_seq_id + 1) & 0xFF
        chunks = [
            payload[offset:offset + self._frame_payload]
            for offset in range(0, len(payload), self._frame_payload)
        ] or [b""]
        last_index = len(chunks) - 1
        for index, chunk in enumerate(chunks):
            final = index == last_index
            header = FcFrameHeader(
                r_ctl=0x00,
                d_id=d_id,
                s_id=self._s_id,
                type=type_code,
                f_ctl=F_CTL_END_OF_SEQUENCE if final else 0,
                seq_id=seq_id,
                seq_cnt=index,
                ox_id=ox_id,
            )
            frame = FcFrame(
                header=header,
                payload=chunk,
                sof=SOF_I3 if index == 0 else SOF_N3,
                eof=EOF_T if final else EOF_N,
            )
            self._port.send_frame(frame)
            self.frames_sent += 1
        self.sequences_sent += 1
        return ox_id


@dataclass
class _Assembly:
    frames: Dict[int, bytes] = field(default_factory=dict)
    last_cnt: Optional[int] = None
    last_progress_ps: int = 0


class SequenceReassembler:
    """Collects sequence frames arriving at one port."""

    def __init__(
        self,
        sim: Simulator,
        port: FcPort,
        on_payload: Callable[[int, bytes], None],
        timeout_ps: int = DEFAULT_REASSEMBLY_TIMEOUT_PS,
    ) -> None:
        self._sim = sim
        self._on_payload = on_payload
        self._timeout_ps = timeout_ps
        self._assemblies: Dict[SequenceKey, _Assembly] = {}
        self.sequences_completed = 0
        self.sequences_timed_out = 0
        self.frames_seen = 0
        port.on_frame(self.on_frame)
        sim.every(timeout_ps, self._reap, label="fc-seq-reap")

    def on_frame(self, frame: FcFrame) -> None:
        """Feed one received frame (usually wired to the port)."""
        self.frames_seen += 1
        header = frame.header
        key = (header.s_id, header.ox_id, header.seq_id)
        assembly = self._assemblies.setdefault(key, _Assembly())
        assembly.frames[header.seq_cnt] = frame.payload
        assembly.last_progress_ps = self._sim.now
        if header.f_ctl & F_CTL_END_OF_SEQUENCE:
            assembly.last_cnt = header.seq_cnt
        self._maybe_complete(key, assembly)

    def _maybe_complete(self, key: SequenceKey, assembly: _Assembly) -> None:
        if assembly.last_cnt is None:
            return
        expected = range(assembly.last_cnt + 1)
        if all(index in assembly.frames for index in expected):
            payload = b"".join(assembly.frames[index] for index in expected)
            del self._assemblies[key]
            self.sequences_completed += 1
            self._on_payload(key[0], payload)

    def _reap(self) -> None:
        """Discard assemblies that stalled — class 3 has no recovery."""
        now = self._sim.now
        stale = [
            key for key, assembly in self._assemblies.items()
            if now - assembly.last_progress_ps >= self._timeout_ps
        ]
        for key in stale:
            del self._assemblies[key]
            self.sequences_timed_out += 1

    @property
    def open_sequences(self) -> int:
        return len(self._assemblies)
