"""Fibre Channel port: framing, credit flow control, reception FSM.

An :class:`FcPort` terminates one FC link.  Transmission serializes
frames as SOF word / content characters / EOF word streams of 10-bit
code groups, gated by buffer-to-buffer credit: each frame consumes one
credit, and each R_RDY primitive received returns one (FC-PH class 3
flow control).  Reception runs an explicit hunt/in-frame state machine
keyed on K28.5, so corrupted delimiters produce the same failure modes
as on a real link: unclassifiable words are discarded, frames missing
their EOF abort, and CRC-32 failures drop the frame.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, List, Optional, Tuple

from repro.errors import ConfigurationError, CrcError, ProtocolError
from repro.fc.encoding import Decoder8b10b, Encoder8b10b
from repro.fc.frame import FcFrame
from repro.fc.ordered_sets import (
    IDLE,
    R_RDY,
    OrderedSet,
    classify_word,
    is_eof,
    is_sof,
)
from repro.myrinet.link import Channel, Link
from repro.sim.kernel import Simulator

#: 10 bits per code group at 1.0625 Gbaud ≈ 9.41 ns.
FC_CODE_PERIOD_PS = 9_412

#: Default buffer-to-buffer credit.
DEFAULT_BB_CREDIT = 2

#: Guard for runaway frames (no EOF seen).
MAX_FRAME_CONTENT = 2_200

_K28_5 = (0xBC, True)


class FcPort:
    """One end of a Fibre Channel link."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        port_id: int,
        bb_credit: int = DEFAULT_BB_CREDIT,
    ) -> None:
        if bb_credit < 1:
            raise ConfigurationError("buffer-to-buffer credit must be >= 1")
        self._sim = sim
        self.name = name
        self.port_id = port_id
        self._tx_channel: Optional[Channel] = None
        self._encoder = Encoder8b10b()
        self._decoder = Decoder8b10b()
        self._credit = bb_credit
        self._initial_credit = bb_credit
        self._tx_queue: Deque[FcFrame] = deque()
        self._handler: Optional[Callable[[FcFrame], None]] = None
        self._pump_scheduled = False

        # reception FSM -----------------------------------------------
        self._word: List[Tuple[int, bool]] = []
        self._in_frame = False
        self._content: List[int] = []
        self._sof: Optional[OrderedSet] = None

        # counters ------------------------------------------------------
        self.frames_sent = 0
        self.frames_received = 0
        self.crc_errors = 0
        self.malformed_words = 0
        self.aborted_frames = 0
        self.r_rdy_sent = 0
        self.r_rdy_received = 0
        self.credit_stalls = 0
        self.oversize_aborts = 0

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------

    def attach_link(self, link: Link, side: str) -> None:
        if self._tx_channel is not None:
            raise ConfigurationError(f"{self.name} already attached")
        if side == "a":
            self._tx_channel = link.attach_a(self)
        elif side == "b":
            self._tx_channel = link.attach_b(self)
        else:
            raise ConfigurationError(f"link side must be 'a' or 'b': {side!r}")

    def on_frame(self, handler: Callable[[FcFrame], None]) -> None:
        """Install the received-frame callback."""
        self._handler = handler

    @property
    def credit(self) -> int:
        """Currently available buffer-to-buffer credits."""
        return self._credit

    # ------------------------------------------------------------------
    # transmit
    # ------------------------------------------------------------------

    def send_frame(self, frame: FcFrame) -> None:
        """Queue one frame; transmits when credit and the wire allow."""
        self._tx_queue.append(frame)
        self._schedule_pump()

    def _schedule_pump(self) -> None:
        if self._pump_scheduled:
            return
        self._pump_scheduled = True
        self._sim.schedule(0, self._pump, label=f"{self.name}:fc-pump")

    def _pump(self) -> None:
        self._pump_scheduled = False
        if self._tx_channel is None or not self._tx_queue:
            return
        if self._credit <= 0:
            self.credit_stalls += 1
            return  # resumed by R_RDY reception
        now = self._sim.now
        free_at = self._tx_channel.free_at()
        if free_at > now:
            self._pump_scheduled = True
            self._sim.schedule_at(free_at, self._pump,
                                  label=f"{self.name}:fc-wait")
            return
        frame = self._tx_queue.popleft()
        self._credit -= 1
        self._tx_channel.send(self._encode_frame(frame))
        self.frames_sent += 1
        if self._tx_queue:
            self._schedule_pump()

    def _encode_characters(
        self, characters: List[Tuple[int, bool]]
    ) -> List[int]:
        return [self._encoder.encode(value, is_k) for value, is_k in characters]

    def _encode_frame(self, frame: FcFrame) -> List[int]:
        characters: List[Tuple[int, bool]] = list(IDLE.characters)
        characters.extend(frame.sof.characters)
        characters.extend((byte, False) for byte in frame.content_bytes())
        characters.extend(frame.eof.characters)
        return self._encode_characters(characters)

    def _send_primitive(self, ordered_set: OrderedSet) -> None:
        if self._tx_channel is None:
            return
        self._tx_channel.send(self._encode_characters(list(ordered_set.characters)))

    # ------------------------------------------------------------------
    # receive
    # ------------------------------------------------------------------

    def on_burst(self, burst: List[int], channel: Channel) -> None:
        """Decode a burst of 10-bit code groups."""
        for code in burst:
            decoded = self._decoder.decode(code)
            if decoded is None:
                # Invalid code group: breaks any word or frame in flight.
                self._abort_word()
                continue
            self._consume_character(decoded)

    def _abort_word(self) -> None:
        if self._word:
            self.malformed_words += 1
            self._word = []
        if self._in_frame:
            self.aborted_frames += 1
            self._reset_frame()
            self._return_credit()

    def _consume_character(self, character: Tuple[int, bool]) -> None:
        value, is_k = character
        if self._word:
            self._word.append(character)
            if len(self._word) == 4:
                word = tuple(self._word)
                self._word = []
                self._handle_word(word)
            return
        if is_k:
            if character == _K28_5:
                self._word = [character]
            else:
                self.malformed_words += 1
            return
        if self._in_frame:
            self._content.append(value)
            if len(self._content) > MAX_FRAME_CONTENT:
                self.oversize_aborts += 1
                self._reset_frame()
            return
        # Data character outside any frame or word: stray, ignore.

    def _handle_word(self, word: Tuple[Tuple[int, bool], ...]) -> None:
        ordered_set = classify_word(word)
        if ordered_set is None:
            self.malformed_words += 1
            if self._in_frame:
                self.aborted_frames += 1
                self._reset_frame()
            return
        if ordered_set is R_RDY:
            self.r_rdy_received += 1
            self._credit = min(self._initial_credit, self._credit + 1)
            self._schedule_pump()
            return
        if ordered_set is IDLE:
            return
        if is_sof(ordered_set):
            if self._in_frame:
                self.aborted_frames += 1
            self._in_frame = True
            self._sof = ordered_set
            self._content = []
            return
        if is_eof(ordered_set):
            if not self._in_frame:
                self.malformed_words += 1
                return
            self._finish_frame(ordered_set)

    def _finish_frame(self, eof: OrderedSet) -> None:
        content = bytes(self._content)
        sof = self._sof
        self._reset_frame()
        assert sof is not None
        # Buffer-to-buffer credit returns as soon as the receive buffer
        # frees — whether or not the frame validates (FC-PH class 3);
        # otherwise a burst of corrupted frames would wedge the sender.
        self._return_credit()
        try:
            frame = FcFrame.from_content(content, sof, eof)
        except CrcError:
            self.crc_errors += 1
            return
        except ProtocolError:
            self.aborted_frames += 1
            return
        self.frames_received += 1
        if self._handler is not None:
            self._handler(frame)

    def _return_credit(self) -> None:
        self._send_primitive(R_RDY)
        self.r_rdy_sent += 1

    def _reset_frame(self) -> None:
        self._in_frame = False
        self._content = []
        self._sof = None

    @property
    def stats(self) -> dict:
        return {
            "frames_sent": self.frames_sent,
            "frames_received": self.frames_received,
            "crc_errors": self.crc_errors,
            "malformed_words": self.malformed_words,
            "aborted_frames": self.aborted_frames,
            "r_rdy_sent": self.r_rdy_sent,
            "r_rdy_received": self.r_rdy_received,
            "credit_stalls": self.credit_stalls,
            "code_errors": self._decoder.code_errors,
            "disparity_errors": self._decoder.disparity_errors,
        }


def connect_fc(
    sim: Simulator,
    port_a: FcPort,
    port_b: FcPort,
    tap: Optional[object] = None,
    char_period_ps: int = FC_CODE_PERIOD_PS,
    propagation_ps: int = 15_000,
) -> List[Link]:
    """Wire two FC ports together, optionally through an injector tap.

    Returns the created link segments.
    """
    if tap is None:
        link = Link(sim, f"{port_a.name}<->{port_b.name}",
                    char_period_ps=char_period_ps,
                    propagation_ps=propagation_ps)
        port_a.attach_link(link, "a")
        port_b.attach_link(link, "b")
        return [link]
    left = Link(sim, f"{port_a.name}<->tap", char_period_ps=char_period_ps,
                propagation_ps=propagation_ps)
    right = Link(sim, f"tap<->{port_b.name}", char_period_ps=char_period_ps,
                 propagation_ps=propagation_ps)
    port_a.attach_link(left, "a")
    tap.attach_left(left, "b")
    tap.attach_right(right, "a")
    port_b.attach_link(right, "b")
    return [left, right]
