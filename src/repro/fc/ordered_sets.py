"""Fibre Channel ordered sets.

FC primitive signals and delimiters are four-character transmission
words beginning with K28.5.  The set used here covers what the link
model needs: IDLE fill words, the R_RDY credit primitive, two
start-of-frame delimiters (connectionless class 3, initiate and normal)
and two end-of-frame delimiters (terminate and normal).

The second-character choices follow FC-PH's structure (D21.x selectors
followed by a repeated qualifier character); FC-PH additionally varies
some delimiters by current running disparity, a refinement this model
omits (documented substitution, DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

#: K28.5 as an (value, is_k) character: x=28, y=5.
K28_5 = (0xBC, True)


def _d(x: int, y: int) -> Tuple[int, bool]:
    """The (value, is_k) pair for data character D.x.y."""
    return ((y << 5) | x, False)


@dataclass(frozen=True)
class OrderedSet:
    """A four-character FC transmission word."""

    name: str
    characters: Tuple[Tuple[int, bool], ...]

    def __post_init__(self) -> None:
        assert len(self.characters) == 4
        assert self.characters[0] == K28_5

    @property
    def bytes_view(self) -> Tuple[int, ...]:
        return tuple(value for value, _is_k in self.characters)


def _ordered_set(name: str, second: Tuple[int, bool],
                 qualifier: Tuple[int, bool]) -> OrderedSet:
    return OrderedSet(name, (K28_5, second, qualifier, qualifier))


#: Fill word transmitted between frames.
IDLE = _ordered_set("IDLE", _d(21, 4), _d(21, 5))
#: Receiver-ready: returns one buffer-to-buffer credit.
R_RDY = _ordered_set("R_RDY", _d(21, 4), _d(10, 2))
#: Start of frame, class 3, initiate sequence.
SOF_I3 = _ordered_set("SOFi3", _d(21, 5), _d(23, 2))
#: Start of frame, class 3, normal.
SOF_N3 = _ordered_set("SOFn3", _d(21, 5), _d(22, 2))
#: End of frame, terminate.
EOF_T = _ordered_set("EOFt", _d(21, 4), _d(21, 3))
#: End of frame, normal.
EOF_N = _ordered_set("EOFn", _d(21, 4), _d(21, 6))

#: Every defined ordered set, by name.
ALL_ORDERED_SETS: Dict[str, OrderedSet] = {
    os.name: os for os in (IDLE, R_RDY, SOF_I3, SOF_N3, EOF_T, EOF_N)
}

#: Lookup from the three characters following K28.5.
_BY_TAIL: Dict[Tuple[Tuple[int, bool], ...], OrderedSet] = {
    os.characters[1:]: os for os in ALL_ORDERED_SETS.values()
}

#: Start-of-frame delimiters.
SOF_SETS = (SOF_I3, SOF_N3)
#: End-of-frame delimiters.
EOF_SETS = (EOF_T, EOF_N)


def classify_word(characters: Tuple[Tuple[int, bool], ...]) -> Optional[OrderedSet]:
    """Identify a four-character word as an ordered set, or None.

    A word whose tail matches no defined set — e.g. one corrupted by the
    injector — is unclassifiable and the receiver discards it.
    """
    if len(characters) != 4 or characters[0] != K28_5:
        return None
    return _BY_TAIL.get(tuple(characters[1:]))


def is_sof(ordered_set: OrderedSet) -> bool:
    """True if the set is a start-of-frame delimiter."""
    return ordered_set in SOF_SETS


def is_eof(ordered_set: OrderedSet) -> bool:
    """True if the set is an end-of-frame delimiter."""
    return ordered_set in EOF_SETS
