"""IBM 8b/10b transmission code (Widmer & Franaszek), as FC-PH uses it.

Each byte is split into a 5-bit (EDCBA) and a 3-bit (HGF) sub-block,
encoded to 6 bits (abcdei) and 4 bits (fghj) respectively.  Encodings
come in running-disparity (RD) pairs; the encoder picks the variant that
keeps the running disparity within ±1, and the D.x.A7 alternate is
substituted for D.x.7 where the primary would create a run of five
(RD− with x ∈ {17, 18, 20}; RD+ with x ∈ {11, 13, 14}).

Code groups are represented as 10-bit integers with transmission bit
``a`` in the most significant position (bit 9) and ``j`` in bit 0.

Control (K) code groups cover the twelve defined by the standard:
K28.0–K28.7, K23.7, K27.7, K29.7 and K30.7; Fibre Channel itself only
uses K28.5.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import EncodingError

# ---------------------------------------------------------------------------
# canonical tables
# ---------------------------------------------------------------------------

#: 5b/6b for data: index x (0..31) -> (abcdei for RD-, abcdei for RD+),
#: given as bit strings in transmission order a..i.
_5B6B: List[Tuple[str, str]] = [
    ("100111", "011000"),  # D0
    ("011101", "100010"),  # D1
    ("101101", "010010"),  # D2
    ("110001", "110001"),  # D3
    ("110101", "001010"),  # D4
    ("101001", "101001"),  # D5
    ("011001", "011001"),  # D6
    ("111000", "000111"),  # D7
    ("111001", "000110"),  # D8
    ("100101", "100101"),  # D9
    ("010101", "010101"),  # D10
    ("110100", "110100"),  # D11
    ("001101", "001101"),  # D12
    ("101100", "101100"),  # D13
    ("011100", "011100"),  # D14
    ("010111", "101000"),  # D15
    ("011011", "100100"),  # D16
    ("100011", "100011"),  # D17
    ("010011", "010011"),  # D18
    ("110010", "110010"),  # D19
    ("001011", "001011"),  # D20
    ("101010", "101010"),  # D21
    ("011010", "011010"),  # D22
    ("111010", "000101"),  # D23
    ("110011", "001100"),  # D24
    ("100110", "100110"),  # D25
    ("010110", "010110"),  # D26
    ("110110", "001001"),  # D27
    ("001110", "001110"),  # D28
    ("101110", "010001"),  # D29
    ("011110", "100001"),  # D30
    ("101011", "010100"),  # D31
]

#: 3b/4b for data: index y (0..7) -> (fghj RD-, fghj RD+) primary codes.
_3B4B: List[Tuple[str, str]] = [
    ("1011", "0100"),  # D.x.0
    ("1001", "1001"),  # D.x.1
    ("0101", "0101"),  # D.x.2
    ("1100", "0011"),  # D.x.3
    ("1101", "0010"),  # D.x.4
    ("1010", "1010"),  # D.x.5
    ("0110", "0110"),  # D.x.6
    ("1110", "0001"),  # D.x.7 primary
]

#: D.x.A7 alternate encoding for y=7.
_3B4B_A7 = ("0111", "1000")

#: x values whose D.x.7 must use the A7 alternate at each running disparity.
_A7_NEG = frozenset((17, 18, 20))
_A7_POS = frozenset((11, 13, 14))

#: K28 5b/6b block.
_K28_6B = ("001111", "110000")

#: 3b/4b for K28.y: index y -> (RD-, RD+).
_K28_4B: List[Tuple[str, str]] = [
    ("0100", "1011"),  # K28.0
    ("1001", "0110"),  # K28.1
    ("0101", "1010"),  # K28.2
    ("0011", "1100"),  # K28.3
    ("0010", "1101"),  # K28.4
    ("1010", "0101"),  # K28.5
    ("0110", "1001"),  # K28.6
    ("1000", "0111"),  # K28.7
]

#: The other legal K characters: K23.7, K27.7, K29.7, K30.7 use the data
#: 5b/6b block of x with the (1000, 0111) 4-bit block.
_KX7 = (23, 27, 29, 30)


def _bits(text: str) -> int:
    return int(text, 2)


def _disparity(code: int, width: int) -> int:
    """Ones minus zeros over ``width`` bits."""
    ones = bin(code).count("1")
    return ones - (width - ones)


# ---------------------------------------------------------------------------
# encoder tables: (value, is_k, rd) -> (10-bit code, new rd)
# ---------------------------------------------------------------------------


def _encode_sub(six: str, four: str) -> int:
    return (_bits(six) << 4) | _bits(four)


def _build_encode_tables() -> Dict[Tuple[int, bool, int], Tuple[int, int]]:
    table: Dict[Tuple[int, bool, int], Tuple[int, int]] = {}
    for value in range(256):
        x = value & 0x1F
        y = value >> 5
        for rd in (-1, 1):
            six = _5B6B[x][0 if rd < 0 else 1]
            rd_mid = rd if _disparity(_bits(six), 6) == 0 else -rd
            # Running disparity after an unbalanced sub-block flips sign;
            # balanced sub-blocks leave it unchanged.
            if y == 7:
                use_alt = (rd_mid < 0 and x in _A7_NEG) or (
                    rd_mid > 0 and x in _A7_POS
                )
                pair = _3B4B_A7 if use_alt else _3B4B[7]
            else:
                pair = _3B4B[y]
            four = pair[0 if rd_mid < 0 else 1]
            rd_out = rd_mid if _disparity(_bits(four), 4) == 0 else -rd_mid
            table[(value, False, rd)] = (_encode_sub(six, four), rd_out)
    # K codes.  Note: the published K tables are indexed by the RD at the
    # *start of the character* (the mid-block flip is baked into the fghj
    # column), unlike the D.x.y 3b/4b table above which is mid-indexed.
    for y in range(8):
        value = (y << 5) | 28
        for rd in (-1, 1):
            six = _K28_6B[0 if rd < 0 else 1]
            rd_mid = -rd  # K28's 6b block is always unbalanced
            four = _K28_4B[y][0 if rd < 0 else 1]
            rd_out = rd_mid if _disparity(_bits(four), 4) == 0 else -rd_mid
            table[(value, True, rd)] = (_encode_sub(six, four), rd_out)
    for x in _KX7:
        value = (7 << 5) | x
        for rd in (-1, 1):
            six = _5B6B[x][0 if rd < 0 else 1]
            rd_mid = rd if _disparity(_bits(six), 6) == 0 else -rd
            four = "1000" if rd < 0 else "0111"
            rd_out = rd_mid if _disparity(_bits(four), 4) == 0 else -rd_mid
            table[(value, True, rd)] = (_encode_sub(six, four), rd_out)
    return table


_ENCODE = _build_encode_tables()

#: Decode table: 10-bit code -> (value, is_k).  Valid code groups are
#: unique across both disparities.
_DECODE: Dict[int, Tuple[int, bool]] = {}
for (_value, _is_k, _rd), (_code, _rd_out) in _ENCODE.items():
    existing = _DECODE.get(_code)
    if existing is not None and existing != (_value, _is_k):
        raise AssertionError(
            f"8b/10b table collision: {_code:010b} decodes to both "
            f"{existing} and {(_value, _is_k)}"
        )
    _DECODE[_code] = (_value, _is_k)


# ---------------------------------------------------------------------------
# public API
# ---------------------------------------------------------------------------


def encode_byte(value: int, is_k: bool, rd: int) -> Tuple[int, int]:
    """Encode one character at running disparity ``rd`` (±1).

    Returns ``(code_group, new_rd)``.  Raises :class:`EncodingError` for
    an undefined K character.
    """
    if rd not in (-1, 1):
        raise EncodingError(f"running disparity must be ±1, got {rd}")
    key = (value & 0xFF, is_k, rd)
    entry = _ENCODE.get(key)
    if entry is None:
        raise EncodingError(
            f"K.{value & 0x1F}.{value >> 5} is not a defined control "
            f"character"
        )
    return entry


def decode_code_group(code: int) -> Tuple[int, bool]:
    """Decode one 10-bit code group to ``(value, is_k)``.

    Raises :class:`EncodingError` on an invalid code group.
    """
    entry = _DECODE.get(code & 0x3FF)
    if entry is None:
        raise EncodingError(f"invalid 10-bit code group {code:010b}")
    return entry


class Encoder8b10b:
    """Stateful encoder tracking running disparity (starts at RD−)."""

    def __init__(self) -> None:
        self.rd = -1
        self.characters_encoded = 0

    def encode(self, value: int, is_k: bool = False) -> int:
        code, self.rd = encode_byte(value, is_k, self.rd)
        self.characters_encoded += 1
        return code

    def encode_stream(self, data: bytes) -> List[int]:
        """Encode a run of data characters."""
        return [self.encode(b) for b in data]


class Decoder8b10b:
    """Stateful decoder validating code groups and running disparity."""

    def __init__(self) -> None:
        self.rd = -1
        self.code_errors = 0
        self.disparity_errors = 0
        self.characters_decoded = 0

    def decode(self, code: int) -> Optional[Tuple[int, bool]]:
        """Decode one code group; returns None (and counts) on error."""
        entry = _DECODE.get(code & 0x3FF)
        if entry is None:
            self.code_errors += 1
            # An invalid group still moves the disparity; approximate
            # with its actual bit balance.
            balance = _disparity(code & 0x3FF, 10)
            if balance:
                self.rd = 1 if balance > 0 else -1
            return None
        value, is_k = entry
        expected = _ENCODE.get((value, is_k, self.rd))
        if expected is None or expected[0] != (code & 0x3FF):
            # The code group exists but is illegal at this disparity.
            self.disparity_errors += 1
            other = _ENCODE.get((value, is_k, -self.rd))
            if other is not None and other[0] == (code & 0x3FF):
                self.rd = other[1]
        else:
            self.rd = expected[1]
        self.characters_decoded += 1
        return entry
