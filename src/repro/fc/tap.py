"""Splicing the fault injector into a Fibre Channel link.

The core FPGA design "is general, and its use on a different network
would only require the redesign of the network interface logic" (paper
§1): the FCPHY transceivers deliver decoded characters (an 8-bit value
plus a data/control flag) to the FPGA, which is exactly the 9-bit symbol
alphabet the FIFO injector already processes.

:class:`FcInjectorTap` is that interface logic: per direction it decodes
the incoming 10-bit code groups (PHY receive), runs the characters
through the device's :class:`~repro.hw.injector.FifoInjector`, optionally
recomputes the frame's CRC-32 (the FC analogue of the Myrinet CRC fix-up),
re-encodes with a fresh running disparity (PHY transmit), and
retransmits on the opposite segment.

An injection that turns a character into an *undefined* control
character cannot be encoded; the PHY then emits an invalid code group on
the line, which the receiving port counts as a code error — the same
observable a real PHY driven out of spec would produce.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import ConfigurationError, EncodingError
from repro.fc.crc32 import crc32
from repro.fc.encoding import Decoder8b10b, Encoder8b10b
from repro.fc.ordered_sets import classify_word, is_eof, is_sof
from repro.core.device import FaultInjectorDevice
from repro.myrinet.link import Channel, Link
from repro.myrinet.symbols import Symbol, control_symbol, data_symbol
from repro.sim.kernel import Simulator

#: An intentionally invalid 10-bit code group (run of six ones).
INVALID_CODE_GROUP = 0b1111110000

_K28_5_SYMBOL = control_symbol(0xBC)


class _DirectionState:
    """Per-direction PHY codecs and CRC fix-up frame tracking."""

    def __init__(self) -> None:
        self.decoder = Decoder8b10b()
        self.encoder = Encoder8b10b()
        self.word: List[Symbol] = []
        self.in_frame = False
        self.content: List[Symbol] = []
        self.frame_dirty = False
        self.out: List[Symbol] = []


class FcInjectorTap:
    """The device's Fibre Channel interface logic."""

    def __init__(self, sim: Simulator, device: FaultInjectorDevice) -> None:
        self._sim = sim
        self._device = device
        self._tx: Dict[str, Optional[Channel]] = {"left": None, "right": None}
        self._channel_direction: Dict[int, str] = {}
        self._states = {"R": _DirectionState(), "L": _DirectionState()}
        self.encode_failures = 0
        self.frames_crc_fixed = 0

    # ------------------------------------------------------------------
    # wiring (same contract as FaultInjectorDevice)
    # ------------------------------------------------------------------

    def attach_left(self, link: Link, side: str) -> None:
        self._attach("left", link, side)

    def attach_right(self, link: Link, side: str) -> None:
        self._attach("right", link, side)

    def _attach(self, where: str, link: Link, side: str) -> None:
        if self._tx[where] is not None:
            raise ConfigurationError(f"FC tap {where} already attached")
        if side == "a":
            tx = link.attach_a(self)
            rx = link.b_to_a
        elif side == "b":
            tx = link.attach_b(self)
            rx = link.a_to_b
        else:
            raise ConfigurationError(f"link side must be 'a' or 'b': {side!r}")
        self._tx[where] = tx
        self._channel_direction[id(rx)] = "R" if where == "left" else "L"

    # ------------------------------------------------------------------
    # data path
    # ------------------------------------------------------------------

    def on_burst(self, burst: List[int], channel: Channel) -> None:
        direction = self._channel_direction.get(id(channel))
        if direction is None:
            raise ConfigurationError("FC tap: burst on unknown channel")
        out_channel = (
            self._tx["right"] if direction == "R" else self._tx["left"]
        )
        if out_channel is None:
            raise ConfigurationError("FC tap: output segment not attached")
        state = self._states[direction]
        injector = self._device.injector(direction)

        # PHY receive: 10b -> (value, D/C) characters.
        symbols: List[Symbol] = []
        for code in burst:
            decoded = state.decoder.decode(code)
            if decoded is None:
                continue  # invalid group: character lost on the line
            value, is_k = decoded
            symbols.append(
                control_symbol(value) if is_k else data_symbol(value)
            )

        events_before = injector.injections
        processed = injector.process_burst(symbols)
        dirty = injector.injections > events_before

        output = self._crc_fixup(state, processed, dirty,
                                 injector.config.crc_fixup)

        # PHY transmit: characters -> 10b code groups.
        codes: List[int] = []
        for symbol in output:
            try:
                codes.append(
                    state.encoder.encode(symbol.value, not symbol.is_data)
                )
            except EncodingError:
                self.encode_failures += 1
                codes.append(INVALID_CODE_GROUP)
        if codes:
            latency = self._device.pipeline_latency_ps
            self._sim.schedule(
                latency,
                lambda: out_channel.send(codes),
                label=f"fc-tap:{direction}:out",
            )

    # ------------------------------------------------------------------
    # FC CRC-32 fix-up
    # ------------------------------------------------------------------

    def _crc_fixup(
        self,
        state: _DirectionState,
        symbols: List[Symbol],
        dirty: bool,
        enabled: bool,
    ) -> List[Symbol]:
        """Rewrite the CRC-32 of frames dirtied by an injection.

        The stage buffers frame content between SOF and EOF words; clean
        frames and all primitives pass through byte-identical.  When the
        stage is disabled and idle the burst is returned untouched.
        """
        if dirty:
            state.frame_dirty = True
        if not enabled and not state.in_frame and not state.word:
            return symbols
        out: List[Symbol] = []
        for symbol in symbols:
            if state.word:
                state.word.append(symbol)
                if len(state.word) == 4:
                    self._finish_word(state, out, enabled)
                continue
            if symbol == _K28_5_SYMBOL:
                state.word = [symbol]
                continue
            if state.in_frame:
                state.content.append(symbol)
            else:
                out.append(symbol)
        return out

    def _finish_word(self, state: _DirectionState, out: List[Symbol],
                     enabled: bool) -> None:
        word = state.word
        state.word = []
        characters = tuple(
            (s.value, not s.is_data) for s in word
        )
        ordered_set = classify_word(characters)
        if ordered_set is not None and is_sof(ordered_set):
            out.extend(word)
            state.in_frame = True
            state.content = []
            return
        if ordered_set is not None and is_eof(ordered_set) and state.in_frame:
            content = state.content
            state.in_frame = False
            state.content = []
            if enabled and state.frame_dirty and len(content) >= 4:
                body = bytes(
                    s.value for s in content[:-4] if s.is_data
                )
                fixed = crc32(body).to_bytes(4, "big")
                content = content[:-4] + [data_symbol(b) for b in fixed]
                self.frames_crc_fixed += 1
            state.frame_dirty = False
            out.extend(content)
            out.extend(word)
            return
        # Primitive signal or unclassifiable word: flush any frame in
        # flight (the line lost its framing) and pass the word through.
        if state.in_frame and ordered_set is None:
            out.extend(state.content)
            state.in_frame = False
            state.content = []
        out.extend(word)
