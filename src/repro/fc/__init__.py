"""Fibre Channel substrate (ANSI X3.230-1994, FC-PH).

The paper's board carries a Fibre Channel PHY pair alongside the Myrinet
pair, and "failure analysis can be performed simultaneously over both of
these networks".  This package provides the second medium: a full 8b/10b
codec with running-disparity tracking, K28.5-led ordered sets, FC frames
with the IEEE CRC-32, buffer-to-buffer credit flow control, and an
injector tap that splices the same :class:`~repro.core.FaultInjectorDevice`
injector pipeline into an FC link — the PHY models doing the 10b/8b
conversion exactly as the hardware FCPHY chips would.
"""

from repro.fc.crc32 import crc32
from repro.fc.encoding import (
    Decoder8b10b,
    Encoder8b10b,
    decode_code_group,
    encode_byte,
)
from repro.fc.frame import FcFrame, FcFrameHeader
from repro.fc.node import FcPort
from repro.fc.ordered_sets import (
    EOF_N,
    EOF_T,
    IDLE,
    R_RDY,
    SOF_I3,
    SOF_N3,
    OrderedSet,
)
from repro.fc.sequence import SequenceReassembler, SequenceSender
from repro.fc.tap import FcInjectorTap

__all__ = [
    "crc32",
    "Encoder8b10b",
    "Decoder8b10b",
    "encode_byte",
    "decode_code_group",
    "FcFrame",
    "FcFrameHeader",
    "FcPort",
    "OrderedSet",
    "IDLE",
    "R_RDY",
    "SOF_I3",
    "SOF_N3",
    "EOF_T",
    "EOF_N",
    "FcInjectorTap",
    "SequenceSender",
    "SequenceReassembler",
]
