"""Monitoring-as-a-service: the multi-tenant campaign server.

The paper's architecture separates the *probe* (in the data path,
cannot stall) from the *analysis station* (off to the side, consuming
what the probe forwards).  :class:`MonitorServer` is the analysis
station for the reproduction's own campaigns: a stdlib-only asyncio
HTTP service that accepts :class:`~repro.runtime.spec.CampaignSpec`
JSON, queues it behind bounded back-pressure, executes it on a runner
thread, streams live lifecycle events from the
:class:`~repro.runtime.events.EventBus`, and serves the merged
artifacts plus the auto-run :mod:`repro.insight` verdict as JSON.

Architecture — three thread roles, all buffers bounded:

* the **asyncio loop thread** owns every socket.  Handlers never run
  simulations; the slowest thing they do is poll a bounded
  event-bus subscription between ``await asyncio.sleep`` ticks;
* the **runner thread(s)** drain the pending queue.  The default is one
  runner executing one campaign at a time; with ``runners > 1`` the
  queue drains N campaigns concurrently, and every record then runs on
  the :class:`~repro.runtime.fabric.FabricExecutor` — whose experiments
  execute in *worker processes* — because the in-process telemetry and
  capture sessions are process-wide state that two concurrent
  in-process campaigns would corrupt.  When the bounded queue is full,
  ``POST /campaigns`` answers ``429`` immediately — submission never
  blocks on execution;
* the **submitting client's** first event (``campaign_queued``) is
  published synchronously at accept time, so a follower attached right
  after the ``202`` sees the stream from seq 0 via history replay.

Determinism contract: the executor runs with ``label=None`` (the merged
artifact label stays ``spec.name``) and ``events_label=<campaign id>``
(the event stream is keyed by the server-unique id).  A spec submitted
over HTTP therefore produces byte-identical merged tables and insight
digests to the same spec run offline through :mod:`repro.api` — the
server only *observes*; tests pin this.

Tenancy: artifacts live under ``root/<tenant>/<campaign-id>/`` and every
campaign endpoint 404s unless the request's tenant (header ``X-Tenant``
or query ``?tenant=``, default ``default``) matches the owner.

Wall-clock note: this package carries the SIM001/FLOW101 scoped
allowance — the server reads host time for uptime, heartbeats and
latency metrics, never inside sim logic.
"""

from __future__ import annotations

import asyncio
import re
import threading
import time
from collections import deque
from pathlib import Path
from queue import Full
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.nftape.campaign import Campaign
from repro.runtime.events import (
    DEFAULT_HISTORY,
    EVENTS,
    EventBus,
    TERMINAL_KINDS,
)
from repro.runtime.executors import PooledExecutor, SerialExecutor
from repro.runtime.fabric import FabricExecutor
from repro.runtime.spec import CampaignSpec
from repro.runtime.spec_codec import spec_from_json
from repro.scenario import compile_scenario, scenario_from_json
from repro.server.http import (
    BadRequest,
    Request,
    error_body,
    json_response,
    read_request,
    response,
    stream_headers,
)
from repro.telemetry.exporters import PROMETHEUS_CONTENT_TYPE, to_prometheus
from repro.telemetry.metrics import MetricsRegistry
from repro.errors import ConfigurationError

__all__ = [
    "DEFAULT_QUEUE_LIMIT",
    "MonitorServer",
    "CampaignRecord",
]

#: Pending campaigns the server holds before answering 429.
DEFAULT_QUEUE_LIMIT = 8
#: How long the streaming poll sleeps between subscription drains.
STREAM_POLL_S = 0.05
#: Valid tenant names (also path-safe directory names).
_TENANT_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9_.-]{0,63}$")

#: Campaign lifecycle states as the status endpoint reports them.
STATES = ("queued", "running", "completed", "failed")


class CampaignRecord:
    """One submitted campaign's server-side state."""

    def __init__(self, id: str, tenant: str, spec: CampaignSpec,
                 root: Path, workers: int) -> None:
        self.id = id
        self.tenant = tenant
        self.spec = spec
        self.workers = workers
        self.state = "queued"
        self.error: Optional[str] = None
        self.dir = root / tenant / id
        self.submitted_monotonic = time.monotonic()
        self.finished_monotonic: Optional[float] = None
        self.table_text: Optional[str] = None
        self.report_doc: Optional[Dict[str, Any]] = None
        self.report_digest: Optional[str] = None

    def status_doc(self, bus: EventBus) -> Dict[str, Any]:
        """The ``GET /campaigns/{id}`` body."""
        doc: Dict[str, Any] = {
            "id": self.id,
            "tenant": self.tenant,
            "name": self.spec.name,
            "experiments": len(self.spec),
            "workers": self.workers,
            "state": self.state,
            "events": bus.last_seq(self.id),
            "links": {
                "events": f"/campaigns/{self.id}/events",
                "report": f"/campaigns/{self.id}/report",
                "table": f"/campaigns/{self.id}/artifacts/table",
                "metrics": f"/campaigns/{self.id}/artifacts/metrics",
                "capture": f"/campaigns/{self.id}/artifacts/capture",
            },
        }
        if self.error is not None:
            doc["error"] = self.error
        if self.report_digest is not None:
            doc["report_digest"] = self.report_digest
        return doc


class MonitorServer:
    """The asyncio campaign service (see module docstring).

    ::

        server = MonitorServer(root="srv")
        server.start()                 # binds, spawns loop + runner
        ... HTTP on server.address ...
        server.stop()

    ``port=0`` binds an ephemeral port; :attr:`address` is the bound
    ``(host, port)`` once :meth:`start` returns.
    """

    def __init__(
        self,
        root: str,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 1,
        queue_limit: int = DEFAULT_QUEUE_LIMIT,
        history: int = DEFAULT_HISTORY,
        timeout_s: Optional[float] = None,
        runners: int = 1,
    ) -> None:
        self.root = Path(root)
        self.host = host
        self.port = port
        self.workers = max(1, workers)
        self.queue_limit = max(1, queue_limit)
        self.timeout_s = timeout_s
        #: Concurrent campaign runner threads.  More than one forces
        #: every campaign onto the fabric executor (process-isolated
        #: experiments) — see the module docstring.
        self.runners = max(1, runners)
        self.bus = EventBus(history=history)
        self.address: Optional[Tuple[str, int]] = None

        self._records: Dict[str, CampaignRecord] = {}
        self._order: List[str] = []
        self._lock = threading.Lock()
        #: Pending campaigns, FIFO; bounded by ``queue_limit`` at submit
        #: time.  A plain deque under the lock (not ``queue.Queue``) so
        #: the runner's gate check and its pop are one atomic decision —
        #: ``pause()`` deterministically freezes the queue depth.
        self._pending: Deque[CampaignRecord] = deque()
        self._counter = 0
        self._started_monotonic: Optional[float] = None
        self._stopping = threading.Event()
        #: Runner gate: cleared by :meth:`pause` (tests use this to pin
        #: the 429 path deterministically).
        self._gate = threading.Event()
        self._gate.set()
        self._runner_threads: List[threading.Thread] = []
        self._loop_thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._asyncio_server: Optional[asyncio.AbstractServer] = None
        self._previous_bus: Optional[Tuple[bool, Optional[EventBus]]] = None
        # Self-metric counters (lock-protected).
        self._submitted = 0
        self._completed = 0
        self._failed = 0
        self._rejected = 0
        self._disconnects = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def start(self) -> "MonitorServer":
        """Bind, install the event bus, spawn loop + runner threads."""
        if self._loop_thread is not None:
            raise ConfigurationError("server already started")
        self.root.mkdir(parents=True, exist_ok=True)
        self._started_monotonic = time.monotonic()
        self._previous_bus = (EVENTS.active, EVENTS.bus)
        EVENTS.activate(self.bus)

        started = threading.Event()
        failure: List[BaseException] = []

        def _loop_main() -> None:
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            self._loop = loop
            try:
                server = loop.run_until_complete(asyncio.start_server(
                    self._handle_connection, self.host, self.port))
            except OSError as exc:
                failure.append(exc)
                started.set()
                return
            self._asyncio_server = server
            sock = server.sockets[0].getsockname()
            self.address = (sock[0], sock[1])
            started.set()
            try:
                loop.run_forever()
            finally:
                server.close()
                loop.run_until_complete(server.wait_closed())
                loop.close()

        self._loop_thread = threading.Thread(
            target=_loop_main, name="repro-server-loop", daemon=True)
        self._loop_thread.start()
        started.wait()
        if failure:
            self._loop_thread = None
            self._restore_bus()
            raise ConfigurationError(f"cannot bind server: {failure[0]}")

        self._runner_threads = [
            threading.Thread(
                target=self._runner_main,
                name=f"repro-server-runner-{slot}", daemon=True,
            )
            for slot in range(self.runners)
        ]
        for thread in self._runner_threads:
            thread.start()
        return self

    def stop(self) -> None:
        """Stop accepting, drain nothing, restore the previous bus."""
        self._stopping.set()
        self._gate.set()
        if self._loop is not None and self._loop.is_running():
            self._loop.call_soon_threadsafe(self._loop.stop)
        if self._loop_thread is not None:
            self._loop_thread.join(timeout=5.0)
            self._loop_thread = None
        for thread in self._runner_threads:
            thread.join(timeout=30.0)
        self._runner_threads = []
        self._restore_bus()

    def _restore_bus(self) -> None:
        if self._previous_bus is not None:
            active, bus = self._previous_bus
            if active and bus is not None:
                EVENTS.activate(bus)
            else:
                EVENTS.deactivate()
            self._previous_bus = None

    def __enter__(self) -> "MonitorServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.stop()
        return False

    # -- test hooks ----------------------------------------------------

    def pause(self) -> None:
        """Stop the runner from dequeuing (submissions still accepted)."""
        self._gate.clear()

    def resume(self) -> None:
        """Undo :meth:`pause`."""
        self._gate.set()

    # ------------------------------------------------------------------
    # submission + runner
    # ------------------------------------------------------------------

    def submit(self, tenant: str, document: Any) -> CampaignRecord:
        """Validate, enqueue, and announce one campaign.

        Raises :class:`ConfigurationError` on a bad spec/tenant and
        :class:`queue.Full` when the job queue is at capacity (the HTTP
        layer maps those to 400 and 429).
        """
        if not _TENANT_RE.match(tenant):
            raise ConfigurationError(
                f"invalid tenant {tenant!r} (want [A-Za-z0-9][A-Za-z0-9_.-]*)"
            )
        workers = self.workers
        scenario_doc = None
        if isinstance(document, dict) and (
                "spec" in document or "scenario" in document):
            if "spec" in document and "scenario" in document:
                raise ConfigurationError(
                    "pass exactly one of 'spec' (a campaign spec) or "
                    "'scenario' (a scenario document to compile)"
                )
            extra = {k for k in document
                     if k not in ("spec", "scenario", "workers")}
            if extra:
                raise ConfigurationError(
                    f"unknown submission fields: {sorted(extra)}"
                )
            if "workers" in document:
                if not isinstance(document["workers"], int) \
                        or isinstance(document["workers"], bool) \
                        or document["workers"] < 1:
                    raise ConfigurationError(
                        "workers must be a positive integer"
                    )
                workers = document["workers"]
            scenario_doc = document.get("scenario")
            document = document.get("spec")
        if scenario_doc is not None:
            # Server-side compilation: the client ships the declarative
            # document and the server owns the document -> campaign
            # mapping.  ScenarioError subclasses ConfigurationError, so
            # bad documents answer 400 with the JSON-pointer location.
            spec = compile_scenario(scenario_from_json(scenario_doc))
        else:
            spec = spec_from_json(document)

        with self._lock:
            if len(self._pending) >= self.queue_limit:
                self._rejected += 1
                raise Full()
            self._counter += 1
            record = CampaignRecord(
                id=f"c{self._counter:04d}", tenant=tenant, spec=spec,
                root=self.root, workers=workers,
            )
            self._pending.append(record)
            self._records[record.id] = record
            self._order.append(record.id)
            self._submitted += 1
        self.bus.publish(record.id, "campaign_queued", tenant=tenant,
                         name=spec.name, experiments=len(spec))
        return record

    def _runner_main(self) -> None:
        while not self._stopping.is_set():
            if not self._gate.wait(timeout=0.1):
                continue
            with self._lock:
                record = (self._pending.popleft()
                          if self._pending else None)
            if record is None:
                time.sleep(0.02)
                continue
            self._run_record(record)

    def _run_record(self, record: CampaignRecord) -> None:
        record.state = "running"
        record.dir.mkdir(parents=True, exist_ok=True)
        try:
            if self.runners > 1:
                # Concurrent runners: every campaign's experiments must
                # run in worker *processes* (the fabric), because the
                # ambient telemetry/capture sessions are process-wide —
                # two in-process campaigns in one server process would
                # interleave their instrumentation.
                executor: Any = FabricExecutor(
                    workers=record.workers,
                    artifacts_dir=record.dir,
                    events_label=record.id,
                )
            elif record.workers > 1:
                executor = PooledExecutor(
                    workers=record.workers,
                    timeout_s=self.timeout_s,
                    journal_path=record.dir / "journal.jsonl",
                    artifacts_dir=record.dir,
                    events_label=record.id,
                )
            else:
                executor = SerialExecutor(
                    journal_path=record.dir / "journal.jsonl",
                    artifacts_dir=record.dir,
                    events_label=record.id,
                )
            campaign = Campaign.from_spec(record.spec)
            table = campaign.run(executor=executor)
            record.table_text = table.render()
            (record.dir / "table.txt").write_text(
                record.table_text + "\n", encoding="utf-8")
            self._run_insight(record)
            record.state = "completed"
            with self._lock:
                self._completed += 1
        except Exception as exc:  # noqa: BLE001 - server must survive
            record.error = f"{type(exc).__name__}: {exc}"
            record.state = "failed"
            with self._lock:
                self._failed += 1
            if not self._terminal_published(record.id):
                self.bus.publish(record.id, "campaign_failed",
                                 error=record.error)
        finally:
            record.finished_monotonic = time.monotonic()

    def _run_insight(self, record: CampaignRecord) -> None:
        """Auto-run incident correlation; serve the verdict as JSON.

        Import is local so the server module stays importable even if
        the insight stack is unavailable; an insight failure degrades
        the campaign (no report) without failing it.
        """
        from repro.insight import analyze_artifacts

        report = analyze_artifacts(record.dir)
        record.report_doc = report.to_dict()
        record.report_digest = report.digest()
        (record.dir / "insight.json").write_text(
            report.canonical_json() + "\n", encoding="utf-8")
        self.bus.publish(record.id, "insight_ready",
                         digest=record.report_digest,
                         incidents=len(report.incidents))

    def _terminal_published(self, campaign_id: str) -> bool:
        return any(event.kind in TERMINAL_KINDS
                   for event in self.bus.history(campaign_id))

    # ------------------------------------------------------------------
    # HTTP layer
    # ------------------------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            try:
                request = await read_request(reader)
            except BadRequest as exc:
                status, body = error_body(exc.status, str(exc))
                writer.write(response(status, body))
                await writer.drain()
                return
            if request is None:
                return
            await self._dispatch(request, writer)
        except (ConnectionError, asyncio.CancelledError):
            self._disconnects += 1
        except Exception as exc:  # noqa: BLE001 - keep the loop alive
            try:
                status, body = error_body(500, f"{type(exc).__name__}: {exc}")
                writer.write(response(status, body))
                await writer.drain()
            except ConnectionError:
                self._disconnects += 1
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass  # simlint: disable=ERR001 -- best-effort teardown

    async def _dispatch(self, request: Request,
                        writer: asyncio.StreamWriter) -> None:
        path = request.path.rstrip("/") or "/"
        tenant = request.headers.get(
            "x-tenant", request.query.get("tenant", "default"))

        if path == "/healthz":
            await self._respond(writer, self._handle_healthz(request))
            return
        if path == "/metrics":
            await self._respond(writer, self._handle_metrics(request))
            return
        if path == "/campaigns":
            if request.method == "POST":
                await self._respond(
                    writer, self._handle_submit(request, tenant))
            elif request.method == "GET":
                await self._respond(writer, self._handle_list(tenant))
            else:
                status, body = error_body(405, "use GET or POST")
                await self._respond(writer, response(status, body))
            return

        match = re.match(r"^/campaigns/([^/]+)(?:/(.*))?$", path)
        if match:
            record = self._lookup(match.group(1), tenant)
            rest = match.group(2) or ""
            if record is None:
                status, body = error_body(
                    404, f"no campaign {match.group(1)!r} for "
                         f"tenant {tenant!r}")
                await self._respond(writer, response(status, body))
                return
            if request.method != "GET":
                status, body = error_body(405, "campaign routes are GET")
                await self._respond(writer, response(status, body))
                return
            if rest == "":
                await self._respond(
                    writer, json_response(200, record.status_doc(self.bus)))
            elif rest == "events":
                await self._stream_events(request, writer, record)
            elif rest == "report":
                await self._respond(writer, self._handle_report(record))
            elif rest.startswith("artifacts/"):
                await self._respond(
                    writer,
                    self._handle_artifact(record, rest[len("artifacts/"):]))
            else:
                status, body = error_body(404, f"unknown route {path!r}")
                await self._respond(writer, response(status, body))
            return

        status, body = error_body(404, f"unknown route {path!r}")
        await self._respond(writer, response(status, body))

    async def _respond(self, writer: asyncio.StreamWriter,
                       payload: bytes) -> None:
        writer.write(payload)
        await writer.drain()

    def _lookup(self, campaign_id: str,
                tenant: str) -> Optional[CampaignRecord]:
        with self._lock:
            record = self._records.get(campaign_id)
        if record is None or record.tenant != tenant:
            return None
        return record

    # -- handlers ------------------------------------------------------

    def _handle_healthz(self, request: Request) -> bytes:
        if request.method != "GET":
            status, body = error_body(405, "healthz is GET")
            return response(status, body)
        with self._lock:
            queued = len(self._pending)
        return json_response(200, {
            "status": "ok",
            "queue_depth": queued,
            "queue_limit": self.queue_limit,
            "campaigns": len(self._order),
        })

    def _handle_metrics(self, request: Request) -> bytes:
        if request.method != "GET":
            status, body = error_body(405, "metrics is GET")
            return response(status, body)
        registry = self._self_metrics()
        body = to_prometheus(registry).encode("utf-8")
        return response(200, body, PROMETHEUS_CONTENT_TYPE)

    def _self_metrics(self) -> MetricsRegistry:
        """A fresh registry of server + process self-metrics per scrape."""
        registry = MetricsRegistry()
        with self._lock:
            submitted = self._submitted
            completed = self._completed
            failed = self._failed
            rejected = self._rejected
            disconnects = self._disconnects
            depth = len(self._pending)
            tenants = len({r.tenant for r in self._records.values()})
        registry.counter("server.campaigns_submitted").inc(submitted)
        registry.counter("server.campaigns_completed").inc(completed)
        registry.counter("server.campaigns_failed").inc(failed)
        registry.counter("server.campaigns_rejected").inc(rejected)
        registry.counter("server.client_disconnects").inc(disconnects)
        registry.gauge("server.queue_depth").set(depth)
        registry.gauge("server.queue_limit").set(self.queue_limit)
        registry.gauge("server.tenants").set(tenants)
        registry.counter("events.published").inc(self.bus.published)
        registry.counter("events.dropped").inc(self.bus.dropped)
        uptime = 0.0
        if self._started_monotonic is not None:
            uptime = time.monotonic() - self._started_monotonic
        registry.gauge("process.uptime_s").set(round(uptime, 3))
        registry.gauge("process.rss_bytes").set(_rss_bytes())
        return registry

    def _handle_submit(self, request: Request, tenant: str) -> bytes:
        try:
            document = request.json()
            record = self.submit(tenant, document)
        except BadRequest as exc:
            status, body = error_body(exc.status, str(exc))
            return response(status, body)
        except ConfigurationError as exc:
            status, body = error_body(400, str(exc))
            return response(status, body)
        except Full:
            status, body = error_body(
                429, f"job queue full ({self.queue_limit} pending); "
                     f"retry later")
            return response(status, body, extra={"Retry-After": "1"})
        return json_response(202, record.status_doc(self.bus))

    def _handle_list(self, tenant: str) -> bytes:
        with self._lock:
            records = [self._records[i] for i in self._order
                       if self._records[i].tenant == tenant]
        return json_response(200, {
            "tenant": tenant,
            "campaigns": [r.status_doc(self.bus) for r in records],
        })

    def _handle_report(self, record: CampaignRecord) -> bytes:
        if record.report_doc is None:
            status, body = error_body(
                404, f"campaign {record.id} has no insight report yet "
                     f"(state: {record.state})")
            return response(status, body)
        return json_response(200, {
            "id": record.id,
            "digest": record.report_digest,
            "report": record.report_doc,
        })

    def _handle_artifact(self, record: CampaignRecord, name: str) -> bytes:
        if name == "table":
            if record.table_text is None:
                status, body = error_body(
                    404, f"campaign {record.id} has no merged table yet "
                         f"(state: {record.state})")
                return response(status, body)
            return response(
                200, (record.table_text + "\n").encode("utf-8"),
                "text/plain; charset=utf-8")
        if name == "metrics":
            path = record.dir / "telemetry" / "metrics.json"
            if not path.exists():
                status, body = error_body(
                    404, f"campaign {record.id} has no merged metrics "
                         f"(telemetry not enabled for this spec?)")
                return response(status, body)
            return response(200, path.read_bytes(), "application/json")
        if name == "capture":
            path = record.dir / "capture" / "capture.rcap"
            if not path.exists():
                status, body = error_body(
                    404, f"campaign {record.id} has no merged capture "
                         f"(no monitor_config in the spec?)")
                return response(status, body)
            return response(200, path.read_bytes(),
                            "application/octet-stream")
        if name == "insight":
            path = record.dir / "insight.json"
            if not path.exists():
                status, body = error_body(
                    404, f"campaign {record.id} has no insight.json yet")
                return response(status, body)
            return response(200, path.read_bytes(), "application/json")
        status, body = error_body(
            404, f"unknown artifact {name!r} "
                 f"(want table|metrics|capture|insight)")
        return response(status, body)

    # -- event streaming ----------------------------------------------

    async def _stream_events(self, request: Request,
                             writer: asyncio.StreamWriter,
                             record: CampaignRecord) -> None:
        """NDJSON (default) or SSE live stream, replayed from seq 0.

        The stream closes once the campaign is terminal *and* every
        published event has been sent — ``insight_ready`` lands after
        ``campaign_finished``, so closure keys off the record state, not
        the terminal event kind.
        """
        sse = request.wants_sse()
        content_type = ("text/event-stream" if sse
                        else "application/x-ndjson")
        writer.write(stream_headers(content_type))
        await writer.drain()

        subscription = self.bus.subscribe(campaign=record.id, replay=True)
        sent_through = -1
        try:
            while True:
                events = subscription.drain()
                if events:
                    chunks = []
                    for event in events:
                        line = event.to_json()
                        if sse:
                            chunks.append(
                                f"event: {event.kind}\ndata: {line}\n\n")
                        else:
                            chunks.append(line + "\n")
                        sent_through = event.seq
                    writer.write("".join(chunks).encode("utf-8"))
                    await writer.drain()
                if record.state in ("completed", "failed") \
                        and sent_through + 1 >= self.bus.last_seq(record.id):
                    return
                if self._stopping.is_set():
                    return
                await asyncio.sleep(STREAM_POLL_S)
        finally:
            subscription.close()


def _rss_bytes() -> int:
    """Resident set size via /proc, falling back to getrusage."""
    try:
        with open("/proc/self/status", "r", encoding="ascii") as handle:
            for line in handle:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1]) * 1024
    except (OSError, ValueError, IndexError):
        pass  # simlint: disable=ERR001 -- getrusage fallback below
    try:
        import resource

        return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024
    except Exception:  # pragma: no cover - non-posix fallback
        return 0
