"""repro.server — monitoring-as-a-service for campaign execution.

A stdlib-only asyncio HTTP service (ROADMAP item 1) that turns the
campaign engine into a long-running, multi-tenant analysis station:

* ``POST /campaigns`` — submit a CampaignSpec as JSON; bounded job
  queue with honest ``429`` back-pressure;
* ``GET /campaigns/{id}/events`` — live NDJSON / SSE lifecycle stream
  from the :mod:`repro.runtime.events` bus, replayed from seq 0;
* ``GET /campaigns/{id}/report`` — the auto-run :mod:`repro.insight`
  verdict as structured JSON (the agent-facing tool API);
* ``GET /campaigns/{id}/artifacts/...`` — merged table / metrics /
  ``.rcap`` capture, byte-identical to an offline run of the same spec;
* ``GET /metrics`` — Prometheus text exposition (server + process
  self-metrics); ``GET /healthz``.

Start it from the command line::

    python -m repro.cli serve --root srv --port 8321

See docs/server.md for the full HTTP contract.
"""

from repro.server.service import (
    DEFAULT_QUEUE_LIMIT,
    CampaignRecord,
    MonitorServer,
)

__all__ = [
    "CampaignRecord",
    "DEFAULT_QUEUE_LIMIT",
    "MonitorServer",
]
