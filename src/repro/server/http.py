"""Minimal stdlib asyncio HTTP/1.1 plumbing for :mod:`repro.server`.

No third-party web framework: the container bakes in only the python
toolchain, and the service needs exactly four HTTP features — request
parsing, JSON responses, long-lived streaming responses, and honest
status codes.  This module provides them over raw
:class:`asyncio.StreamReader` / :class:`asyncio.StreamWriter` pairs.

Protocol choices (deliberately boring):

* **one request per connection** — every response carries
  ``Connection: close``.  Streaming endpoints (NDJSON / SSE) have no
  ``Content-Length``; the body runs until the server closes the socket,
  which HTTP/1.1 defines as end-of-message for close-delimited bodies;
* bounded request bodies (:data:`MAX_BODY_BYTES`) — oversized uploads
  get ``413`` before the server buffers them;
* ``Bad request`` problems raise :class:`BadRequest` with a message the
  handler turns into a ``400`` JSON body.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, Mapping, Optional, Tuple
from urllib.parse import parse_qsl, unquote, urlsplit

__all__ = [
    "BadRequest",
    "MAX_BODY_BYTES",
    "MAX_HEADER_BYTES",
    "REASONS",
    "Request",
    "error_body",
    "json_response",
    "read_request",
    "response",
    "stream_headers",
]

#: Largest accepted request body (a CampaignSpec is a few KiB).
MAX_BODY_BYTES = 1 << 20
#: Largest accepted request-line + header block.
MAX_HEADER_BYTES = 32 << 10

#: Status -> reason phrase for every code this server emits.
REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
}


class BadRequest(Exception):
    """Malformed HTTP or malformed JSON body (handler answers 400/413).

    ``status`` defaults to 400; the body-size guard raises with 413.
    """

    def __init__(self, message: str, status: int = 400) -> None:
        super().__init__(message)
        self.status = status


class Request:
    """One parsed HTTP request."""

    __slots__ = ("method", "target", "path", "query", "headers", "body")

    def __init__(self, method: str, target: str,
                 headers: Dict[str, str], body: bytes) -> None:
        self.method = method
        self.target = target
        split = urlsplit(target)
        self.path = unquote(split.path)
        self.query: Dict[str, str] = dict(parse_qsl(split.query))
        #: Header names lower-cased at parse time.
        self.headers = headers
        self.body = body

    def json(self) -> Any:
        """The body parsed as JSON (raises :class:`BadRequest`)."""
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise BadRequest(f"request body is not valid JSON: {exc}")

    def wants_sse(self) -> bool:
        """True when the client asked for ``text/event-stream``."""
        return "text/event-stream" in self.headers.get("accept", "")


async def read_request(reader: asyncio.StreamReader) -> Optional[Request]:
    """Parse one request; ``None`` on a clean EOF before any bytes.

    Raises :class:`BadRequest` on malformed framing or an oversized
    header block / body.
    """
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise BadRequest("truncated request head")
    except asyncio.LimitOverrunError:
        raise BadRequest("request head too large", status=413)
    if len(head) > MAX_HEADER_BYTES:
        raise BadRequest("request head too large", status=413)

    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise BadRequest(f"malformed request line: {lines[0]!r}")
    method, target = parts[0].upper(), parts[1]

    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise BadRequest(f"malformed header line: {line!r}")
        headers[name.strip().lower()] = value.strip()

    body = b""
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError:
            raise BadRequest("malformed Content-Length")
        if length < 0:
            raise BadRequest("malformed Content-Length")
        if length > MAX_BODY_BYTES:
            raise BadRequest("request body too large", status=413)
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError:
            raise BadRequest("truncated request body")
    elif headers.get("transfer-encoding"):
        raise BadRequest("chunked request bodies are not supported")
    return Request(method, target, headers, body)


def _head(status: int, content_type: str,
          content_length: Optional[int],
          extra: Optional[Mapping[str, str]] = None) -> bytes:
    reason = REASONS.get(status, "Unknown")
    lines = [f"HTTP/1.1 {status} {reason}",
             f"Content-Type: {content_type}",
             "Connection: close"]
    if content_length is not None:
        lines.append(f"Content-Length: {content_length}")
    if extra:
        lines.extend(f"{name}: {value}" for name, value in extra.items())
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")


def response(status: int, body: bytes,
             content_type: str = "application/json",
             extra: Optional[Mapping[str, str]] = None) -> bytes:
    """A complete, length-delimited response as bytes."""
    return _head(status, content_type, len(body), extra) + body


def json_response(status: int, document: Any,
                  extra: Optional[Mapping[str, str]] = None) -> bytes:
    """A complete JSON response (sorted keys, trailing newline)."""
    body = (json.dumps(document, sort_keys=True) + "\n").encode("utf-8")
    return response(status, body, "application/json", extra)


def stream_headers(content_type: str) -> bytes:
    """Headers for a close-delimited streaming body (no length)."""
    return _head(200, content_type, None, {"Cache-Control": "no-store",
                                           "X-Accel-Buffering": "no"})


def error_body(status: int, message: str) -> Tuple[int, bytes]:
    """Status + JSON error body pair for :func:`response` callers."""
    body = (json.dumps({"error": message, "status": status},
                       sort_keys=True) + "\n").encode("utf-8")
    return status, body
