"""Metric primitives and the registry that owns them.

The design follows the paper's own statistics gatherer (§3.2): counters
cheap enough to leave enabled, sampled and exported out-of-band.  Three
metric kinds cover everything the reproduction needs:

* :class:`Counter` — monotonically increasing totals
  (``sim.events_fired``, ``injector.injections``);
* :class:`Gauge` — point-in-time values with high/low watermarks
  (``device.fifo.depth``, ``sim.queue_depth``);
* :class:`Histogram` — fixed-bucket distributions
  (``device.added_latency_ns`` against the paper's ~250 ns claim).

Series are identified by a dotted lowercase name plus an optional label
set (``counter("device.injections", direction="R")``), mirroring the
Prometheus data model so the text exporter is a straight transcription.

Metric values are *observations only*: nothing in this module reads a
clock or schedules events, so registries can be live inside a simulated
campaign without perturbing it.
"""

from __future__ import annotations

import re
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "LATENCY_NS_BUCKETS",
    "RUN_EVENT_BUCKETS",
]

#: Generic magnitude buckets (1-2-5 decades).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1, 2, 5, 10, 20, 50, 100, 200, 500,
    1_000, 2_000, 5_000, 10_000, 20_000, 50_000, 100_000,
)

#: Added-latency buckets in nanoseconds, centred on the paper's ~250 ns
#: pipeline transit claim (footnote 5) and Table 2's sub-microsecond rows.
LATENCY_NS_BUCKETS: Tuple[float, ...] = (
    50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000,
)

#: Events-per-``run()`` buckets for the kernel step histogram.
RUN_EVENT_BUCKETS: Tuple[float, ...] = (
    1, 10, 100, 1_000, 10_000, 100_000, 1_000_000,
)

_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z0-9_]+)*$")

#: A frozen, ordered label set — the second half of a series key.
LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, Any]) -> LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class _Metric:
    """Shared name/label plumbing for all metric kinds."""

    kind = "metric"
    __slots__ = ("name", "labels")

    def __init__(self, name: str, labels: LabelKey) -> None:
        self.name = name
        self.labels = labels

    def label_dict(self) -> Dict[str, str]:
        return dict(self.labels)

    def as_dict(self) -> Dict[str, Any]:  # pragma: no cover - interface
        raise NotImplementedError


class Counter(_Metric):
    """A monotonically increasing total."""

    kind = "counter"
    __slots__ = ("value",)

    def __init__(self, name: str, labels: LabelKey) -> None:
        super().__init__(name, labels)
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        """Add ``amount`` (must be >= 0) to the total."""
        if amount < 0:
            raise ConfigurationError(
                f"counter {self.name} cannot decrease (inc({amount}))"
            )
        self.value += amount

    def set_total(self, total: float) -> None:
        """Bridge a cumulative source counter (e.g. ``injector.stats``).

        The bridged total may only move forward; re-sampling the same
        source is idempotent.
        """
        if total < self.value:
            raise ConfigurationError(
                f"counter {self.name} cannot rewind from "
                f"{self.value} to {total}"
            )
        self.value = total

    def as_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "name": self.name,
            "labels": self.label_dict(),
            "value": self.value,
        }


class Gauge(_Metric):
    """A point-in-time value with high/low watermarks."""

    kind = "gauge"
    __slots__ = ("value", "high", "low", "samples")

    def __init__(self, name: str, labels: LabelKey) -> None:
        super().__init__(name, labels)
        self.value: float = 0
        self.high: Optional[float] = None
        self.low: Optional[float] = None
        self.samples: int = 0

    def set(self, value: float) -> None:
        self.value = value
        self.samples += 1
        if self.high is None or value > self.high:
            self.high = value
        if self.low is None or value < self.low:
            self.low = value

    def inc(self, amount: float = 1) -> None:
        self.set(self.value + amount)

    def dec(self, amount: float = 1) -> None:
        self.set(self.value - amount)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "name": self.name,
            "labels": self.label_dict(),
            "value": self.value,
            "high": self.high,
            "low": self.low,
            "samples": self.samples,
        }


class Histogram(_Metric):
    """Fixed-bucket cumulative histogram (Prometheus semantics).

    ``buckets`` are upper bounds; an implicit ``+Inf`` bucket catches
    the tail.  ``counts[i]`` is the number of observations ``<=
    buckets[i]`` (non-cumulative storage; the exporter accumulates).
    """

    kind = "histogram"
    __slots__ = ("buckets", "counts", "total", "count")

    def __init__(
        self,
        name: str,
        labels: LabelKey,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, labels)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ConfigurationError(
                f"histogram {name} needs at least one bucket bound"
            )
        self.buckets: Tuple[float, ...] = bounds
        self.counts: List[int] = [0] * (len(bounds) + 1)  # +Inf tail
        self.total: float = 0
        self.count: int = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        index = len(self.buckets)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                index = i
                break
        self.counts[index] += 1
        self.total += value
        self.count += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Deterministic quantile estimate from the fixed buckets.

        Classic Prometheus ``histogram_quantile`` semantics: find the
        bucket where the cumulative count crosses ``q * count`` and
        interpolate linearly inside it (bucket observations are assumed
        uniform).  Edge rules keep the estimate finite and reproducible:

        * an empty histogram estimates ``0.0``;
        * a rank landing in the ``+Inf`` tail clamps to the largest
          finite bound (there is no upper edge to interpolate toward);
        * the first bucket interpolates from ``0``.
        """
        if not 0.0 <= q <= 1.0:
            raise ConfigurationError(
                f"quantile must be within [0, 1], got {q!r}"
            )
        if self.count == 0:
            return 0.0
        rank = q * self.count
        running = 0
        for i, bound in enumerate(self.buckets):
            previous = running
            running += self.counts[i]
            if running >= rank:
                lower = 0.0 if i == 0 else self.buckets[i - 1]
                in_bucket = running - previous
                if in_bucket == 0:
                    return bound
                return lower + (bound - lower) * (rank - previous) / in_bucket
        return self.buckets[-1]

    def quantiles(
        self, points: Sequence[float] = (0.5, 0.95, 0.99)
    ) -> Dict[str, float]:
        """Named quantile estimates, ``{"p50": ..., "p95": ..., ...}``.

        The default points are the p50/p95/p99 triple the CLI summary
        and the insight feature extractor consume.
        """
        out: Dict[str, float] = {}
        for q in points:
            label = format(q * 100, "g").replace(".", "_")
            out[f"p{label}"] = self.quantile(q)
        return out

    def cumulative(self) -> List[Tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs, ``+Inf`` last."""
        out: List[Tuple[float, int]] = []
        running = 0
        for bound, count in zip(self.buckets, self.counts):
            running += count
            out.append((bound, running))
        out.append((float("inf"), running + self.counts[-1]))
        return out

    def as_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "name": self.name,
            "labels": self.label_dict(),
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "sum": self.total,
            "count": self.count,
        }


class MetricsRegistry:
    """Namespaced home for every metric series of one telemetry session.

    Series are created on first use and returned on every subsequent
    call, so instrumentation sites never need registration boilerplate::

        registry.counter("sim.events_fired").inc(fired)
        registry.gauge("device.fifo.depth", direction="R").set(depth)
    """

    def __init__(self) -> None:
        self._series: Dict[Tuple[str, LabelKey], _Metric] = {}

    # ------------------------------------------------------------------
    # series accessors
    # ------------------------------------------------------------------

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(
        self,
        name: str,
        buckets: Optional[Sequence[float]] = None,
        **labels: Any,
    ) -> Histogram:
        key = (name, _label_key(labels))
        existing = self._series.get(key)
        if existing is not None:
            if not isinstance(existing, Histogram):
                raise ConfigurationError(
                    f"metric {name} already registered as {existing.kind}"
                )
            return existing
        self._check_name(name)
        metric = Histogram(name, key[1], buckets or DEFAULT_BUCKETS)
        self._series[key] = metric
        return metric

    def _get(self, cls: type, name: str, labels: Dict[str, Any]) -> Any:
        key = (name, _label_key(labels))
        existing = self._series.get(key)
        if existing is not None:
            if not isinstance(existing, cls):
                raise ConfigurationError(
                    f"metric {name} already registered as {existing.kind}"
                )
            return existing
        self._check_name(name)
        metric = cls(name, key[1])
        self._series[key] = metric
        return metric

    @staticmethod
    def _check_name(name: str) -> None:
        if not _NAME_RE.match(name):
            raise ConfigurationError(
                f"bad metric name {name!r}: want dotted lowercase like "
                "'sim.events_fired'"
            )

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._series)

    def __iter__(self) -> Iterator[_Metric]:
        """Metrics in deterministic (name, labels) order."""
        for key in sorted(self._series):
            yield self._series[key]

    def get(self, name: str, **labels: Any) -> Optional[_Metric]:
        """The series if it exists, else ``None`` (never creates)."""
        return self._series.get((name, _label_key(labels)))

    def value(self, name: str, default: float = 0, **labels: Any) -> float:
        """Scalar value of a counter/gauge series, or ``default``."""
        metric = self.get(name, **labels)
        if metric is None or isinstance(metric, Histogram):
            return default
        return metric.value  # type: ignore[union-attr]

    # ------------------------------------------------------------------
    # serialization (metrics.json / `repro.cli metrics`)
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready snapshot of every series, deterministically ordered."""
        return {"series": [metric.as_dict() for metric in self]}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "MetricsRegistry":
        """Rebuild a registry from :meth:`to_dict` output."""
        registry = cls()
        for entry in data.get("series", []):
            name = entry["name"]
            labels = entry.get("labels", {})
            kind = entry.get("kind")
            if kind == "counter":
                registry.counter(name, **labels).set_total(entry["value"])
            elif kind == "gauge":
                gauge = registry.gauge(name, **labels)
                gauge.value = entry["value"]
                gauge.high = entry.get("high")
                gauge.low = entry.get("low")
                gauge.samples = entry.get("samples", 0)
            elif kind == "histogram":
                histogram = registry.histogram(
                    name, buckets=entry["buckets"], **labels
                )
                histogram.counts = list(entry["counts"])
                histogram.total = entry["sum"]
                histogram.count = entry["count"]
            else:
                raise ConfigurationError(
                    f"unknown metric kind {kind!r} for {name!r}"
                )
        return registry
