"""Instrumentation bridges between the simulation stack and the registry.

Two kinds of function live here:

* **hot hooks** (:func:`kernel_run`, :func:`device_burst`,
  :func:`injection`) — called from instrumented code *after* it checked
  ``STATE.active``, at run/burst/injection granularity (never per
  event), so the enabled cost stays a few dict lookups per burst;
* **samplers** (:func:`sample_simulator`, :func:`sample_device`,
  :func:`publish_direction_stats`) — pull cumulative counters out of
  existing components (``injector.stats``, ``DirectionStats``) into the
  registry at phase boundaries.

Everything here only *observes*.  No function reads a clock, schedules
an event, or mutates simulation state — the determinism sanitizer test
replays an identical-seed campaign with telemetry on and off and
requires bit-identical kernel digests.

This module deliberately avoids importing the simulation packages; the
hooks are duck-typed so no import cycle forms (``sim.kernel`` imports
us, not the other way around).
"""

from __future__ import annotations

from typing import Any

from repro.telemetry.metrics import (
    LATENCY_NS_BUCKETS,
    RUN_EVENT_BUCKETS,
    MetricsRegistry,
)
from repro.telemetry.state import STATE

__all__ = [
    "kernel_run",
    "device_burst",
    "injection",
    "fastpath_burst",
    "sample_simulator",
    "sample_device",
    "publish_direction_stats",
]


# ---------------------------------------------------------------------------
# hot hooks (caller has already checked STATE.active)
# ---------------------------------------------------------------------------


def kernel_run(sim: Any, fired: int) -> None:
    """Account one ``Simulator.run``/``run_until`` batch.

    ``sim.events_fired`` accumulates exactly because each batch reports
    the events it fired; the queue-depth gauge tracks high watermarks
    across batches; the per-run histogram shows how bursty the kernel's
    work is.
    """
    registry = STATE.registry
    if registry is None:  # pragma: no cover - defensive
        return
    registry.counter("sim.events_fired").inc(fired)
    registry.gauge("sim.queue_depth").set(sim.pending)
    registry.gauge("sim.now_ps").set(sim.now)
    registry.histogram("sim.run_events", buckets=RUN_EVENT_BUCKETS).observe(
        fired
    )


def device_burst(
    device: Any, direction: str, symbols_in: int, symbols_out: int
) -> None:
    """Account one burst through the fault-injector device.

    The added-latency observation is the device's full per-burst cost:
    pipeline transit plus the output re-serialization modelled in
    :mod:`repro.core.device` — comparable against the paper's ~250 ns
    pipeline claim and Table 2's end-to-end rows.
    """
    registry = STATE.registry
    if registry is None:  # pragma: no cover - defensive
        return
    registry.counter("device.bursts", direction=direction).inc()
    registry.counter("device.symbols_in", direction=direction).inc(symbols_in)
    registry.counter("device.symbols_out", direction=direction).inc(
        symbols_out
    )
    injector = device.injector(direction)
    registry.gauge("device.fifo.depth", direction=direction).set(
        injector.fifo.occupancy
    )
    registry.gauge("device.fifo.high_watermark", direction=direction).set(
        injector.fifo.high_watermark
    )
    added_ps = (
        device.pipeline_latency_ps
        + symbols_out * getattr(device, "_char_period_ps", 0)
    )
    registry.histogram(
        "device.added_latency_ns", buckets=LATENCY_NS_BUCKETS
    ).observe(added_ps / 1_000.0)


def injection(injector_name: str, event: Any) -> None:
    """Account one trigger firing (pattern match or forced inject)."""
    registry = STATE.registry
    if registry is None:  # pragma: no cover - defensive
        return
    kind = "forced" if event.forced else "matched"
    registry.counter(
        "injector.injections", injector=injector_name, kind=kind
    ).inc()
    registry.counter(
        "injector.lanes_rewritten", injector=injector_name
    ).inc(event.lanes_rewritten)
    if event.lanes_unreachable:
        registry.counter(
            "injector.lanes_unreachable", injector=injector_name
        ).inc(event.lanes_unreachable)


def fastpath_burst(
    engine_name: str, kind: str, bulk: int, scalar: int, reason: str = ""
) -> None:
    """Account one burst through the batched fast path.

    ``kind`` is ``"chunk"`` (whole burst bulk-advanced), ``"split"``
    (bulk prefix + scalar guard-window suffix) or ``"fallback"`` (whole
    burst delegated to the scalar path); ``reason`` names the guard that
    forced a fallback.  These are the only counters the fast pipeline
    adds — the conformance comparator excludes exactly the ``fastpath.*``
    namespace and requires everything else to be byte-identical between
    pipelines (see docs/fastpath.md).
    """
    registry = STATE.registry
    if registry is None:  # pragma: no cover - defensive
        return
    registry.counter("fastpath.bursts", engine=engine_name, kind=kind).inc()
    if kind != "fallback":
        registry.counter("fastpath.chunks", engine=engine_name).inc()
    if bulk:
        registry.counter(
            "fastpath.symbols_skipped", engine=engine_name
        ).inc(bulk)
    if scalar:
        registry.counter(
            "fastpath.symbols_scalar", engine=engine_name
        ).inc(scalar)
    if reason:
        registry.counter(
            "fastpath.fallbacks", engine=engine_name, reason=reason
        ).inc()


# ---------------------------------------------------------------------------
# phase-boundary samplers
# ---------------------------------------------------------------------------


def sample_simulator(sim: Any, registry: MetricsRegistry = None) -> None:  # type: ignore[assignment]
    """Snapshot kernel gauges (queue depth, clock) into the registry."""
    registry = registry or STATE.registry
    if registry is None:
        return
    registry.gauge("sim.queue_depth").set(sim.pending)
    registry.gauge("sim.now_ps").set(sim.now)


def sample_device(
    device: Any,
    registry: MetricsRegistry = None,  # type: ignore[assignment]
    accumulate: bool = False,
) -> None:
    """Bridge the device's cumulative counters into the registry.

    Two sampling disciplines:

    * ``accumulate=False`` (default) — the same *live* device is
      re-sampled over its lifetime; ``Counter.set_total`` keeps the
      bridge idempotent;
    * ``accumulate=True`` — a *fresh* device is sampled exactly once at
      the end of its life (the per-experiment pattern, where every
      experiment rebuilds the test bed); totals are added so a campaign
      aggregates across experiments.
    """
    registry = registry or STATE.registry
    if registry is None:
        return

    def bridge(name: str, total: float, **labels: Any) -> None:
        counter = registry.counter(name, **labels)
        if accumulate:
            counter.inc(total)
        else:
            counter.set_total(total)

    for direction in ("R", "L"):
        injector = device.injector(direction)
        labels = dict(device=device.name, direction=direction)
        stats = injector.stats
        bridge("injector.symbols_processed", stats["symbols_processed"],
               **labels)
        bridge("injector.matches", stats["compare_matches"], **labels)
        bridge("injector.injections_total", stats["injections"], **labels)
        bridge("injector.fifo_rewrites", stats["fifo_rewrites"], **labels)
        registry.gauge("device.fifo.high_watermark", **labels).set(
            injector.fifo.high_watermark
        )
        publish_direction_stats(
            device.statistics(direction).stats,
            registry=registry,
            accumulate=accumulate,
            **labels,
        )
    bridge("device.bursts_forwarded", device.bursts_forwarded,
           device=device.name)
    registry.gauge("device.pipeline_latency_ns", device=device.name).set(
        device.pipeline_latency_ps / 1_000.0
    )
    sdram = getattr(device, "sdram", None)
    if sdram is not None:
        # Capture loss must be visible, not silent: stores, drops by
        # cause, shed bytes, and the worst write-queue backlog seen.
        stats = sdram.stats
        bridge("sdram.records_stored", stats["records_stored"],
               device=device.name)
        bridge("sdram.records_dropped_capacity",
               stats["records_dropped_capacity"], device=device.name)
        bridge("sdram.records_dropped_bandwidth",
               stats["records_dropped_bandwidth"], device=device.name)
        bridge("sdram.bytes_dropped", stats["bytes_dropped"],
               device=device.name)
        registry.gauge("sdram.bytes_used", device=device.name).set(
            stats["bytes_used"]
        )
        registry.gauge("sdram.peak_backlog_ps", device=device.name).set(
            stats["peak_backlog_ps"]
        )


def publish_direction_stats(
    stats: Any,
    registry: MetricsRegistry = None,  # type: ignore[assignment]
    accumulate: bool = False,
    **labels: Any,
) -> None:
    """Bridge one :class:`~repro.core.stats.DirectionStats` snapshot."""
    registry = registry or STATE.registry
    if registry is None:
        return

    def bridge(name: str, total: float, **extra: Any) -> None:
        counter = registry.counter(name, **{**labels, **extra})
        if accumulate:
            counter.inc(total)
        else:
            counter.set_total(total)

    bridge("stats.symbols", stats.symbols)
    bridge("stats.data_symbols", stats.data_symbols)
    bridge("stats.frames", stats.frames)
    bridge("stats.crc_bad_frames", stats.crc_bad_frames)
    for symbol_name, count in sorted(stats.control_symbols.items()):
        bridge("stats.control_symbols", count, symbol=symbol_name)
    for packet_type, count in sorted(stats.packet_types.items()):
        bridge("stats.packet_types", count, type=str(packet_type))
