"""Global telemetry switchboard.

Telemetry must be *leave-enabled cheap* and *disabled free*: the hot
layers (the event kernel, the device burst path) guard every recording
call with a single attribute read on the module-level :data:`STATE`
singleton.  When no :class:`~repro.telemetry.session.TelemetrySession`
is active, ``STATE.active`` is ``False`` and the instrumented code takes
one predictable branch and does nothing else — no allocation, no dict
lookup, no wall-clock read.  The determinism tests pin this down: an
identical-seed campaign produces the same kernel event digest with
telemetry enabled, disabled, and before this subsystem existed.

This module deliberately imports nothing from the simulation stack so
any layer may import it without cycles.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.telemetry.metrics import MetricsRegistry
    from repro.telemetry.spans import SpanTracker

__all__ = ["TelemetryState", "STATE", "telemetry_active"]


class TelemetryState:
    """The process-wide telemetry toggle plus its live sinks.

    ``__slots__`` keeps the ``active`` check a straight slot load — the
    only cost instrumented code pays when telemetry is off.
    """

    __slots__ = ("active", "registry", "spans")

    def __init__(self) -> None:
        self.active: bool = False
        self.registry: Optional["MetricsRegistry"] = None
        self.spans: Optional["SpanTracker"] = None

    def activate(
        self, registry: "MetricsRegistry", spans: "SpanTracker"
    ) -> None:
        """Install live sinks and flip the hot-path switch on."""
        self.registry = registry
        self.spans = spans
        self.active = True

    def deactivate(self) -> None:
        """Flip the switch off and drop the sinks."""
        self.active = False
        self.registry = None
        self.spans = None


#: The singleton every instrumentation site reads.
STATE = TelemetryState()


def telemetry_active() -> bool:
    """True while a telemetry session is running."""
    return STATE.active
