"""Exporters: JSONL span log, Prometheus text format, Chrome trace JSON.

Three machine-readable views of one telemetry session:

* :func:`spans_to_jsonl` / :func:`parse_spans_jsonl` — one JSON object
  per line, lossless round-trip of every :class:`SpanRecord`;
* :func:`to_prometheus` — the Prometheus text exposition format
  (``repro.cli metrics --format prom``); dots become underscores,
  label sets are rendered sorted, histograms expand into cumulative
  ``_bucket{le=...}`` series plus ``_sum``/``_count``;
* :func:`to_chrome_trace` — Chrome trace-event JSON ("X" complete
  events) that loads directly in Perfetto / ``chrome://tracing``, with
  sim-time and attributes preserved under ``args``.
"""

from __future__ import annotations

import json
import math
from typing import Any, Dict, Iterable, List, Optional

from repro.telemetry.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.telemetry.spans import SpanRecord

__all__ = [
    "spans_to_jsonl",
    "parse_spans_jsonl",
    "to_prometheus",
    "to_chrome_trace",
    "PROMETHEUS_CONTENT_TYPE",
]

#: The content type a Prometheus scraper expects for the text
#: exposition format version 0.0.4 (what :func:`to_prometheus` emits).
#: ``repro.server``'s ``GET /metrics`` must serve exactly this.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


# ---------------------------------------------------------------------------
# JSONL span log
# ---------------------------------------------------------------------------


def spans_to_jsonl(records: Iterable[SpanRecord]) -> str:
    """Serialize spans, one JSON object per line (trailing newline)."""
    lines = [
        json.dumps(record.to_dict(), sort_keys=True) for record in records
    ]
    return "\n".join(lines) + ("\n" if lines else "")


def parse_spans_jsonl(text: str) -> List[SpanRecord]:
    """Inverse of :func:`spans_to_jsonl`."""
    records = []
    for line in text.splitlines():
        line = line.strip()
        if line:
            records.append(SpanRecord.from_dict(json.loads(line)))
    return records


# ---------------------------------------------------------------------------
# Prometheus text format
# ---------------------------------------------------------------------------


def _prom_name(name: str, suffix: str = "") -> str:
    return "repro_" + name.replace(".", "_") + suffix


def _prom_labels(labels: Dict[str, str], extra: Optional[Dict[str, str]] = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    body = ",".join(
        f'{key}="{_escape_label(value)}"'
        for key, value in sorted(merged.items())
    )
    return "{" + body + "}"


def _escape_label(value: str) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _prom_number(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def to_prometheus(registry: MetricsRegistry) -> str:
    """Render every series in the Prometheus text exposition format."""
    lines: List[str] = []
    typed: set = set()
    for metric in registry:
        if isinstance(metric, Counter):
            base = _prom_name(metric.name, "_total")
            if base not in typed:
                lines.append(f"# TYPE {base} counter")
                typed.add(base)
            lines.append(
                f"{base}{_prom_labels(metric.label_dict())} "
                f"{_prom_number(metric.value)}"
            )
        elif isinstance(metric, Gauge):
            base = _prom_name(metric.name)
            if base not in typed:
                lines.append(f"# TYPE {base} gauge")
                typed.add(base)
            lines.append(
                f"{base}{_prom_labels(metric.label_dict())} "
                f"{_prom_number(metric.value)}"
            )
        elif isinstance(metric, Histogram):
            base = _prom_name(metric.name)
            if base not in typed:
                lines.append(f"# TYPE {base} histogram")
                typed.add(base)
            labels = metric.label_dict()
            for bound, cumulative in metric.cumulative():
                lines.append(
                    f"{base}_bucket"
                    f"{_prom_labels(labels, {'le': _prom_number(bound)})} "
                    f"{cumulative}"
                )
            lines.append(
                f"{base}_sum{_prom_labels(labels)} "
                f"{_prom_number(metric.total)}"
            )
            lines.append(
                f"{base}_count{_prom_labels(labels)} {metric.count}"
            )
    return "\n".join(lines) + ("\n" if lines else "")


# ---------------------------------------------------------------------------
# Chrome trace-event JSON (Perfetto / chrome://tracing)
# ---------------------------------------------------------------------------

#: Synthetic process/thread ids: one "process" per session (or per
#: merged shard — see below); spans all nest on one "thread" so the
#: viewer stacks them by wall time.
TRACE_PID = 1
TRACE_TID = 1


def to_chrome_trace(
    records: Iterable[SpanRecord],
    label: str = "repro",
) -> Dict[str, Any]:
    """Build a Chrome trace-event document from completed spans.

    Every span becomes one ``"ph": "X"`` (complete) event.  Timestamps
    are microseconds relative to the earliest span, which keeps the
    numbers small and the viewer happy.

    Merged multi-shard campaigns (records carrying a ``shard`` index)
    render one synthetic *process row per shard*: ``pid = TRACE_PID +
    shard + 1`` with a ``process_name`` metadata event naming the shard.
    Without shard separation the per-shard span stacks — whose wall
    clocks overlap freely under a worker pool — collapse onto one row
    and the viewer draws nonsense nesting.
    """
    completed = [r for r in records if r.end_wall_ns is not None]
    origin_ns = min(
        (r.start_wall_ns for r in completed), default=0
    )

    def _pid(record: SpanRecord) -> int:
        if record.shard is None:
            return TRACE_PID
        return TRACE_PID + record.shard + 1

    events: List[Dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": TRACE_PID,
            "tid": TRACE_TID,
            "ts": 0,
            "args": {"name": label},
        }
    ]
    for shard in sorted({r.shard for r in completed if r.shard is not None}):
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": TRACE_PID + shard + 1,
                "tid": TRACE_TID,
                "ts": 0,
                "args": {"name": f"{label} [shard {shard}]"},
            }
        )
    for record in completed:
        args: Dict[str, Any] = dict(record.attrs)
        args["path"] = record.path
        if record.start_sim_ps is not None:
            args["start_sim_ps"] = record.start_sim_ps
        if record.sim_ps is not None:
            args["sim_ps"] = record.sim_ps
        if record.shard is not None:
            args["shard"] = record.shard
        events.append(
            {
                "name": record.name,
                "cat": "repro",
                "ph": "X",
                "ts": (record.start_wall_ns - origin_ns) / 1_000.0,
                "dur": record.wall_ns / 1_000.0,
                "pid": _pid(record),
                "tid": TRACE_TID,
                "args": args,
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}
