"""repro.telemetry — self-observation for the reproduction.

The paper's device exists to observe a network it cannot slow down
(§3.2's statistics gatherer and monitor); this package gives the
reproduction the same property about *itself*: a metrics registry cheap
enough to leave enabled, span-based wall/sim-time tracing, and
machine-readable exporters (JSONL, Prometheus text, Chrome trace JSON).

Quickstart::

    from repro.telemetry import TelemetrySession, span

    with TelemetrySession(out_dir="out", label="my-campaign") as session:
        with span("campaign", name="demo"):
            campaign.run()
    # out/metrics.json, out/spans.jsonl, out/trace.json

Design contract (enforced by tests):

* **disabled == free** — every hot-path hook is guarded by one slotted
  attribute read; with no session active the simulation runs the exact
  event sequence it ran before this package existed (identical kernel
  digests);
* **enabled == invisible** — telemetry only observes; it never reads
  wall-clock time inside sim logic, schedules events, or perturbs RNG
  streams, so identical-seed digests also match with telemetry *on*;
* **wall clock is quarantined here** — simlint's SIM001 rule bans
  wall-clock reads everywhere in ``repro`` except this package.
"""

from repro.telemetry.exporters import (
    PROMETHEUS_CONTENT_TYPE,
    parse_spans_jsonl,
    spans_to_jsonl,
    to_chrome_trace,
    to_prometheus,
)
from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.telemetry.session import ARTIFACT_NAMES, TelemetrySession
from repro.telemetry.spans import SpanRecord, SpanTracker, span
from repro.telemetry.state import STATE, telemetry_active

__all__ = [
    "ARTIFACT_NAMES",
    "PROMETHEUS_CONTENT_TYPE",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SpanRecord",
    "SpanTracker",
    "STATE",
    "TelemetrySession",
    "parse_spans_jsonl",
    "span",
    "spans_to_jsonl",
    "telemetry_active",
    "to_chrome_trace",
    "to_prometheus",
]
