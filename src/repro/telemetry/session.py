"""Telemetry session lifecycle and run artifacts.

A :class:`TelemetrySession` owns one :class:`MetricsRegistry` and one
:class:`SpanTracker`, flips the global :data:`~repro.telemetry.state.STATE`
switch for its duration, and — when given an output directory — drops
three machine-readable artifacts on exit:

* ``metrics.json``  — every metric series plus session metadata;
* ``spans.jsonl``   — one JSON object per completed span;
* ``trace.json``    — Chrome trace-event JSON (open in Perfetto).

Sessions nest safely (the previous state is restored on exit), and the
whole construct is exception-safe: artifacts are still written when the
wrapped campaign raises.

Wall-clock reads live here and in :mod:`repro.telemetry.spans` only —
the SIM001 telemetry allowance — and never feed back into sim
scheduling.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.telemetry.exporters import spans_to_jsonl, to_chrome_trace
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.spans import SpanTracker
from repro.telemetry.state import STATE

__all__ = ["TelemetrySession", "ARTIFACT_NAMES"]

#: File names dropped into ``--telemetry-dir``.
ARTIFACT_NAMES = ("metrics.json", "spans.jsonl", "trace.json")


class TelemetrySession:
    """Enable telemetry for a ``with`` block; optionally write artifacts.

    ::

        with TelemetrySession(out_dir="out", label="table4") as session:
            campaign.run()
        # out/metrics.json, out/spans.jsonl, out/trace.json now exist
    """

    def __init__(
        self,
        out_dir: Optional[Union[str, Path]] = None,
        label: str = "repro",
    ) -> None:
        self.out_dir = None if out_dir is None else Path(out_dir)
        self.label = label
        self.registry = MetricsRegistry()
        self.spans = SpanTracker()
        self.wall_s: Optional[float] = None
        self._t0: Optional[int] = None
        self._previous: Optional[tuple] = None

    # ------------------------------------------------------------------

    def __enter__(self) -> "TelemetrySession":
        self._previous = (STATE.active, STATE.registry, STATE.spans)
        STATE.activate(self.registry, self.spans)
        self._t0 = time.perf_counter_ns()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.wall_s = (
            (time.perf_counter_ns() - self._t0) / 1e9
            if self._t0 is not None
            else 0.0
        )
        self._finalize_derived()
        if self._previous is not None:
            active, registry, spans = self._previous
            if active and registry is not None and spans is not None:
                STATE.activate(registry, spans)
            else:
                STATE.deactivate()
            self._previous = None
        else:  # pragma: no cover - defensive
            STATE.deactivate()
        if self.out_dir is not None:
            self.write(self.out_dir)
        return False

    def _finalize_derived(self) -> None:
        """Derived session metrics: events/sec over the session wall time."""
        fired = self.registry.value("sim.events_fired")
        if self.wall_s and self.wall_s > 0:
            self.registry.gauge("sim.events_per_s").set(fired / self.wall_s)
        self.registry.gauge("session.wall_s").set(self.wall_s or 0.0)

    # ------------------------------------------------------------------

    def metrics_document(self) -> Dict[str, Any]:
        """The ``metrics.json`` payload."""
        return {
            "generated_by": "repro.telemetry",
            "version": 1,
            "label": self.label,
            "wall_s": self.wall_s,
            "metrics": self.registry.to_dict(),
        }

    def write(self, out_dir: Union[str, Path]) -> Path:
        """Write all three artifacts; returns the directory path."""
        target = Path(out_dir)
        target.mkdir(parents=True, exist_ok=True)
        (target / "metrics.json").write_text(
            json.dumps(self.metrics_document(), indent=2, sort_keys=True)
            + "\n"
        )
        (target / "spans.jsonl").write_text(
            spans_to_jsonl(self.spans.records)
        )
        (target / "trace.json").write_text(
            json.dumps(to_chrome_trace(self.spans.records, label=self.label))
            + "\n"
        )
        return target
