"""Span-based wall-clock tracing.

A *span* brackets one phase of work — ``campaign → experiment →
workload → injection`` — and records both wall time (how long the host
took) and sim time (how far the picosecond clock advanced), because the
reproduction's whole performance story is the ratio between the two.

Spans nest through a stack held by the :class:`SpanTracker`; the
module-level :func:`span` helper consults the global telemetry state and
degrades to a shared allocation-free no-op context manager when
telemetry is disabled, so instrumented code is branch-cheap either way::

    with span("experiment", sim=testbed.sim, run=i):
        ...

Wall-clock reads happen *only* here (and in the session bookkeeping) —
this is the one package exempt from simlint's SIM001 rule, and nothing
read from the wall clock ever flows back into sim scheduling.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.telemetry.state import STATE

__all__ = ["SpanRecord", "SpanTracker", "span", "current_span_id", "NOOP_SPAN"]


@dataclass
class SpanRecord:
    """One completed (or still-open) span."""

    span_id: int
    name: str
    #: Slash-joined ancestry, e.g. ``campaign/experiment/workload``.
    path: str
    depth: int
    parent_id: Optional[int]
    start_wall_ns: int
    end_wall_ns: Optional[int] = None
    start_sim_ps: Optional[int] = None
    end_sim_ps: Optional[int] = None
    attrs: Dict[str, Any] = field(default_factory=dict)
    #: Campaign-global experiment index stamped by the artifact merge;
    #: ``None`` for spans written directly by a live session.  Span ids
    #: restart per shard, so ``(shard, span_id)`` is the unique key in a
    #: merged ``spans.jsonl``.
    shard: Optional[int] = None

    @property
    def wall_ns(self) -> int:
        """Wall-clock duration (0 while the span is still open)."""
        if self.end_wall_ns is None:
            return 0
        return self.end_wall_ns - self.start_wall_ns

    @property
    def sim_ps(self) -> Optional[int]:
        """Simulated-time duration, when a simulator was attached."""
        if self.start_sim_ps is None or self.end_sim_ps is None:
            return None
        return self.end_sim_ps - self.start_sim_ps

    def to_dict(self) -> Dict[str, Any]:
        out = {
            "span_id": self.span_id,
            "name": self.name,
            "path": self.path,
            "depth": self.depth,
            "parent_id": self.parent_id,
            "start_wall_ns": self.start_wall_ns,
            "end_wall_ns": self.end_wall_ns,
            "wall_ns": self.wall_ns,
            "start_sim_ps": self.start_sim_ps,
            "end_sim_ps": self.end_sim_ps,
            "sim_ps": self.sim_ps,
            "attrs": self.attrs,
        }
        # Only merged records carry provenance; live-session spans.jsonl
        # output stays byte-identical to the pre-shard format.
        if self.shard is not None:
            out["shard"] = self.shard
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SpanRecord":
        return cls(
            span_id=data["span_id"],
            name=data["name"],
            path=data["path"],
            depth=data["depth"],
            parent_id=data.get("parent_id"),
            start_wall_ns=data["start_wall_ns"],
            end_wall_ns=data.get("end_wall_ns"),
            start_sim_ps=data.get("start_sim_ps"),
            end_sim_ps=data.get("end_sim_ps"),
            attrs=dict(data.get("attrs", {})),
            shard=data.get("shard"),
        )


class _ActiveSpan:
    """Context manager for one live span inside a tracker."""

    __slots__ = ("_tracker", "_record", "_sim")

    def __init__(self, tracker: "SpanTracker", record: SpanRecord, sim: Any):
        self._tracker = tracker
        self._record = record
        self._sim = sim

    def __enter__(self) -> SpanRecord:
        self._tracker._stack.append(self._record)
        return self._record

    def __exit__(self, exc_type, exc, tb) -> bool:
        record = self._record
        record.end_wall_ns = self._tracker.now_wall_ns()
        if self._sim is not None:
            record.end_sim_ps = self._sim.now
        if exc_type is not None:
            record.attrs.setdefault("error", exc_type.__name__)
        stack = self._tracker._stack
        if stack and stack[-1] is record:
            stack.pop()
        self._tracker.records.append(record)
        return False


class _NoopSpan:
    """Reusable zero-cost stand-in returned while telemetry is off."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


NOOP_SPAN = _NoopSpan()


class SpanTracker:
    """Owns the span stack and the completed-record list for one session.

    Wall timestamps combine one epoch read (``time.time_ns`` at
    construction) with the monotonic ``perf_counter_ns`` delta, so they
    are absolute *and* monotonic — what the Chrome trace exporter needs.
    """

    def __init__(self) -> None:
        self.records: List[SpanRecord] = []
        self._stack: List[SpanRecord] = []
        self._ids = itertools.count(1)
        self._epoch_ns = time.time_ns()
        self._perf0_ns = time.perf_counter_ns()

    def now_wall_ns(self) -> int:
        """Absolute monotonic wall-clock timestamp in nanoseconds."""
        return self._epoch_ns + (time.perf_counter_ns() - self._perf0_ns)

    def span(self, name: str, /, sim: Any = None, **attrs: Any) -> _ActiveSpan:
        """Open a nested span; ``sim`` (a Simulator) adds sim-time marks.

        ``name`` is positional-only so ``attrs`` may freely contain a
        ``name`` key (e.g. ``span("experiment", name=experiment.name)``).
        """
        parent = self._stack[-1] if self._stack else None
        record = SpanRecord(
            span_id=next(self._ids),
            name=name,
            path=f"{parent.path}/{name}" if parent else name,
            depth=len(self._stack),
            parent_id=parent.span_id if parent else None,
            start_wall_ns=self.now_wall_ns(),
            start_sim_ps=None if sim is None else sim.now,
            attrs=dict(attrs),
        )
        return _ActiveSpan(self, record, sim)

    @property
    def open_depth(self) -> int:
        return len(self._stack)

    def find(self, name: str) -> List[SpanRecord]:
        """Completed spans with the given name."""
        return [r for r in self.records if r.name == name]

    def current(self) -> Optional[SpanRecord]:
        """The innermost open span, or None outside any span."""
        return self._stack[-1] if self._stack else None


def span(name: str, /, sim: Any = None, **attrs: Any):
    """Open a span on the active session's tracker, or a no-op.

    This is the instrumentation entry point: safe to call from anywhere
    at any time; it costs one attribute read when telemetry is off.
    """
    if not STATE.active or STATE.spans is None:
        return NOOP_SPAN
    return STATE.spans.span(name, sim=sim, **attrs)


def current_span_id() -> Optional[int]:
    """Span id of the innermost open span, or None.

    Used by the capture subsystem to stamp experiment markers with the
    ``experiment`` span they ran under, joining ``capture.rcap`` records
    to ``spans.jsonl`` offline.  Costs one attribute read when telemetry
    is off.
    """
    if not STATE.active or STATE.spans is None:
        return None
    record = STATE.spans.current()
    return None if record is None else record.span_id
