"""Exception hierarchy shared by every repro subpackage.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to discriminate on the concrete subclass.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SimulationError(ReproError):
    """Raised when the discrete-event kernel is misused.

    Examples: scheduling an event in the past, or stepping a simulator
    whose event queue is empty while a deadline is pending.
    """


class ConfigurationError(ReproError):
    """Raised when a component is configured with inconsistent parameters."""


class ProtocolError(ReproError):
    """Raised on malformed network data (bad packets, bad command frames)."""


class CrcError(ProtocolError):
    """Raised when a packet fails its cyclic-redundancy check."""


class RoutingError(ProtocolError):
    """Raised when a packet cannot be routed (bad route byte, dead port)."""


class EncodingError(ProtocolError):
    """Raised by the 8b/10b codec on invalid code groups or disparity."""


class ChecksumError(ProtocolError):
    """Raised when a transport-layer checksum does not verify."""


class DeviceError(ReproError):
    """Raised when the fault-injector device rejects an operation."""


class CommandError(DeviceError):
    """Raised when the command decoder rejects a serial command."""


class CampaignError(ReproError):
    """Raised when an NFTAPE-style campaign is configured incorrectly."""


class ScenarioError(ConfigurationError):
    """Raised when a scenario document cannot be parsed or compiled.

    Carries a JSON-pointer-style ``location`` (``/experiments/0/faults/1``)
    naming the offending node of the document, so callers can surface
    the exact spot to whoever wrote the scenario.
    """

    def __init__(self, location: str, message: str) -> None:
        self.location = location or "/"
        super().__init__(f"{self.location}: {message}")
