"""Campaign workloads (paper §4.2).

The paper loaded the test-bed with "a simple UDP packet generation
program, running concurrently with the standard Unix ping program with
the flood option".  :class:`AllPairsWorkload` reproduces that: every node
runs a message-sending program toward every other node, optionally with
a flood ping between one pair, and every node runs a validating sink.

The sink validates more than arrival: each generated payload embeds the
intended destination address, a sequence number, and a deterministic
filler, so the workload can distinguish the paper's *passive* outcomes
(messages lost) from *active* ones (a message delivered to the wrong
node, or delivered with corrupted content) — the §4.4 dichotomy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.errors import ConfigurationError
from repro.hostsim.apps import EchoResponder, FloodPing
from repro.hostsim.ip import IpAddress
from repro.hostsim.sockets import HostStack
from repro.myrinet.addresses import MacAddress
from repro.myrinet.network import MyrinetNetwork
from repro.sim.rng import DeterministicRng
from repro.sim.timebase import US

#: UDP port the validating sinks listen on.
WORKLOAD_PORT = 5001
#: Payload prefix layout: 6 bytes dest MAC + 4 bytes sequence number.
_HEADER_LEN = 10


@dataclass
class WorkloadConfig:
    """Parameters of the all-pairs load."""

    payload_size: int = 64
    send_interval_ps: int = 500 * US
    flood_ping: bool = True
    forbidden_bytes: Set[int] = field(default_factory=set)
    stack_kwargs: Dict[str, int] = field(default_factory=dict)
    #: Heavy-tail bursts: each tick sends a Pareto-distributed number of
    #: messages, capped at ``burst_max``.  The default of 1 keeps the
    #: classic paced load (and draws nothing from the rng, so existing
    #: campaigns are bit-identical).
    burst_max: int = 1
    #: Pareto shape for burst sizes; smaller means heavier tails.
    burst_alpha: float = 1.5

    def __post_init__(self) -> None:
        if self.burst_max < 1:
            raise ConfigurationError("burst_max must be >= 1")
        if self.burst_alpha <= 0:
            raise ConfigurationError("burst_alpha must be positive")


def _filler_byte(seq: int, index: int, alphabet: List[int]) -> int:
    """Deterministic filler both sender and sink can compute."""
    return alphabet[(seq * 31 + index * 7) % len(alphabet)]


class _ValidatingSink:
    """Counts received messages and checks them for active-fault evidence."""

    def __init__(self, stack: HostStack, alphabet: List[int]) -> None:
        self._stack = stack
        self._alphabet = alphabet
        self.received = 0
        self.misdeliveries = 0
        self.corrupted = 0
        stack.bind(WORKLOAD_PORT, self._on_message)

    def _on_message(self, src_mac: MacAddress, src_ip: IpAddress,
                    src_port: int, payload: bytes) -> None:
        self.received += 1
        if len(payload) < _HEADER_LEN:
            self.corrupted += 1
            return
        intended = MacAddress.from_bytes(payload[:6])
        if intended != self._stack.interface.mac:
            # "the successful receipt of a message addressed to someone
            # else" — an active fault (paper §4.4).
            self.misdeliveries += 1
            return
        seq = int.from_bytes(payload[6:10], "big")
        filler = payload[_HEADER_LEN:]
        for index, byte in enumerate(filler):
            if byte != _filler_byte(seq, index, self._alphabet):
                self.corrupted += 1
                return


class _PairSender:
    """One node's paced message program toward one destination."""

    def __init__(
        self,
        stack: HostStack,
        dest: MacAddress,
        config: WorkloadConfig,
        alphabet: List[int],
        start_seq: int,
    ) -> None:
        self._stack = stack
        self._dest = dest
        self._config = config
        self._alphabet = alphabet
        self.seq = start_seq
        self.sent = 0

    def send_one(self) -> None:
        self.seq += 1
        filler_len = max(0, self._config.payload_size - _HEADER_LEN)
        payload = (
            self._dest.to_bytes()
            + self.seq.to_bytes(4, "big")
            + bytes(
                _filler_byte(self.seq, i, self._alphabet)
                for i in range(filler_len)
            )
        )
        self._stack.send_udp(self._dest, WORKLOAD_PORT, payload)
        self.sent += 1


class AllPairsWorkload:
    """Every node sends to every other node; sinks validate arrivals."""

    def __init__(
        self,
        network: MyrinetNetwork,
        config: Optional[WorkloadConfig] = None,
        rng: Optional[DeterministicRng] = None,
    ) -> None:
        self._network = network
        self.config = config or WorkloadConfig()
        self._rng = rng or network.rng.fork("workload")
        self._alphabet = [
            b for b in range(0x20, 0x7F)
            if b not in self.config.forbidden_bytes
        ]
        if not self._alphabet:
            raise ConfigurationError(
                "forbidden_bytes excludes every printable payload byte"
            )
        self.stacks: Dict[str, HostStack] = {}
        self.sinks: Dict[str, _ValidatingSink] = {}
        self._senders: List[_PairSender] = []
        self._burst_rng = (
            self._rng.fork("burst") if self.config.burst_max > 1 else None
        )
        self._running = False
        self.flood: Optional[FloodPing] = None
        self._echo: Optional[EchoResponder] = None

        names = sorted(network.hosts)
        for name in names:
            stack = HostStack(
                network.sim,
                network.hosts[name].interface,
                rng=self._rng.fork(f"stack:{name}"),
                **self.config.stack_kwargs,
            )
            self.stacks[name] = stack
            self.sinks[name] = _ValidatingSink(stack, self._alphabet)
        seq = 0
        for src in names:
            for dst in names:
                if src == dst:
                    continue
                seq += 1
                self._senders.append(
                    _PairSender(
                        self.stacks[src],
                        network.hosts[dst].interface.mac,
                        self.config,
                        self._alphabet,
                        start_seq=seq * 1_000_000,
                    )
                )
        if self.config.flood_ping and len(names) >= 2:
            self._echo = EchoResponder(self.stacks[names[-1]])
            self.flood = FloodPing(
                network.sim,
                self.stacks[names[0]],
                network.hosts[names[-1]].interface.mac,
            )

    # ------------------------------------------------------------------

    def start(self) -> None:
        """Begin the load (senders are staggered within one interval)."""
        self._running = True
        interval = self.config.send_interval_ps
        for index, sender in enumerate(self._senders):
            offset = (index * interval) // max(1, len(self._senders))
            self._network.sim.schedule(
                offset,
                lambda s=sender: self._tick(s),
                label="workload-send",
            )
        if self.flood is not None:
            self.flood.start()

    def stop(self) -> None:
        self._running = False
        if self.flood is not None:
            self.flood.stop()

    def _tick(self, sender: _PairSender) -> None:
        if not self._running:
            return
        for _ in range(self._burst_size()):
            sender.send_one()
        self._network.sim.schedule(
            self.config.send_interval_ps,
            lambda: self._tick(sender),
            label="workload-send",
        )

    def _burst_size(self) -> int:
        """How many messages this tick sends (1 unless bursting)."""
        if self._burst_rng is None:
            return 1
        # Inverse-CDF Pareto draw: heavy-tailed, capped at burst_max.
        u = self._burst_rng.random()
        size = int((1.0 - u) ** (-1.0 / self.config.burst_alpha))
        return min(self.config.burst_max, max(1, size))

    # ------------------------------------------------------------------

    @property
    def messages_attempted(self) -> int:
        """Messages the sending programs tried to send."""
        return sum(sender.sent for sender in self._senders)

    @property
    def messages_sent(self) -> int:
        """Workload messages accepted onto the wire (the paper's
        "messages sent"); ping/echo traffic is not counted.

        Sends blocked by a full interface queue — senders stalled by
        backpressure — are counted separately in :attr:`send_failures`.
        """
        return sum(
            stack.udp_sent_by_port[WORKLOAD_PORT]
            for stack in self.stacks.values()
        )

    @property
    def messages_received(self) -> int:
        return sum(sink.received for sink in self.sinks.values())

    @property
    def misdeliveries(self) -> int:
        return sum(sink.misdeliveries for sink in self.sinks.values())

    @property
    def corrupted_deliveries(self) -> int:
        return sum(sink.corrupted for sink in self.sinks.values())

    @property
    def send_failures(self) -> int:
        return sum(
            stack.send_failures_by_port[WORKLOAD_PORT]
            for stack in self.stacks.values()
        )

    @property
    def checksum_drops(self) -> int:
        return sum(stack.checksum_drops for stack in self.stacks.values())
