"""The paper's experiments, as runnable campaign definitions.

One function per table/figure of the evaluation (see DESIGN.md's
per-experiment index).  Each returns a
:class:`~repro.nftape.results.ResultTable` whose rows place the paper's
published value next to the measured one, plus any experiment-specific
artifacts (e.g. the Figure 11 network-map renders).

Durations are scaled down from the paper's minutes to tens of
milliseconds of simulated time; rates and loss fractions are reported
normalized so the comparison is scale-free.  Where a run depends on the
long-period timeout (~50 ms, §4.3.1), the timeout is scaled by the same
factor as the run and the scaling is recorded in the row.

Seed derivation rule
--------------------
Every ``table*``/``sec*`` builder takes ``seed: int = 0`` with one
meaning: it is the campaign's **base seed**.  The seed of experiment
``i`` named ``n`` is ``derive_seed(seed, i, n)``
(:mod:`repro.runtime.seeding` — blake2b of ``"{seed}:{i}:{n}"``,
truncated to 63 bits) and is threaded into
:attr:`TestbedOptions.seed <repro.nftape.experiment.TestbedOptions.seed>`
identically everywhere.  Paired-comparison experiments (Table 2's
with/without-device runs, §3.5's direct/injector runs) share the *same*
derived seed across the pair by design — the comparison is the
experiment.  This is the same rule the sharded campaign engine applies,
so paper campaigns replay bit-identically at any worker count.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.core.faults import control_symbol_swap, replace_bytes
from repro.hostsim.apps import MessageSink, PingPong
from repro.hostsim.sockets import HostStack
from repro.hw.registers import CorruptMode, InjectorConfig, MatchMode
from repro.myrinet.symbols import (
    GAP,
    GO,
    IDLE,
    STOP,
    GAP_VALUE,
)
from repro.nftape.campaign import Campaign
from repro.nftape.classify import classify_result
from repro.nftape.experiment import Experiment, Testbed, TestbedOptions
from repro.nftape.plan import FaultPlan
from repro.nftape.results import ExperimentResult, ResultTable
from repro.nftape.workload import WorkloadConfig
from repro.runtime.seeding import derive_seed
from repro.runtime.spec import CampaignSpec, ExperimentSpec, PlanSpec
from repro.sim.timebase import MS, NS, US, to_ns

# ---------------------------------------------------------------------------
# shared campaign parameters
# ---------------------------------------------------------------------------

#: Host overheads calibrated so a ping-pong exchange averages ~235 us per
#: packet, the paper's Table 2 baseline.
TABLE2_STACK_KWARGS = dict(
    send_overhead_ps=120 * US,
    recv_overhead_ps=113 * US,
    jitter_ps=2 * US,
    timer_tick_ps=1 * US,
    overhead_drift_ps=400 * NS,
)

#: "Full capacity" load: offered rate above what the hosts can sink, with
#: 1999-class hosts that drain at half the link rate.
OVERLOAD_WORKLOAD = WorkloadConfig(send_interval_ps=4 * US, payload_size=64)
OVERLOAD_HOST_KWARGS = {"rx_drain_factor": 2.0}

#: Paper Table 2 rows: (without, with, added) in nanoseconds.
PAPER_TABLE2 = [
    (235_213, 235_926, 713),
    (235_805, 235_730, 75),
    (235_220, 236_107, 887),
    (234_973, 236_380, 1407),
    (235_426, 236_134, 708),
]

#: Paper Table 4 rows: (mask, replacement, sent, received, loss).
PAPER_TABLE4 = [
    ("STOP", "IDLE", 4064, 3705, 0.08),
    ("STOP", "GAP", 4092, 3445, 0.15),
    ("STOP", "GO", 4015, 3694, 0.07),
    ("GAP", "GO", 3132, 2785, 0.11),
    ("GAP", "IDLE", 3378, 3022, 0.11),
    ("GAP", "STOP", 3983, 3607, 0.09),
    ("GO", "IDLE", 2564, 2199, 0.14),
    ("GO", "GAP", 3483, 3108, 0.10),
    ("GO", "STOP", 3720, 3322, 0.10),
]

_SYMBOLS = {"STOP": STOP, "GO": GO, "GAP": GAP, "IDLE": IDLE}


# ---------------------------------------------------------------------------
# Table 2 — added latency of the device in the data path
# ---------------------------------------------------------------------------


def _run_pingpong(with_device: bool, seed: int, exchanges: int) -> float:
    """Average one-way time per packet (ns) for one ping-pong run."""
    testbed = Testbed(TestbedOptions(seed=seed, with_device=with_device))
    testbed.settle()
    network = testbed.network
    # The with/without measurements are separate runs on real machines:
    # they see different jitter draws, timer phases, and machine-state
    # drift, so the rng substream is keyed by the configuration too.
    rng = testbed.rng.fork(f"table2:{with_device}")
    stack_a = HostStack(
        testbed.sim, network.host("pc").interface,
        rng=rng.fork("a"), **TABLE2_STACK_KWARGS,
    )
    stack_b = HostStack(
        testbed.sim, network.host("sparc1").interface,
        rng=rng.fork("b"), **TABLE2_STACK_KWARGS,
    )
    results = []
    pingpong = PingPong(
        testbed.sim, stack_a, stack_b, count=exchanges,
        on_complete=results.append,
    )
    pingpong.start()
    # Each exchange is ~470 us; leave generous headroom.
    testbed.sim.run_for((exchanges + 10) * 600 * US)
    if not results:
        raise RuntimeError("ping-pong did not complete in time")
    return to_ns(results[0].avg_time_per_packet_ps)


def table2_latency(exchanges: int = 1500,
                   experiments: int = 5,
                   seed: int = 0) -> ResultTable:
    """Table 2: ping-pong latency with and without the injector.

    The paper sent 2M packets per experiment on real hardware; each
    scaled experiment here uses ``exchanges`` round trips and a distinct
    derived seed (distinct timer phases and jitter draws, the dominant
    noise source the paper identified).  Seed of experiment ``i``:
    ``derive_seed(seed, i, f"experiment-{i + 1}")``, shared by the
    with/without pair (paired comparison — see the module's seed rule).
    """
    table = ResultTable("Table 2 — added latency per packet (ns)")
    for index in range(experiments):
        run_seed = derive_seed(seed, index, f"experiment-{index + 1}")
        without = _run_pingpong(False, seed=run_seed, exchanges=exchanges)
        with_dev = _run_pingpong(True, seed=run_seed, exchanges=exchanges)
        paper = PAPER_TABLE2[index % len(PAPER_TABLE2)]
        result = ExperimentResult(
            name=f"experiment-{index + 1}",
            messages_sent=2 * exchanges,
            messages_received=2 * exchanges,
        )
        result.extras["without_ns"] = without
        result.extras["with_ns"] = with_dev
        table.add(
            result,
            experiment=f"{index + 1}",
            without_ns=f"{without:.0f}",
            with_ns=f"{with_dev:.0f}",
            added_ns=f"{with_dev - without:.0f}",
            paper_added_ns=paper[2],
        )
    return table


# ---------------------------------------------------------------------------
# Table 4 — control symbol corruption campaign
# ---------------------------------------------------------------------------


def table4_spec(
    duration_ps: int = 20 * MS,
    duty_on_ps: int = int(1.5 * MS),
    duty_off_ps: int = int(8.5 * MS),
    seed: int = 0,
) -> CampaignSpec:
    """The Table 4 campaign as a declarative, picklable description.

    One :class:`~repro.runtime.spec.ExperimentSpec` per mask/replacement
    pair, named ``"{mask}->{replacement}"``; the paper's published
    numbers travel in ``params`` so the row builder can place them next
    to the measured ones in any process.  Seed of row ``i`` is
    ``derive_seed(seed, i, name)`` (the module's seed rule), applied by
    whichever executor runs the campaign.
    """
    specs = []
    for mask, replacement, p_sent, p_recv, p_loss in PAPER_TABLE4:
        config = control_symbol_swap(
            _SYMBOLS[mask], _SYMBOLS[replacement], MatchMode.ON
        )
        specs.append(ExperimentSpec(
            name=f"{mask}->{replacement}",
            duration_ps=duration_ps,
            plan=PlanSpec(
                "duty_cycle", "RL", config, use_serial=False,
                on_ps=duty_on_ps, off_ps=duty_off_ps,
            ),
            workload=OVERLOAD_WORKLOAD,
            testbed=TestbedOptions(host_kwargs=dict(OVERLOAD_HOST_KWARGS)),
            params={
                "mask": mask,
                "replacement": replacement,
                "paper_sent": p_sent,
                "paper_received": p_recv,
                "paper_loss": p_loss,
            },
        ))
    return CampaignSpec.build(
        "Table 4 — control symbol corruption", specs, base_seed=seed
    )


def _table4_row(result: ExperimentResult) -> Dict[str, Any]:
    """Table 4 row: measured numbers next to the paper's, from params."""
    params = result.params
    return {
        "mask": params["mask"],
        "replacement": params["replacement"],
        "sent": result.messages_sent,
        "received": result.messages_received,
        "loss": f"{result.loss_rate:.1%}",
        "paper_loss": f"{params['paper_loss']:.0%}",
        "injections": result.injections,
        "fault_class": classify_result(result).fault_class.value,
    }


def table4_control_symbols(
    duration_ps: int = 20 * MS,
    duty_on_ps: int = int(1.5 * MS),
    duty_off_ps: int = int(8.5 * MS),
    seed: int = 0,
    executor: Optional[Any] = None,
) -> ResultTable:
    """Table 4: corrupt each flow-control symbol into each other symbol.

    The trigger is duty-cycled (armed/disarmed windows over the serial
    link) as NFTAPE paced the campaign; the workload keeps the network
    at full capacity with every node running a message-sending program.

    The campaign is described by :func:`table4_spec` and run through
    whichever ``executor`` is supplied —
    :class:`~repro.runtime.executors.SerialExecutor` by default, or a
    :class:`~repro.runtime.executors.PooledExecutor` to shard the nine
    rows across worker processes with bit-identical output.
    """
    spec = table4_spec(
        duration_ps=duration_ps, duty_on_ps=duty_on_ps,
        duty_off_ps=duty_off_ps, seed=seed,
    )
    campaign = Campaign.from_spec(spec, row_builder=_table4_row)
    return campaign.run(executor=executor)


# ---------------------------------------------------------------------------
# §4.3.1 — throughput under continuous flow-control faults
# ---------------------------------------------------------------------------


def sec431_throughput(duration_ps: int = 20 * MS,
                      seed: int = 0) -> ResultTable:
    """§4.3.1 prose numbers: throughput collapse under continuous faults.

    * baseline — the paper's 48000 messages/minute run;
    * faulty STOP conditions — every GAP toward the instrumented host
      becomes a STOP (erroneous stop state + merged frames); the paper
      measured 5038/48000 ≈ 10.5% of normal;
    * lost GAPs — every GAP deleted; paths stay occupied until the
      long-period timeout reclaims them; the paper measured ~12% of
      normal throughput.

    The long-period timeout is scaled with the run (recorded per row).
    Seed of run ``i`` named ``n`` is ``derive_seed(seed, i, n)`` with
    ``baseline``/``faulty-stop-conditions``/``lost-gaps`` at indices
    0/1/2; this campaign stays in-process because the fraction rows read
    the live workload objects out of ``result.extras``.
    """
    scaled_timeout_periods = 160_000  # 2 ms at 12.5 ns — scaled from 50 ms
    table = ResultTable("§4.3.1 — throughput under flow-control faults")

    def _run(index: int, name: str, plan,
             paper_fraction: Optional[float]):
        experiment = Experiment(
            name,
            duration_ps=duration_ps,
            plan=plan,
            workload_config=OVERLOAD_WORKLOAD,
            testbed_options=TestbedOptions(
                seed=derive_seed(seed, index, name),
                host_kwargs=dict(OVERLOAD_HOST_KWARGS),
                long_timeout_periods=scaled_timeout_periods,
            ),
        )
        return experiment.run(), paper_fraction

    baseline, _ = _run(0, "baseline", None, None)
    stop_fault, stop_paper = _run(
        1, "faulty-stop-conditions",
        FaultPlan("L", control_symbol_swap(GAP, STOP, MatchMode.ON),
                  use_serial=False),
        5038 / 48000,
    )
    gap_loss, gap_paper = _run(
        2, "lost-gaps",
        FaultPlan("RL", control_symbol_swap(GAP, IDLE, MatchMode.ON),
                  use_serial=False),
        0.12,
    )

    base_rate = baseline.throughput_per_second

    def _pc_received(result: ExperimentResult) -> int:
        workload = result.extras["workload"]
        return workload.sinks["pc"].received

    base_pc = _pc_received(baseline)
    for result, paper_fraction in (
        (baseline, 1.0), (stop_fault, stop_paper), (gap_loss, gap_paper)
    ):
        fraction = (
            result.throughput_per_second / base_rate if base_rate else 0.0
        )
        pc_fraction = _pc_received(result) / base_pc if base_pc else 0.0
        table.add(
            result,
            run=result.name,
            received=result.messages_received,
            network_fraction=f"{fraction:.1%}",
            instrumented_host_fraction=f"{pc_fraction:.1%}",
            paper_fraction=f"{paper_fraction:.1%}",
            long_timeouts=result.total_switch_counter("long_timeouts"),
            tx_timeout_drops=result.total_host_counter("tx_timeout_drops"),
        )
    return table


# ---------------------------------------------------------------------------
# §4.3.2 — packet type corruption
# ---------------------------------------------------------------------------


def _mapping_type_config() -> InjectorConfig:
    """Corrupt the mapping packet type 0x0005 to 0x000x (x random-ish)."""
    return InjectorConfig(
        match_mode=MatchMode.ON,
        compare_data=0x0005,
        compare_mask=0xFFFF,
        corrupt_mode=CorruptMode.TOGGLE,
        corrupt_data=0x000A,  # 0x0005 -> 0x000F
        crc_fixup=True,
    )


def sec432_packet_types(seed: int = 0) -> ResultTable:
    """§4.3.2: corrupt mapping headers, data headers, and source routes.

    Five sub-experiments, seeded by the module's rule at indices 0–4:
    ``mapping-type-corruption``, ``data-type-corruption``,
    ``route-msb-corruption``, ``route-to-wrong-host``,
    ``route-to-dead-port``.
    """
    table = ResultTable("§4.3.2 — packet type and source route corruption")

    # --- mapping packet corruption (0x0005 -> 0x000x) -------------------
    testbed = Testbed(TestbedOptions(
        seed=derive_seed(seed, 0, "mapping-type-corruption")
    ))
    testbed.settle()
    mapper = testbed.network.mapper().mcp
    assert testbed.device is not None
    testbed.device.configure("R", _mapping_type_config())
    rounds_before = len(mapper.map_history)
    testbed.sim.run_for(3 * testbed.options.map_interval_ps)
    armed_maps = mapper.map_history[rounds_before:]
    removed = all("pc" not in m.entries for m in armed_maps)
    tables_lost_pc = all(
        testbed.network.host("pc").interface.mac not in
        host.interface.routing_table
        for name, host in testbed.network.hosts.items() if name != "pc"
    )
    testbed.device.injector("R").set_match_mode(MatchMode.OFF)
    testbed.sim.run_for(2 * testbed.options.map_interval_ps)
    restored = "pc" in mapper.map_history[-1].entries
    result = ExperimentResult(name="mapping-type-corruption")
    result.extras.update(removed=removed, restored=restored)
    table.add(
        result,
        target="mapping packet (0x0005)",
        observed=(
            f"node removed={removed}, tables updated={tables_lost_pc}, "
            f"back next round={restored}"
        ),
        paper="node removed from network until next mapping packet",
    )

    # --- data packet corruption (0x0004) --------------------------------
    experiment = Experiment(
        "data-type-corruption",
        duration_ps=10 * MS,
        plan=FaultPlan(
            "R",
            InjectorConfig(
                match_mode=MatchMode.ON,
                compare_data=0x0004,
                compare_mask=0xFFFF,
                corrupt_mode=CorruptMode.TOGGLE,
                corrupt_data=0x00F0,
                crc_fixup=True,
            ),
            use_serial=False,
        ),
        workload_config=WorkloadConfig(send_interval_ps=200 * US,
                                       flood_ping=False),
        testbed_options=TestbedOptions(
            seed=derive_seed(seed, 1, "data-type-corruption")
        ),
    )
    data_result = experiment.run()
    testbed2 = data_result.extras["testbed"]
    tables_intact = all(
        len(host.interface.routing_table) == 2
        for host in testbed2.network.hosts.values()
    )
    table.add(
        data_result,
        target="data packet (0x0004)",
        observed=(
            f"unknown-type drops={data_result.total_host_counter('unknown_type_drops')}, "
            f"routing tables intact={tables_intact}, "
            f"misdeliveries={data_result.active_misdeliveries}"
        ),
        paper="packets dropped; routing table unchanged",
    )

    # --- source route MSB set on arrival at the destination -------------
    msb_config = InjectorConfig(
        match_mode=MatchMode.ON,
        # Window: [lane1]=GAP control symbol, [lane0]=leading 0x00 of the
        # type field — i.e. the first byte the destination interface sees.
        compare_data=(GAP_VALUE << 8) | 0x00,
        compare_mask=0xFFFF,
        compare_ctl=0b0001,      # lane1 control, lane0 data
        compare_ctl_mask=0b0011,
        corrupt_mode=CorruptMode.REPLACE,
        corrupt_data=0x80,
        corrupt_mask=0xFF,
        crc_fixup=True,
    )
    experiment = Experiment(
        "route-msb-corruption",
        duration_ps=10 * MS,
        plan=FaultPlan("L", msb_config, use_serial=False),
        workload_config=WorkloadConfig(send_interval_ps=200 * US,
                                       flood_ping=False),
        testbed_options=TestbedOptions(
            seed=derive_seed(seed, 2, "route-msb-corruption")
        ),
    )
    msb_result = experiment.run()
    consume_errors = msb_result.host_stats["pc"]["consume_errors"]
    table.add(
        msb_result,
        target="source route MSB at destination",
        observed=(
            f"consume errors={consume_errors}, misdeliveries="
            f"{msb_result.active_misdeliveries}, corrupted deliveries="
            f"{msb_result.corrupted_deliveries}"
        ),
        paper="consumed and handled as an error, without incident",
    )

    # --- misrouting: redirect and dead-port route bytes ------------------
    for index, (name, new_route, paper_text) in enumerate((
        ("route-to-wrong-host", 0x82,
         "expected losses; not accepted by incorrect nodes"),
        ("route-to-dead-port", 0x87,
         "expected losses; no error propagation"),
    ), start=3):
        route_config = InjectorConfig(
            match_mode=MatchMode.ON,
            # Window: GAP then the route byte 0x81 (pc -> switch port 1).
            compare_data=(GAP_VALUE << 8) | 0x81,
            compare_mask=0xFFFF,
            compare_ctl=0b0001,
            compare_ctl_mask=0b0011,
            corrupt_mode=CorruptMode.REPLACE,
            corrupt_data=new_route,
            corrupt_mask=0xFF,
            crc_fixup=True,
        )
        experiment = Experiment(
            name,
            duration_ps=10 * MS,
            plan=FaultPlan("R", route_config, use_serial=False),
            workload_config=WorkloadConfig(send_interval_ps=200 * US,
                                           flood_ping=False),
            testbed_options=TestbedOptions(
                seed=derive_seed(seed, index, name)
            ),
        )
        result = experiment.run()
        table.add(
            result,
            target=name,
            observed=(
                f"lost={result.messages_lost}, misaddressed="
                f"{result.total_host_counter('misaddressed_drops')}, "
                f"routing errors="
                f"{result.total_switch_counter('routing_errors')}, "
                f"misdeliveries={result.active_misdeliveries}"
            ),
            paper=paper_text,
        )
    return table


# ---------------------------------------------------------------------------
# §4.3.3 — physical address corruption (and Figure 11)
# ---------------------------------------------------------------------------


def _mac_pattern(testbed: Testbed, host: str) -> bytes:
    """The distinguishing low 4 bytes of a host's 48-bit address."""
    return testbed.network.host(host).interface.mac.to_bytes()[2:]


def sec433_addresses(seed: int = 0) -> Tuple[ResultTable, Dict[str, List[str]]]:
    """§4.3.3: the four address-corruption campaigns.

    Returns the result table and the Figure 11 artifacts (network map
    renders before and during the controller-address conflict).

    Seeds follow the module's rule at indices 0–3:
    ``destination-corruption``, ``own-address-corruption``,
    ``controller-address-conflict``, ``nonexistent-address``.
    """
    table = ResultTable("§4.3.3 — physical address corruption")
    artifacts: Dict[str, List[str]] = {}

    # --- (a) destination corruption, CRC left stale ----------------------
    def _address_swap_run(index: int, name: str, direction: str,
                          crc_fixup: bool, source: str, target: str):
        options = TestbedOptions(seed=derive_seed(seed, index, name))
        probe = Testbed(options)  # to read the auto-assigned addresses
        match = _mac_pattern(probe, source)
        replacement = _mac_pattern(probe, target)
        config = replace_bytes(match, replacement,
                               match_mode=MatchMode.ON, crc_fixup=crc_fixup)
        experiment = Experiment(
            name,
            duration_ps=10 * MS,
            plan=FaultPlan(direction, config, use_serial=False),
            workload_config=WorkloadConfig(send_interval_ps=200 * US,
                                           flood_ping=False),
            testbed_options=options,
        )
        return experiment.run()

    dest = _address_swap_run(0, "destination-corruption", "R", False,
                             "sparc1", "sparc2")
    table.add(
        dest,
        campaign="destination address, stale CRC",
        observed=(
            f"crc drops={dest.total_host_counter('crc_errors')}, "
            f"misdeliveries={dest.active_misdeliveries}, lost="
            f"{dest.messages_lost}"
        ),
        paper="dropped; received by neither node (incorrect CRC-8)",
    )

    # --- (b) own address corrupted (CRC fixed up) ------------------------
    own = _address_swap_run(1, "own-address-corruption", "L", True,
                            "pc", "sparc1")
    own_testbed = own.extras["testbed"]
    still_mapped = "pc" in own_testbed.network.mapper().mcp.map_history[-1].entries
    table.add(
        own,
        campaign="node's own address (valid CRC)",
        observed=(
            f"misaddressed drops={own.host_stats['pc']['misaddressed_drops']}, "
            f"delivered to pc={own.host_stats['pc']['packets_received']}, "
            f"still answers mapping={still_mapped}"
        ),
        paper="unreachable, drops all as misaddressed; mapping unaffected",
    )

    # --- (c) address corrupted to the controller's ------------------------
    options = TestbedOptions(
        seed=derive_seed(seed, 2, "controller-address-conflict")
    )
    testbed = Testbed(options)
    testbed.settle()
    mapper = testbed.network.mapper().mcp
    before = mapper.map_history[-1]
    match = _mac_pattern(testbed, "pc")
    controller = _mac_pattern(testbed, testbed.network.mapper().name)
    assert testbed.device is not None
    testbed.device.configure(
        "R",
        replace_bytes(match, controller, match_mode=MatchMode.ON,
                      crc_fixup=True),
    )
    # Let several corrupted mapping rounds publish damaged tables, then
    # probe the damage: with two nodes claiming the controller's
    # address, the MAC-keyed routing entry for the controller now points
    # at the impostor, so controller-bound traffic is misrouted and
    # dropped as misaddressed — the controller becomes unreachable by
    # address even though the map "looks" populated.
    controller = testbed.network.mapper()
    controller_mac = controller.interface.mac
    testbed.sim.run_for(4 * options.map_interval_ps)
    sparc1_stack = HostStack(testbed.sim,
                             testbed.network.host("sparc1").interface,
                             rng=testbed.rng.fork("probe"))
    controller_stack = HostStack(testbed.sim, controller.interface,
                                 rng=testbed.rng.fork("probe2"))
    sink = MessageSink(controller_stack, 6000)
    pc_misaddressed_before = (
        testbed.network.host("pc").interface.misaddressed_drops
    )
    for _index in range(20):
        sparc1_stack.send_udp(controller_mac, 6000, b"to the controller")
    testbed.sim.run_for(5 * MS)
    misrouted = (
        testbed.network.host("pc").interface.misaddressed_drops
        - pc_misaddressed_before
    )
    conflict_maps = [
        m for m in mapper.map_history if m.round_index > before.round_index
    ]
    conflicts = [m for m in conflict_maps if m.conflict]
    wrong_route = testbed.network.host("sparc1").interface.routing_table.get(
        controller_mac
    )
    result = ExperimentResult(name="controller-address-conflict")
    result.extras["maps"] = conflict_maps
    table.add(
        result,
        campaign="address = controller's address",
        observed=(
            f"conflict rounds={len(conflicts)}/{len(conflict_maps)}, "
            f"controller-bound messages misrouted to impostor="
            f"{misrouted}/20 (delivered={sink.received}), "
            f"controller route now {wrong_route}"
        ),
        paper="routing table badly corrupted; map inconsistent each round",
    )
    artifacts["fig11_before"] = [before.render()]
    artifacts["fig11_after"] = [m.render() for m in conflict_maps[:3]]

    # --- (d) address corrupted to a non-existent one ----------------------
    options = TestbedOptions(
        seed=derive_seed(seed, 3, "nonexistent-address")
    )
    testbed = Testbed(options)
    testbed.settle()
    mapper = testbed.network.mapper().mcp
    match = _mac_pattern(testbed, "pc")
    assert testbed.device is not None
    testbed.device.configure(
        "R",
        replace_bytes(match, b"\x5e\x00\x00\x7f", match_mode=MatchMode.ON,
                      crc_fixup=True),
    )
    testbed.sim.run_for(3 * options.map_interval_ps)
    latest = mapper.map_history[-1]
    pc_mac = testbed.network.host("pc").interface.mac
    entry = latest.entries.get("pc")
    replaced = entry is not None and entry.mac != pc_mac
    old_mac_routable = any(
        pc_mac in host.interface.routing_table
        for name, host in testbed.network.hosts.items() if name != "pc"
    )
    result = ExperimentResult(name="nonexistent-address")
    table.add(
        result,
        campaign="address = non-existent address",
        observed=(
            f"map shows new address={replaced}, old address still "
            f"routable={old_mac_routable}"
        ),
        paper="routing table updated, as if the machine were replaced",
    )
    return table, artifacts


# ---------------------------------------------------------------------------
# §4.3.4 — UDP checksum corruption
# ---------------------------------------------------------------------------


def sec434_udp_checksum(messages: int = 40,
                        seed: int = 0) -> ResultTable:
    """§4.3.4: 16-bit-apart swaps defeat the UDP checksum.

    * swapping "Have" to "veHa" (two aligned 16-bit words exchanged)
      preserves the one's-complement sum, so the corrupted message is
      passed to the application;
    * any other corruption fails the checksum and the datagram is
      dropped by the UDP layer.

    Seeds follow the module's rule at indices 0–1 (swap, then plain
    corruption).
    """
    table = ResultTable("§4.3.4 — UDP checksum corruption")
    cases = [
        ("16-bit-apart swap", b"Have", b"veHa",
         "checksum satisfied; corrupted message passed through"),
        ("plain corruption", b"Have", b"HAVE",
         "checksum fails; packets dropped"),
    ]
    for index, (name, match, replacement, paper_text) in enumerate(cases):
        testbed = Testbed(TestbedOptions(seed=derive_seed(seed, index, name)))
        testbed.settle()
        network = testbed.network
        sender = HostStack(testbed.sim, network.host("pc").interface,
                           rng=testbed.rng.fork("tx"))
        receiver = HostStack(testbed.sim, network.host("sparc1").interface,
                             rng=testbed.rng.fork("rx"))
        sink = MessageSink(receiver, 4242, store_limit=messages)
        assert testbed.device is not None
        testbed.device.configure(
            "R",
            replace_bytes(match, replacement, match_mode=MatchMode.ON,
                          crc_fixup=True),
        )
        for _index in range(messages):
            sender.send_udp(receiver.interface.mac, 4242,
                            b"Have a lot of fun")
        testbed.sim.run_for(20 * MS)
        corrupted = sum(
            1 for m in sink.messages if m == b"veHa a lot of fun"
        )
        result = ExperimentResult(
            name=name,
            messages_sent=messages,
            messages_received=sink.received,
            checksum_drops=receiver.checksum_drops,
        )
        result.corrupted_deliveries = corrupted
        table.add(
            result,
            corruption=name,
            sent=messages,
            delivered=sink.received,
            corrupted_delivered=corrupted,
            checksum_drops=receiver.checksum_drops,
            paper=paper_text,
        )
    return table


# ---------------------------------------------------------------------------
# §3.5 — pass-through transparency
# ---------------------------------------------------------------------------


def sec35_passthrough(duration_ps: int = 10 * MS,
                      seed: int = 0) -> ResultTable:
    """§3.5: the device is transparent in pass-through mode.

    Both Myrinet control and data packets transfer seamlessly, routes
    map through in both directions, and the data transfer rate is
    unchanged.

    The direct/injector runs are a paired comparison: both share the
    single derived seed ``derive_seed(seed, 0, "passthrough")`` so the
    only difference between them is the device in the path.
    """
    table = ResultTable("§3.5 — pass-through transparency")
    run_seed = derive_seed(seed, 0, "passthrough")
    results: Dict[bool, ExperimentResult] = {}
    for with_device in (False, True):
        experiment = Experiment(
            "with-device" if with_device else "without-device",
            duration_ps=duration_ps,
            workload_config=WorkloadConfig(send_interval_ps=100 * US),
            testbed_options=TestbedOptions(seed=run_seed,
                                           with_device=with_device),
        )
        results[with_device] = experiment.run()
    for with_device, result in results.items():
        testbed = result.extras["testbed"]
        mapped = testbed.mmon.all_nodes_in_network()
        table.add(
            result,
            configuration="with injector" if with_device else "direct link",
            sent=result.messages_sent,
            received=result.messages_received,
            loss=f"{result.loss_rate:.2%}",
            msgs_per_s=f"{result.throughput_per_second:.0f}",
            routes_mapped_through=mapped,
        )
    return table
