"""Campaign result collection and tabulation."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.sim.timebase import to_ms


@dataclass
class ExperimentResult:
    """Everything one experiment run produced."""

    name: str
    params: Dict[str, Any] = field(default_factory=dict)
    duration_ps: int = 0
    messages_sent: int = 0
    messages_received: int = 0
    injections: int = 0
    host_stats: Dict[str, Dict[str, int]] = field(default_factory=dict)
    switch_stats: Dict[str, Dict[str, int]] = field(default_factory=dict)
    active_misdeliveries: int = 0
    corrupted_deliveries: int = 0
    send_failures: int = 0
    checksum_drops: int = 0
    notes: List[str] = field(default_factory=list)
    extras: Dict[str, Any] = field(default_factory=dict)

    @property
    def messages_lost(self) -> int:
        return max(0, self.messages_sent - self.messages_received)

    @property
    def loss_rate(self) -> float:
        """Fraction of sent messages not received (paper Table 4's metric)."""
        if self.messages_sent == 0:
            return 0.0
        return self.messages_lost / self.messages_sent

    @property
    def throughput_per_second(self) -> float:
        """Received messages per second of simulated time."""
        if self.duration_ps == 0:
            return 0.0
        return self.messages_received / (self.duration_ps / 1e12)

    def total_host_counter(self, counter: str) -> int:
        return sum(
            stats.get(counter, 0) for stats in self.host_stats.values()
        )

    def total_switch_counter(self, counter: str) -> int:
        return sum(
            stats.get(counter, 0) for stats in self.switch_stats.values()
        )

    def note(self, text: str) -> None:
        self.notes.append(text)

    def summary(self) -> str:
        return (
            f"{self.name}: sent={self.messages_sent} "
            f"recv={self.messages_received} "
            f"loss={self.loss_rate:.1%} inj={self.injections} "
            f"dur={to_ms(self.duration_ps):.1f}ms"
        )


class ResultTable:
    """An ordered collection of experiment results with text rendering."""

    def __init__(self, title: str,
                 columns: Optional[Sequence[str]] = None) -> None:
        self.title = title
        self.columns = list(columns) if columns else []
        self.results: List[ExperimentResult] = []
        self.rows: List[Dict[str, Any]] = []

    def add(self, result: ExperimentResult, **row: Any) -> None:
        """Record a result and its rendered row values."""
        self.results.append(result)
        self.rows.append(row)
        for key in row:
            if key not in self.columns:
                self.columns.append(key)

    def render(self) -> str:
        """Fixed-width text table."""
        if not self.rows:
            return f"{self.title}\n  <no rows>"
        widths = {
            col: max(len(col), *(len(_fmt(r.get(col, ""))) for r in self.rows))
            for col in self.columns
        }
        header = "  ".join(col.ljust(widths[col]) for col in self.columns)
        lines = [self.title, header, "-" * len(header)]
        for row in self.rows:
            lines.append(
                "  ".join(
                    _fmt(row.get(col, "")).ljust(widths[col])
                    for col in self.columns
                )
            )
        return "\n".join(lines)

    def to_markdown(self) -> str:
        """GitHub-flavoured markdown table (for EXPERIMENTS.md)."""
        if not self.rows:
            return f"### {self.title}\n\n_(no rows)_"
        head = "| " + " | ".join(self.columns) + " |"
        sep = "|" + "|".join("---" for _ in self.columns) + "|"
        body = [
            "| " + " | ".join(_fmt(r.get(c, "")) for c in self.columns) + " |"
            for r in self.rows
        ]
        return "\n".join([f"### {self.title}", "", head, sep] + body)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.3g}"
    return str(value)
