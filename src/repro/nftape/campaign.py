"""Campaign runner: a sequence of experiments with collected results.

Each experiment builds its own fresh :class:`~repro.nftape.experiment.Testbed`
(the paper's known-good-state precondition), runs to completion, and its
result row lands in a :class:`~repro.nftape.results.ResultTable`.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.nftape.classify import classify_result
from repro.nftape.experiment import Experiment
from repro.nftape.results import ExperimentResult, ResultTable
from repro.telemetry.spans import span
from repro.telemetry.state import STATE as _TELEMETRY_STATE

#: Row builder: maps a finished result to the table columns.
RowBuilder = Callable[[ExperimentResult], Dict[str, Any]]


def default_row(result: ExperimentResult) -> Dict[str, Any]:
    """The standard campaign row: the paper's Table 4 columns plus class."""
    return {
        "experiment": result.name,
        "sent": result.messages_sent,
        "received": result.messages_received,
        "loss_rate": f"{result.loss_rate:.1%}",
        "injections": result.injections,
        "class": classify_result(result).fault_class.value,
    }


class Campaign:
    """An ordered list of experiments producing one result table."""

    def __init__(
        self,
        name: str,
        row_builder: RowBuilder = default_row,
        on_progress: Optional[Callable[[str], None]] = None,
    ) -> None:
        self.name = name
        self._row_builder = row_builder
        self._on_progress = on_progress
        self.experiments: List[Experiment] = []
        self.results: List[ExperimentResult] = []

    def add(self, experiment: Experiment) -> "Campaign":
        """Append an experiment (chainable)."""
        self.experiments.append(experiment)
        return self

    def run(self) -> ResultTable:
        """Run every experiment on a fresh test bed; return the table.

        With a telemetry session active the whole run is bracketed in a
        ``campaign`` span, each experiment lands in its own nested span
        (see :meth:`Experiment.run`), and per-outcome counters
        (``campaign.experiments``, ``campaign.outcomes{fault_class=…}``)
        accumulate in the registry.
        """
        table = ResultTable(self.name)
        total = len(self.experiments)
        with span("campaign", name=self.name, experiments=total):
            for index, experiment in enumerate(self.experiments):
                if self._on_progress is not None:
                    self._on_progress(
                        f"[{index + 1}/{total}] running {experiment.name}"
                    )
                result = experiment.run()
                self.results.append(result)
                table.add(result, **self._row_builder(result))
                self._account(result)
        return table

    def _account(self, result: ExperimentResult) -> None:
        """Outcome counters for the active telemetry session, if any."""
        if not _TELEMETRY_STATE.active:
            return
        registry = _TELEMETRY_STATE.registry
        if registry is None:  # pragma: no cover - defensive
            return
        registry.counter("campaign.experiments").inc()
        fault_class = classify_result(result).fault_class.value
        registry.counter("campaign.outcomes", fault_class=fault_class).inc()
