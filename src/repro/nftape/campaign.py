"""Campaign runner: a sequence of experiments with collected results.

Each experiment builds its own fresh :class:`~repro.nftape.experiment.Testbed`
(the paper's known-good-state precondition), runs to completion, and its
result row lands in a :class:`~repro.nftape.results.ResultTable`.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.nftape.classify import classify_result
from repro.nftape.experiment import Experiment
from repro.nftape.results import ExperimentResult, ResultTable

#: Row builder: maps a finished result to the table columns.
RowBuilder = Callable[[ExperimentResult], Dict[str, Any]]


def default_row(result: ExperimentResult) -> Dict[str, Any]:
    """The standard campaign row: the paper's Table 4 columns plus class."""
    return {
        "experiment": result.name,
        "sent": result.messages_sent,
        "received": result.messages_received,
        "loss_rate": f"{result.loss_rate:.1%}",
        "injections": result.injections,
        "class": classify_result(result).fault_class.value,
    }


class Campaign:
    """An ordered list of experiments producing one result table."""

    def __init__(
        self,
        name: str,
        row_builder: RowBuilder = default_row,
        on_progress: Optional[Callable[[str], None]] = None,
    ) -> None:
        self.name = name
        self._row_builder = row_builder
        self._on_progress = on_progress
        self.experiments: List[Experiment] = []
        self.results: List[ExperimentResult] = []

    def add(self, experiment: Experiment) -> "Campaign":
        """Append an experiment (chainable)."""
        self.experiments.append(experiment)
        return self

    def run(self) -> ResultTable:
        """Run every experiment on a fresh test bed; return the table."""
        table = ResultTable(self.name)
        for experiment in self.experiments:
            if self._on_progress is not None:
                self._on_progress(f"running {experiment.name}")
            result = experiment.run()
            self.results.append(result)
            table.add(result, **self._row_builder(result))
        return table
