"""Campaign runner: a sequence of experiments with collected results.

Each experiment builds its own fresh :class:`~repro.nftape.experiment.Testbed`
(the paper's known-good-state precondition), runs to completion, and its
result row lands in a :class:`~repro.nftape.results.ResultTable`.

A campaign comes in two flavours sharing one ``run()`` code path:

* **live** — :meth:`Campaign.add` appends live ``Experiment`` objects;
  execution is always in-process (the pre-engine behaviour);
* **declarative** — :meth:`Campaign.from_spec` wraps a picklable
  :class:`~repro.runtime.spec.CampaignSpec`; execution can then be
  handed to any executor, including the sharded
  :class:`~repro.runtime.executors.PooledExecutor`, and results remain
  bit-identical regardless of worker count (per-experiment seeds are
  derived, and the executor order-merges).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.errors import CampaignError
from repro.nftape.classify import classify_result
from repro.nftape.experiment import Experiment
from repro.nftape.results import ExperimentResult, ResultTable
from repro.telemetry.spans import span
from repro.telemetry.state import STATE as _TELEMETRY_STATE

#: Row builder: maps a finished result to the table columns.
RowBuilder = Callable[[ExperimentResult], Dict[str, Any]]


def default_row(result: ExperimentResult) -> Dict[str, Any]:
    """The standard campaign row: the paper's Table 4 columns plus class."""
    return {
        "experiment": result.name,
        "sent": result.messages_sent,
        "received": result.messages_received,
        "loss_rate": f"{result.loss_rate:.1%}",
        "injections": result.injections,
        "class": classify_result(result).fault_class.value,
    }


class Campaign:
    """An ordered list of experiments producing one result table."""

    def __init__(
        self,
        name: str,
        row_builder: RowBuilder = default_row,
        on_progress: Optional[Callable[[str], None]] = None,
    ) -> None:
        self.name = name
        self._row_builder = row_builder
        self._on_progress = on_progress
        self.experiments: List[Experiment] = []
        self.results: List[ExperimentResult] = []
        #: The declarative description, when built via :meth:`from_spec`.
        self.spec: Optional[Any] = None

    @classmethod
    def from_spec(
        cls,
        spec: Any,
        row_builder: RowBuilder = default_row,
        on_progress: Optional[Callable[[str], None]] = None,
    ) -> "Campaign":
        """A declarative campaign from a
        :class:`~repro.runtime.spec.CampaignSpec`.

        The spec carries the experiment list and the base seed;
        per-experiment seeds are derived by the
        :func:`~repro.runtime.seeding.derive_seed` rule at execution
        time, inside whichever process runs each experiment.
        """
        campaign = cls(spec.name, row_builder=row_builder,
                       on_progress=on_progress)
        campaign.spec = spec
        return campaign

    def __len__(self) -> int:
        if self.spec is not None:
            return len(self.spec.experiments)
        return len(self.experiments)

    def add(self, experiment: Experiment) -> "Campaign":
        """Append a live experiment (chainable; live campaigns only)."""
        if self.spec is not None:
            raise CampaignError(
                "declarative campaigns are immutable; extend the "
                "CampaignSpec (spec.with_experiments(...)) and rebuild"
            )
        self.experiments.append(experiment)
        return self

    def run(self, executor: Optional[Any] = None) -> ResultTable:
        """Run every experiment on a fresh test bed; return the table.

        ``executor`` selects *how* experiments run —
        :class:`~repro.runtime.executors.SerialExecutor` (the default)
        runs them in-process one at a time, while
        :class:`~repro.runtime.executors.PooledExecutor` shards a
        spec-based campaign across worker processes.  Whatever the
        executor, results arrive here in experiment order, so the table
        (and the telemetry outcome counters) are identical across
        executors and worker counts.

        With a telemetry session active the whole run is bracketed in a
        ``campaign`` span, in-process experiments land in nested spans
        (see :meth:`Experiment.run`), and per-outcome counters
        (``campaign.experiments``, ``campaign.outcomes{fault_class=…}``)
        accumulate in the registry.
        """
        if executor is None:
            # Local import: repro.runtime sits above nftape in the
            # layering; importing it lazily keeps module import cheap
            # and the package graph acyclic.
            from repro.runtime.executors import SerialExecutor

            executor = SerialExecutor()
        table = ResultTable(self.name)
        total = len(self)
        with span("campaign", name=self.name, experiments=total):
            for _index, result in executor.execute(
                self, progress=self._on_progress
            ):
                self.results.append(result)
                table.add(result, **self._row_builder(result))
                self._account(result)
        return table

    def _account(self, result: ExperimentResult) -> None:
        """Outcome counters for the active telemetry session, if any."""
        if not _TELEMETRY_STATE.active:
            return
        registry = _TELEMETRY_STATE.registry
        if registry is None:  # pragma: no cover - defensive
            return
        registry.counter("campaign.experiments").inc()
        fault_class = classify_result(result).fault_class.value
        registry.counter("campaign.outcomes", fault_class=fault_class).inc()
