"""Test-bed lifecycle and single-experiment orchestration.

"To ensure the repeatability of the experiments, each campaign began
with the network in a known good state, in which all routing information
was correct and every node was correctly participating in the network"
(paper §4.2).  :class:`Testbed` enforces exactly that: every experiment
builds a fresh simulator, network, device and serial session from one
seed, settles the MCP mapping, and verifies the known-good predicate
through the :class:`~repro.myrinet.monitor.Mmon` view before any load or
fault is applied.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.capture.session import capture_experiment as _capture_experiment
from repro.capture.state import CAPTURE as _CAPTURE
from repro.core.device import FaultInjectorDevice
from repro.core.session import InjectorSession
from repro.errors import CampaignError
from repro.myrinet.monitor import Mmon
from repro.myrinet.network import (
    FabricSpec,
    MyrinetNetwork,
    build_fabric,
    build_paper_testbed,
)
from repro.nftape.results import ExperimentResult
from repro.nftape.workload import AllPairsWorkload, WorkloadConfig
from repro.sim.kernel import Simulator
from repro.sim.rng import DeterministicRng
from repro.sim.timebase import MS, US
from repro.telemetry import instrument as _telemetry
from repro.telemetry.spans import span
from repro.telemetry.state import STATE as _TELEMETRY_STATE


@dataclass
class TestbedOptions:
    """Reproducible test-bed parameters.

    (Not a pytest class, despite the name.)

    The MCP interval defaults to 100 ms rather than the paper's 1 s so
    that scaled-duration campaigns still see remapping; paper-scale runs
    pass ``map_interval_ps=SECOND`` explicitly.
    """

    __test__ = False  # keep pytest from collecting this

    seed: int = 0
    instrumented_host: str = "pc"
    with_device: bool = True
    char_period_ps: int = 12_500
    map_interval_ps: int = 100 * MS
    mcp_reply_timeout_ps: int = 300 * US
    mcp_initial_delay_ps: int = 1 * MS
    settle_ps: int = 5 * MS
    pipeline_depth: int = 20
    pipeline: Optional[str] = None
    device_kwargs: Dict[str, Any] = field(default_factory=dict)
    host_kwargs: Dict[str, Any] = field(default_factory=dict)
    switch_kwargs: Dict[str, Any] = field(default_factory=dict)
    long_timeout_periods: Optional[int] = None
    #: ``None`` builds the paper's Figure 10 LAN; a :class:`FabricSpec`
    #: builds that multi-switch fabric instead (instrumented_host must
    #: then name one of the fabric's hosts).
    topology: Optional[FabricSpec] = None


class Testbed:
    """A freshly built, settled, verified instance of the Figure 10 LAN."""

    __test__ = False  # keep pytest from collecting this

    def __init__(self, options: Optional[TestbedOptions] = None) -> None:
        self.options = options or TestbedOptions()
        self.sim = Simulator()
        self.rng = DeterministicRng(self.options.seed)
        self.device: Optional[FaultInjectorDevice] = None
        self.session: Optional[InjectorSession] = None
        if self.options.with_device:
            self.device = FaultInjectorDevice(
                self.sim,
                pipeline_depth=self.options.pipeline_depth,
                pipeline=self.options.pipeline,
                **self.options.device_kwargs,
            )
            self.session = InjectorSession(self.sim, self.device)
        host_kwargs = dict(self.options.host_kwargs)
        switch_kwargs = dict(self.options.switch_kwargs)
        if self.options.long_timeout_periods is not None:
            host_kwargs.setdefault(
                "long_timeout_periods", self.options.long_timeout_periods
            )
            switch_kwargs.setdefault(
                "long_timeout_periods", self.options.long_timeout_periods
            )
        build_kwargs = dict(
            device=self.device,
            instrumented_host=self.options.instrumented_host,
            rng=self.rng.fork("network"),
            host_kwargs=host_kwargs,
            switch_kwargs=switch_kwargs,
            char_period_ps=self.options.char_period_ps,
            map_interval_ps=self.options.map_interval_ps,
            mcp_reply_timeout_ps=self.options.mcp_reply_timeout_ps,
            mcp_initial_delay_ps=self.options.mcp_initial_delay_ps,
        )
        if self.options.topology is not None:
            self.network: MyrinetNetwork = build_fabric(
                self.sim, self.options.topology, **build_kwargs
            )
        else:
            self.network = build_paper_testbed(self.sim, **build_kwargs)
        self.mmon = Mmon(self.network)

    def settle(self, verify: bool = True) -> None:
        """Run until the network reaches the known good state."""
        self.network.settle(self.options.settle_ps)
        if not verify:
            return
        for _attempt in range(5):
            if self.mmon.all_nodes_in_network():
                return
            self.sim.run_for(self.options.map_interval_ps)
        raise CampaignError(
            "test bed failed to reach the known good state: "
            + (self.mmon.render())
        )

    def drain_session(self, step_ps: int = 1 * MS, limit_ps: int = 200 * MS) -> None:
        """Run until the serial session has no commands in flight."""
        if self.session is None:
            return
        waited = 0
        while not self.session.idle and waited < limit_ps:
            self.sim.run_for(step_ps)
            waited += step_ps
        if not self.session.idle:
            raise CampaignError("serial session did not drain in time")

    def total_injections(self) -> int:
        if self.device is None:
            return 0
        return sum(
            self.device.injector(d).injections for d in ("R", "L")
        )


class Experiment:
    """One fault-injection experiment: fresh test bed, load, fault, result."""

    def __init__(
        self,
        name: str,
        duration_ps: int,
        plan: Optional[object] = None,
        workload_config: Optional[WorkloadConfig] = None,
        testbed_options: Optional[TestbedOptions] = None,
        drain_ps: int = 5 * MS,
        params: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.name = name
        self.duration_ps = duration_ps
        self.plan = plan
        self.workload_config = workload_config or WorkloadConfig()
        self.testbed_options = testbed_options or TestbedOptions()
        self.drain_ps = drain_ps
        self.params = params or {}

    def run(self) -> ExperimentResult:
        """Run the experiment on a fresh test bed.

        Phases are bracketed in telemetry spans (``experiment`` nesting
        ``settle``/``injection``/``workload``/``drain``); each span
        records both wall time and sim time.  With no telemetry session
        active every ``span`` call is a shared no-op.
        """
        with span("experiment", name=self.name,
                  duration_ps=self.duration_ps):
            testbed = Testbed(self.testbed_options)
            with span("settle", sim=testbed.sim,
                      seed=self.testbed_options.seed):
                testbed.settle()
            if self.plan is not None:
                with span("injection", sim=testbed.sim, phase="install"):
                    self.plan.install(testbed)
                    testbed.drain_session()
            workload = AllPairsWorkload(
                testbed.network,
                self.workload_config,
                rng=testbed.rng.fork("workload"),
            )
            with span("workload", sim=testbed.sim):
                workload.start()
                if self.plan is not None:
                    self.plan.start(testbed)
                testbed.sim.run_for(self.duration_ps)
                workload.stop()
                if self.plan is not None:
                    self.plan.stop(testbed)
            with span("drain", sim=testbed.sim):
                testbed.sim.run_for(self.drain_ps)
            result = self._collect(testbed, workload)
            if _CAPTURE.active:
                # Still inside the experiment span: the marker records
                # this experiment's span id, SDRAM windows, and verdict.
                _capture_experiment(
                    testbed, result, seed=self.testbed_options.seed
                )
            if _TELEMETRY_STATE.active:
                self._publish_telemetry(testbed, result)
            return result

    def _publish_telemetry(self, testbed: Testbed,
                           result: ExperimentResult) -> None:
        """Sample per-experiment counters into the active registry."""
        registry = _TELEMETRY_STATE.registry
        if registry is None:  # pragma: no cover - defensive
            return
        _telemetry.sample_simulator(testbed.sim)
        if testbed.device is not None:
            # Fresh device per experiment: accumulate totals so the
            # campaign-level series aggregate across experiments.
            _telemetry.sample_device(testbed.device, accumulate=True)
        registry.counter("workload.messages_sent").inc(result.messages_sent)
        registry.counter("workload.messages_received").inc(
            result.messages_received
        )
        registry.counter("workload.misdeliveries").inc(
            result.active_misdeliveries
        )
        registry.counter("workload.corrupted_deliveries").inc(
            result.corrupted_deliveries
        )
        registry.counter("workload.send_failures").inc(result.send_failures)
        registry.counter("workload.checksum_drops").inc(result.checksum_drops)

    def _collect(self, testbed: Testbed,
                 workload: AllPairsWorkload) -> ExperimentResult:
        result = ExperimentResult(
            name=self.name,
            params=dict(self.params),
            duration_ps=self.duration_ps,
            messages_sent=workload.messages_sent,
            messages_received=workload.messages_received,
            injections=testbed.total_injections(),
            active_misdeliveries=workload.misdeliveries,
            corrupted_deliveries=workload.corrupted_deliveries,
            send_failures=workload.send_failures,
            checksum_drops=workload.checksum_drops,
        )
        for name, host in testbed.network.hosts.items():
            result.host_stats[name] = host.interface.stats
        for name, switch in testbed.network.switches.items():
            result.switch_stats[name] = switch.stats
        result.extras["testbed"] = testbed
        result.extras["workload"] = workload
        return result
