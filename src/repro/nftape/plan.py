"""Fault plans: what to inject, and how injections are paced.

A :class:`FaultPlan` uploads an injector configuration over the serial
link and — for once-mode triggers — periodically re-arms the trigger,
modelling how NFTAPE paced the paper's campaigns: arm, let the fault
fire, optionally read back state over "the slower serial line" (§3.3),
and arm again.  An :class:`InjectNowPlan` exercises the forced-injection
input on a schedule instead of waiting for a pattern match.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import CampaignError
from repro.hw.registers import InjectorConfig, MatchMode
from repro.sim.kernel import PeriodicTask
from repro.sim.timebase import MS


@dataclass
class FaultPlan:
    """Upload a configuration; optionally keep re-arming a once trigger.

    ``direction`` is ``"R"``, ``"L"``, or ``"RL"`` — the device is
    bi-directional and a campaign targeting a symbol class usually
    corrupts it wherever it appears on the link.
    """

    direction: str
    config: InjectorConfig
    rearm_interval_ps: Optional[int] = None
    use_serial: bool = True
    _rearm_task: Optional[PeriodicTask] = field(default=None, repr=False)

    @property
    def directions(self) -> str:
        return self.direction

    def install(self, testbed) -> None:
        """Upload the configuration (serial by default)."""
        for direction in self.directions:
            if self.use_serial:
                if testbed.session is None:
                    raise CampaignError("test bed has no serial session")
                testbed.session.configure(direction, self.config)
            else:
                if testbed.device is None:
                    raise CampaignError("test bed has no device")
                testbed.device.configure(direction, self.config)

    def start(self, testbed) -> None:
        """Begin the re-arm schedule, if any."""
        if self.rearm_interval_ps is None:
            return
        if self.config.match_mode is not MatchMode.ONCE:
            raise CampaignError("re-arming only makes sense in once mode")

        def _rearm() -> None:
            for direction in self.directions:
                if self.use_serial and testbed.session is not None:
                    testbed.session.arm(direction, MatchMode.ONCE)
                elif testbed.device is not None:
                    testbed.device.injector(direction).set_match_mode(
                        MatchMode.ONCE
                    )

        self._rearm_task = testbed.sim.every(
            self.rearm_interval_ps, _rearm, label="fault-rearm"
        )

    def stop(self, testbed) -> None:
        """Stop re-arming and disarm the trigger."""
        if self._rearm_task is not None:
            self._rearm_task.stop()
            self._rearm_task = None
        if testbed.device is not None:
            for direction in self.directions:
                testbed.device.injector(direction).set_match_mode(
                    MatchMode.OFF
                )


@dataclass
class DutyCyclePlan:
    """Alternate the trigger between armed (ON) and disarmed windows.

    NFTAPE paced several of the paper's campaigns this way over the
    serial link: arm the match-everything trigger for a window, disarm,
    observe, repeat.  The duty cycle is the knob that sets the injected
    fault density for Table 4 style runs.
    """

    direction: str
    config: InjectorConfig
    on_ps: int = 1 * MS
    off_ps: int = 3 * MS
    use_serial: bool = True
    _task: Optional[object] = field(default=None, repr=False)
    _armed: bool = field(default=False, repr=False)

    @property
    def directions(self) -> str:
        return self.direction

    def install(self, testbed) -> None:
        config = self.config.copy(match_mode=MatchMode.OFF)
        for direction in self.directions:
            if self.use_serial:
                if testbed.session is None:
                    raise CampaignError("test bed has no serial session")
                testbed.session.configure(direction, config)
            else:
                if testbed.device is None:
                    raise CampaignError("test bed has no device")
                testbed.device.configure(direction, config)

    def start(self, testbed) -> None:
        self._set_armed(testbed, True)
        self._schedule_toggle(testbed)

    def stop(self, testbed) -> None:
        if self._task is not None:
            self._task.cancel()
            self._task = None
        self._set_armed(testbed, False)

    def _schedule_toggle(self, testbed) -> None:
        delay = self.on_ps if self._armed else self.off_ps
        self._task = testbed.sim.schedule(
            delay, lambda: self._toggle(testbed), label="duty-toggle"
        )

    def _toggle(self, testbed) -> None:
        self._set_armed(testbed, not self._armed)
        self._schedule_toggle(testbed)

    def _set_armed(self, testbed, armed: bool) -> None:
        self._armed = armed
        mode = MatchMode.ON if armed else MatchMode.OFF
        for direction in self.directions:
            if self.use_serial and testbed.session is not None:
                testbed.session.arm(direction, mode)
            elif testbed.device is not None:
                testbed.device.injector(direction).set_match_mode(mode)


@dataclass
class InjectNowPlan:
    """Periodically pulse the Inject-Now input (forced injections)."""

    direction: str
    config: InjectorConfig
    interval_ps: int = 1 * MS
    use_serial: bool = True
    _task: Optional[PeriodicTask] = field(default=None, repr=False)

    def install(self, testbed) -> None:
        if self.use_serial:
            if testbed.session is None:
                raise CampaignError("test bed has no serial session")
            testbed.session.configure(self.direction, self.config)
        elif testbed.device is not None:
            testbed.device.configure(self.direction, self.config)

    def start(self, testbed) -> None:
        def _pulse() -> None:
            if self.use_serial and testbed.session is not None:
                testbed.session.inject_now(self.direction)
            elif testbed.device is not None:
                testbed.device.injector(self.direction).inject_now()

        self._task = testbed.sim.every(self.interval_ps, _pulse,
                                       label="inject-now")

    def stop(self, testbed) -> None:
        if self._task is not None:
            self._task.stop()
            self._task = None
        if testbed.device is not None:
            testbed.device.injector(self.direction).set_match_mode(
                MatchMode.OFF
            )


@dataclass
class CompositePlan:
    """Several plans running simultaneously — compound failures.

    The constituent plans are installed, started, and stopped together;
    each keeps its own pacing (re-arm schedules, duty cycles, pulse
    timers).  Two plans must not drive the same injector direction —
    the later ``install`` would silently overwrite the earlier
    configuration, so that combination is rejected up front.
    """

    plans: tuple

    def __post_init__(self) -> None:
        self.plans = tuple(self.plans)
        if not self.plans:
            raise CampaignError("composite plan needs at least one plan")
        seen: set = set()
        for plan in self.plans:
            for direction in getattr(plan, "directions",
                                     getattr(plan, "direction", "")):
                if direction in seen:
                    raise CampaignError(
                        "composite plan drives injector direction "
                        f"{direction!r} twice"
                    )
                seen.add(direction)

    def install(self, testbed) -> None:
        for plan in self.plans:
            plan.install(testbed)

    def start(self, testbed) -> None:
        for plan in self.plans:
            plan.start(testbed)

    def stop(self, testbed) -> None:
        for plan in self.plans:
            plan.stop(testbed)
