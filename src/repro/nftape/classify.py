"""Active/passive fault classification (paper §4.4).

"We consider a fault *active* if it passes incorrect data or results to
a higher system level. ... we consider a fault to be *passive* if it
puts the network into an unexpected and incorrect state, allowing the
affected nodes to make bad decisions based on erroneous information."

The classifier inspects an :class:`ExperimentResult` for the evidence
each class leaves behind.  The paper's headline finding — "the faults
observed in our injection campaigns were all passive.  Data were dropped
and lost, but not incorrectly passed on" — is asserted by the §4.4
benchmark using this classifier.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import List

from repro.nftape.results import ExperimentResult


class FaultClass(Enum):
    """Outcome classes of §4.4."""

    NONE = "none"
    PASSIVE = "passive"
    ACTIVE = "active"


@dataclass
class Classification:
    """A fault class plus the evidence that produced it."""

    fault_class: FaultClass
    evidence: List[str] = field(default_factory=list)

    def __str__(self) -> str:
        reasons = "; ".join(self.evidence) if self.evidence else "no effects"
        return f"{self.fault_class.value} ({reasons})"


#: Host counters whose increase is passive-fault evidence.
_PASSIVE_HOST_COUNTERS = (
    "crc_errors",
    "consume_errors",
    "misaddressed_drops",
    "unknown_type_drops",
    "no_route_drops",
    "tx_timeout_drops",
    "truncated_frames",
    "oversize_frames",
)

#: Switch counters whose increase is passive-fault evidence.
_PASSIVE_SWITCH_COUNTERS = (
    "routing_errors",
    "long_timeouts",
    "wait_timeouts",
    "symbols_dropped",
)


def classify_result(result: ExperimentResult) -> Classification:
    """Classify one experiment's outcome."""
    evidence_active: List[str] = []
    evidence_passive: List[str] = []

    if result.active_misdeliveries:
        evidence_active.append(
            f"{result.active_misdeliveries} messages delivered to the "
            f"wrong node"
        )
    if result.corrupted_deliveries:
        evidence_active.append(
            f"{result.corrupted_deliveries} corrupted payloads passed to "
            f"the application"
        )

    if result.messages_lost:
        evidence_passive.append(f"{result.messages_lost} messages lost")
    if result.checksum_drops:
        evidence_passive.append(
            f"{result.checksum_drops} UDP checksum drops"
        )
    if result.send_failures:
        evidence_passive.append(f"{result.send_failures} blocked sends")
    for counter in _PASSIVE_HOST_COUNTERS:
        total = result.total_host_counter(counter)
        if total:
            evidence_passive.append(f"{counter}={total}")
    for counter in _PASSIVE_SWITCH_COUNTERS:
        total = result.total_switch_counter(counter)
        if total:
            evidence_passive.append(f"{counter}={total}")

    if evidence_active:
        return Classification(FaultClass.ACTIVE,
                              evidence_active + evidence_passive)
    if evidence_passive:
        return Classification(FaultClass.PASSIVE, evidence_passive)
    return Classification(FaultClass.NONE)
