"""Campaign report generation.

Renders collections of :class:`~repro.nftape.results.ResultTable` into a
single text or markdown report (the format EXPERIMENTS.md records), and
provides the paper-vs-measured comparison helpers the benchmarks use.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Union

from repro.nftape.classify import classify_result
from repro.nftape.results import ExperimentResult, ResultTable


@dataclass
class Comparison:
    """One paper-vs-measured quantity."""

    name: str
    paper: float
    measured: float
    tolerance_factor: float = 2.0

    @property
    def ratio(self) -> float:
        """measured / paper (infinity when the paper value is zero)."""
        if self.paper == 0:
            return float("inf") if self.measured else 1.0
        return self.measured / self.paper

    @property
    def within_band(self) -> bool:
        """True if measured is within ``tolerance_factor`` x of paper."""
        if self.paper == 0:
            return self.measured == 0
        return (1 / self.tolerance_factor) <= self.ratio <= \
            self.tolerance_factor

    def render(self) -> str:
        flag = "OK " if self.within_band else "DEV"
        return (
            f"[{flag}] {self.name}: paper={self.paper:g} "
            f"measured={self.measured:g} (x{self.ratio:.2f})"
        )


class CampaignReport:
    """Accumulates tables, comparisons, and notes into one document."""

    def __init__(self, title: str) -> None:
        self.title = title
        self._sections: List[tuple] = []

    def add_table(self, table: ResultTable,
                  note: Optional[str] = None) -> None:
        self._sections.append(("table", table, note))

    def add_comparisons(self, heading: str,
                        comparisons: Sequence[Comparison]) -> None:
        self._sections.append(("comparisons", heading, list(comparisons)))

    def add_note(self, text: str) -> None:
        self._sections.append(("note", text, None))

    def add_classifications(self, heading: str,
                            results: Iterable[ExperimentResult]) -> None:
        self._sections.append(("classify", heading, list(results)))

    # ------------------------------------------------------------------

    def render_text(self) -> str:
        lines = [self.title, "=" * len(self.title), ""]
        for kind, first, second in self._sections:
            if kind == "table":
                lines.append(first.render())
                if second:
                    lines.append(f"note: {second}")
            elif kind == "comparisons":
                lines.append(first)
                for comparison in second:
                    lines.append("  " + comparison.render())
            elif kind == "note":
                lines.append(first)
            elif kind == "classify":
                lines.append(first)
                for result in second:
                    lines.append(
                        f"  {result.name:<20} {classify_result(result)}"
                    )
            lines.append("")
        return "\n".join(lines).rstrip() + "\n"

    def render_markdown(self) -> str:
        lines = [f"# {self.title}", ""]
        for kind, first, second in self._sections:
            if kind == "table":
                lines.append(first.to_markdown())
                if second:
                    lines.append(f"\n_{second}_")
            elif kind == "comparisons":
                lines.append(f"### {first}")
                lines.append("")
                lines.append("| quantity | paper | measured | ratio | in band |")
                lines.append("|---|---|---|---|---|")
                for c in second:
                    lines.append(
                        f"| {c.name} | {c.paper:g} | {c.measured:g} | "
                        f"x{c.ratio:.2f} | {'yes' if c.within_band else 'NO'} |"
                    )
            elif kind == "note":
                lines.append(first)
            elif kind == "classify":
                lines.append(f"### {first}")
                lines.append("")
                for result in second:
                    lines.append(f"* `{result.name}` — "
                                 f"{classify_result(result)}")
            lines.append("")
        return "\n".join(lines).rstrip() + "\n"

    def write(self, path: Union[str, pathlib.Path],
              markdown: Optional[bool] = None) -> pathlib.Path:
        """Write the report; format inferred from the extension."""
        target = pathlib.Path(path)
        if markdown is None:
            markdown = target.suffix.lower() in (".md", ".markdown")
        text = self.render_markdown() if markdown else self.render_text()
        target.write_text(text)
        return target
