"""NFTAPE-style campaign framework (paper §1, [Sto00]).

"The system-level impact of faults can be evaluated in an automated
fashion employing the proposed fault injection hardware and an external
management and control framework, such as ... NFTAPE."

This package is that framework: a :class:`Testbed` that stands up the
paper's Figure 10 network in a known good state, :class:`FaultPlan`
descriptions with once-mode re-arming over the serial link,
:class:`Experiment`/:class:`Campaign` runners that collect
:class:`ExperimentResult` rows, the §4.4 active/passive fault
classifier, and table renderers for paper-versus-measured reporting.
"""

from repro.nftape.campaign import Campaign
from repro.nftape.classify import FaultClass, classify_result
from repro.nftape.experiment import Experiment, Testbed
from repro.nftape.plan import DutyCyclePlan, FaultPlan, InjectNowPlan
from repro.nftape.random_faults import RandomBitFlipPlan
from repro.nftape.report import CampaignReport, Comparison
from repro.nftape.results import ExperimentResult, ResultTable
from repro.nftape.workload import AllPairsWorkload, WorkloadConfig

__all__ = [
    "Campaign",
    "Experiment",
    "Testbed",
    "FaultPlan",
    "DutyCyclePlan",
    "InjectNowPlan",
    "RandomBitFlipPlan",
    "CampaignReport",
    "Comparison",
    "ExperimentResult",
    "ResultTable",
    "FaultClass",
    "classify_result",
    "AllPairsWorkload",
    "WorkloadConfig",
]
