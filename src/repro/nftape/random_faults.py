"""Random fault injection (paper §3.1).

"Random faults causing bit flip errors for system availability and fault
tolerance characterization under SEU conditions" — the first fault class
the injector supports.  :class:`RandomBitFlipPlan` models an SEU
campaign: at exponentially distributed instants it reprograms the
corrupt-data vector with a fresh random single-bit toggle and pulses the
Inject-Now input, flipping one random bit of whatever 32-bit segment
happens to be in the FIFO at that moment.

With the serial path enabled, each reprogram pays the real RS-232 cost,
which bounds the achievable SEU rate just as it did for the paper's
campaigns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import CampaignError
from repro.hw.registers import CorruptMode, InjectorConfig, MatchMode
from repro.sim.kernel import Event
from repro.sim.rng import DeterministicRng
from repro.sim.timebase import MS


@dataclass
class RandomBitFlipPlan:
    """Exponentially-paced random single-bit flips on the data stream."""

    direction: str = "R"
    mean_interval_ps: int = 2 * MS
    use_serial: bool = False
    seed: int = 0
    flip_control_bit_probability: float = 0.0
    _event: Optional[Event] = field(default=None, repr=False)
    _rng: Optional[DeterministicRng] = field(default=None, repr=False)
    _stopped: bool = field(default=False, repr=False)
    pulses: int = field(default=0)

    @property
    def directions(self) -> str:
        return self.direction

    def _config_for(self, bit: int, flip_ctl: bool) -> InjectorConfig:
        return InjectorConfig(
            match_mode=MatchMode.OFF,          # inject-now only
            corrupt_mode=CorruptMode.TOGGLE,
            corrupt_data=0 if flip_ctl else (1 << bit),
            corrupt_ctl=0x1 if flip_ctl else 0x0,
            corrupt_ctl_mask=0x1 if flip_ctl else 0x0,
        )

    def install(self, testbed) -> None:
        if testbed.device is None:
            raise CampaignError("test bed has no device")
        self._rng = DeterministicRng(self.seed).fork("seu")
        for direction in self.directions:
            testbed.device.configure(direction, self._config_for(0, False))

    def start(self, testbed) -> None:
        self._stopped = False
        self._schedule_next(testbed)

    def stop(self, testbed) -> None:
        self._stopped = True
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _schedule_next(self, testbed) -> None:
        assert self._rng is not None
        delay = max(1, int(self._rng.expovariate(
            1.0 / self.mean_interval_ps)))
        self._event = testbed.sim.schedule(
            delay, lambda: self._pulse(testbed), label="seu-pulse"
        )

    def _pulse(self, testbed) -> None:
        if self._stopped or testbed.device is None:
            return
        assert self._rng is not None
        bit = self._rng.bit_index(32)
        flip_ctl = self._rng.random() < self.flip_control_bit_probability
        for direction in self.directions:
            config = self._config_for(bit, flip_ctl)
            if self.use_serial and testbed.session is not None:
                testbed.session.configure(direction, config)
                testbed.session.inject_now(direction)
            else:
                testbed.device.configure(direction, config)
                testbed.device.injector(direction).inject_now()
        self.pulses += 1
        self._schedule_next(testbed)
