"""Host-side control session over the RS-232 link (paper §3.3).

"In a typical fault injection campaign, the user uploads a series of
commands to the Command Decoder via a standard serial interface."  The
:class:`InjectorSession` is that external system: it owns endpoint 'a' of
the device's serial line, serializes commands (one in flight at a time,
as a real terminal program would), matches responses to commands, and
offers typed helpers for the full register file.

Because the line runs at a real baud rate, uploading a configuration
takes on the order of ten milliseconds and re-arming a ``once``-mode
trigger takes about a millisecond — the pacing that shapes once-mode
campaigns (see DESIGN.md ablations).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.errors import DeviceError
from repro.hw.registers import CorruptMode, InjectorConfig, MatchMode
from repro.core.device import FaultInjectorDevice
from repro.sim.kernel import Simulator


class SessionError(DeviceError):
    """Raised for malformed responses or protocol misuse."""


_CORRUPT_MODE_TOKEN = {
    CorruptMode.TOGGLE: "TGL",
    CorruptMode.REPLACE: "RPL",
}


def config_commands(direction: str, config: InjectorConfig) -> List[str]:
    """The command sequence that loads ``config`` into one injector.

    The match mode is set last so a partially-written configuration can
    never trigger (the decoder disarms first).
    """
    d = direction
    return [
        f"MM {d} OFF",
        f"CD {d} {config.compare_data:08x}",
        f"CM {d} {config.compare_mask:08x}",
        f"CC {d} {config.compare_ctl:x}",
        f"CX {d} {config.compare_ctl_mask:x}",
        f"RD {d} {config.corrupt_data:08x}",
        f"RM {d} {config.corrupt_mask:08x}",
        f"RC {d} {config.corrupt_ctl:x}",
        f"RX {d} {config.corrupt_ctl_mask:x}",
        f"OM {d} {_CORRUPT_MODE_TOKEN[config.corrupt_mode]}",
        f"CF {d} {'1' if config.crc_fixup else '0'}",
        f"MM {d} {config.match_mode.value.upper()}",
    ]


class InjectorSession:
    """The management host's end of the device's serial link."""

    def __init__(self, sim: Simulator, device: FaultInjectorDevice) -> None:
        self._sim = sim
        self._device = device
        self._line = device.serial_line
        self._line.attach("a", self._on_byte)
        self._rx: List[str] = []
        self._queue: Deque[Tuple[str, Optional[Callable[[str], None]]]] = deque()
        self._inflight: Optional[Tuple[str, Optional[Callable[[str], None]]]] = None
        self.responses: List[Tuple[str, str]] = []
        self.commands_sent = 0
        self.errors_seen = 0

    # ------------------------------------------------------------------
    # raw command plumbing
    # ------------------------------------------------------------------

    def send(self, command: str,
             on_response: Optional[Callable[[str], None]] = None) -> None:
        """Queue one command; ``on_response`` receives the response line."""
        if "\n" in command:
            raise SessionError("commands must be single lines")
        self._queue.append((command, on_response))
        self._dispatch()

    def _dispatch(self) -> None:
        if self._inflight is not None or not self._queue:
            return
        self._inflight = self._queue.popleft()
        command = self._inflight[0]
        self.commands_sent += 1
        self._line.send("a", (command + "\n").encode("ascii"))

    def _on_byte(self, byte: int) -> None:
        char = chr(byte & 0x7F)
        if char != "\n":
            self._rx.append(char)
            return
        line = "".join(self._rx)
        self._rx.clear()
        if self._inflight is None:
            # Unsolicited output; keep it for diagnostics.
            self.responses.append(("<unsolicited>", line))
            return
        command, callback = self._inflight
        self._inflight = None
        self.responses.append((command, line))
        if line.startswith("ER"):
            self.errors_seen += 1
        if callback is not None:
            callback(line)
        self._dispatch()

    @property
    def idle(self) -> bool:
        """True when no command is queued or awaiting a response."""
        return self._inflight is None and not self._queue

    def last_response(self) -> Optional[str]:
        return self.responses[-1][1] if self.responses else None

    # ------------------------------------------------------------------
    # typed helpers
    # ------------------------------------------------------------------

    def identify(self, on_done: Optional[Callable[[str], None]] = None) -> None:
        """ID command."""
        self.send("ID", on_done)

    def reset_device(self, on_done: Optional[Callable[[str], None]] = None) -> None:
        """RS command."""
        self.send("RS", on_done)

    def configure(
        self,
        direction: str,
        config: InjectorConfig,
        on_done: Optional[Callable[[str], None]] = None,
    ) -> None:
        """Upload a full register file over the serial link."""
        commands = config_commands(direction, config)
        for command in commands[:-1]:
            self.send(command)
        self.send(commands[-1], on_done)

    def arm(self, direction: str, mode: MatchMode = MatchMode.ONCE,
            on_done: Optional[Callable[[str], None]] = None) -> None:
        """(Re-)arm the trigger; in once mode this re-enables it after a
        firing, which is how campaigns pace repeated single injections."""
        self.send(f"MM {direction} {mode.value.upper()}", on_done)

    def disarm(self, direction: str,
               on_done: Optional[Callable[[str], None]] = None) -> None:
        self.send(f"MM {direction} OFF", on_done)

    def inject_now(self, direction: str,
                   on_done: Optional[Callable[[str], None]] = None) -> None:
        """Force one injection on the next even clock cycle."""
        self.send(f"IN {direction}", on_done)

    def select_pipeline(self, pipeline: str,
                        on_done: Optional[Callable[[str], None]] = None
                        ) -> None:
        """PL command: switch the device between the scalar reference
        data path and the batched fast path (see docs/fastpath.md).

        The switch is a *serial-command epoch*: it takes effect between
        bursts, and the fast path's compare/FIFO state is shared with
        the scalar path, so mid-campaign switches are symbol-exact.
        """
        self.send(f"PL {pipeline.upper()}", on_done)

    def read_stats(
        self,
        direction: str,
        on_done: Callable[[Dict[str, int]], None],
    ) -> None:
        """ST command, parsed into a counter dict."""

        def _parse(line: str) -> None:
            if not line.startswith("OK"):
                raise SessionError(f"ST failed: {line}")
            values: Dict[str, int] = {}
            for token in line.split()[1:]:
                key, _, raw = token.partition("=")
                values[key] = int(raw)
            on_done(values)

        self.send(f"ST {direction}", _parse)

    def read_monitor(
        self,
        direction: str,
        on_done: Callable[[Dict[str, int]], None],
    ) -> None:
        """MO command, parsed into a capture-summary dict."""

        def _parse(line: str) -> None:
            if not line.startswith("OK"):
                raise SessionError(f"MO failed: {line}")
            values: Dict[str, int] = {}
            for token in line.split()[1:]:
                key, _, raw = token.partition("=")
                values[key] = int(raw)
            on_done(values)

        self.send(f"MO {direction}", _parse)
