"""Second-generation media adapters (paper footnote 1).

"We are currently working on a second generation device that abstracts
the interface logic away from the injector logic and allows much more
flexibility in this regard."

This module is that second generation: a :class:`MediaAdapter` turns one
medium's line alphabet into the injector's 9-bit character alphabet and
back, and :class:`SecondGenerationDevice` composes an adapter with the
medium-independent injector/fix-up/monitoring core.  Adding a network
means writing an adapter — no injector changes, exactly the flexibility
the footnote promises.

Two adapters ship:

* :class:`MyrinetAdapter` — the Myrinet line alphabet *is* the injector
  alphabet (the MyriPHY delivers 9-bit symbols), so this adapter is the
  identity plus the Myrinet CRC-8 fix-up stage;
* :class:`FibreChannelAdapter` — 8b/10b decode/encode with running
  disparity per direction plus the FC CRC-32 fix-up (the FCPHY logic).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Protocol

from repro.errors import ConfigurationError, EncodingError
from repro.fc.crc32 import crc32
from repro.fc.encoding import Decoder8b10b, Encoder8b10b
from repro.fc.ordered_sets import classify_word, is_eof, is_sof
from repro.core.crcfix import CrcFixupStage
from repro.core.device import DIRECTIONS
from repro.hw.injector import DEFAULT_PIPELINE_DEPTH, FifoInjector
from repro.hw.registers import InjectorConfig
from repro.myrinet.link import Channel, Link
from repro.myrinet.symbols import Symbol, control_symbol, data_symbol
from repro.sim.kernel import Simulator


class MediaAdapter(Protocol):
    """Interface logic for one medium (one instance per device)."""

    #: Human-readable medium name.
    medium: str

    def decode(self, direction: str, line_items: List) -> List[Symbol]:
        """Line alphabet -> injector characters (PHY receive)."""

    def encode(self, direction: str, symbols: List[Symbol]) -> List:
        """Injector characters -> line alphabet (PHY transmit)."""

    def fixup(self, direction: str, symbols: List[Symbol], dirty: bool,
              enabled: bool) -> List[Symbol]:
        """Medium-specific CRC recomputation for dirtied frames."""


class MyrinetAdapter:
    """Identity PHY plus the Myrinet CRC-8 fix-up."""

    medium = "myrinet"

    def __init__(self) -> None:
        self._fixup: Dict[str, CrcFixupStage] = {
            d: CrcFixupStage() for d in DIRECTIONS
        }

    def decode(self, direction: str, line_items: List) -> List[Symbol]:
        return line_items

    def encode(self, direction: str, symbols: List[Symbol]) -> List:
        return symbols

    def fixup(self, direction: str, symbols: List[Symbol], dirty: bool,
              enabled: bool) -> List[Symbol]:
        stage = self._fixup[direction]
        if not enabled and stage.idle:
            return symbols
        return stage.feed(symbols, enabled, dirty)


class _FcDirection:
    def __init__(self) -> None:
        self.decoder = Decoder8b10b()
        self.encoder = Encoder8b10b()
        self.word: List[Symbol] = []
        self.in_frame = False
        self.content: List[Symbol] = []
        self.frame_dirty = False


#: An intentionally invalid 10-bit group emitted when an injection
#: produces an unencodable character.
FC_INVALID_CODE_GROUP = 0b1111110000

_K28_5_SYMBOL = control_symbol(0xBC)


class FibreChannelAdapter:
    """8b/10b PHY pair plus the FC CRC-32 fix-up."""

    medium = "fibre-channel"

    def __init__(self) -> None:
        self._dirs: Dict[str, _FcDirection] = {
            d: _FcDirection() for d in DIRECTIONS
        }
        self.encode_failures = 0
        self.frames_crc_fixed = 0

    def decode(self, direction: str, line_items: List) -> List[Symbol]:
        state = self._dirs[direction]
        symbols: List[Symbol] = []
        for code in line_items:
            decoded = state.decoder.decode(code)
            if decoded is None:
                continue
            value, is_k = decoded
            symbols.append(
                control_symbol(value) if is_k else data_symbol(value)
            )
        return symbols

    def encode(self, direction: str, symbols: List[Symbol]) -> List:
        state = self._dirs[direction]
        codes: List[int] = []
        for symbol in symbols:
            try:
                codes.append(
                    state.encoder.encode(symbol.value, not symbol.is_data)
                )
            except EncodingError:
                self.encode_failures += 1
                codes.append(FC_INVALID_CODE_GROUP)
        return codes

    def fixup(self, direction: str, symbols: List[Symbol], dirty: bool,
              enabled: bool) -> List[Symbol]:
        state = self._dirs[direction]
        if dirty:
            state.frame_dirty = True
        if not enabled and not state.in_frame and not state.word:
            return symbols
        out: List[Symbol] = []
        for symbol in symbols:
            if state.word:
                state.word.append(symbol)
                if len(state.word) == 4:
                    self._finish_word(state, out, enabled)
                continue
            if symbol == _K28_5_SYMBOL:
                state.word = [symbol]
                continue
            if state.in_frame:
                state.content.append(symbol)
            else:
                out.append(symbol)
        return out

    def _finish_word(self, state: _FcDirection, out: List[Symbol],
                     enabled: bool) -> None:
        word = state.word
        state.word = []
        characters = tuple((s.value, not s.is_data) for s in word)
        ordered_set = classify_word(characters)
        if ordered_set is not None and is_sof(ordered_set):
            out.extend(word)
            state.in_frame = True
            state.content = []
            return
        if ordered_set is not None and is_eof(ordered_set) and state.in_frame:
            content = state.content
            state.in_frame = False
            state.content = []
            if enabled and state.frame_dirty and len(content) >= 4:
                body = bytes(s.value for s in content[:-4] if s.is_data)
                fixed = crc32(body).to_bytes(4, "big")
                content = content[:-4] + [data_symbol(b) for b in fixed]
                self.frames_crc_fixed += 1
            state.frame_dirty = False
            out.extend(content)
            out.extend(word)
            return
        if state.in_frame and ordered_set is None:
            out.extend(state.content)
            state.in_frame = False
            state.content = []
        out.extend(word)


class SecondGenerationDevice:
    """The footnote-1 device: injector core + pluggable interface logic.

    Attaches to link segments exactly like
    :class:`~repro.core.device.FaultInjectorDevice`; the line alphabet is
    whatever the adapter handles (Myrinet symbols, FC 10-bit groups, or a
    future medium's).
    """

    def __init__(
        self,
        sim: Simulator,
        adapter: MediaAdapter,
        name: str = "fi2",
        pipeline_depth: int = DEFAULT_PIPELINE_DEPTH,
        char_period_ps: int = 12_500,
    ) -> None:
        self._sim = sim
        self.adapter = adapter
        self.name = name
        self.pipeline_depth = pipeline_depth
        self._char_period_ps = char_period_ps
        self._injectors: Dict[str, FifoInjector] = {
            d: FifoInjector(name=f"{name}:{d}", pipeline_depth=pipeline_depth)
            for d in DIRECTIONS
        }
        self._tx: Dict[str, Optional[Channel]] = {"left": None, "right": None}
        self._channel_direction: Dict[int, str] = {}
        self.bursts_forwarded = 0

    # -- wiring (same contract as the first-generation device) ----------

    def attach_left(self, link: Link, side: str) -> None:
        self._attach("left", link, side)

    def attach_right(self, link: Link, side: str) -> None:
        self._attach("right", link, side)

    def _attach(self, where: str, link: Link, side: str) -> None:
        if self._tx[where] is not None:
            raise ConfigurationError(f"{self.name} {where} already attached")
        if side == "a":
            tx = link.attach_a(self)
            rx = link.b_to_a
        elif side == "b":
            tx = link.attach_b(self)
            rx = link.a_to_b
        else:
            raise ConfigurationError(f"link side must be 'a' or 'b': {side!r}")
        self._tx[where] = tx
        self._channel_direction[id(rx)] = "R" if where == "left" else "L"
        self._char_period_ps = link.char_period_ps

    # -- configuration ---------------------------------------------------

    def injector(self, direction: str) -> FifoInjector:
        try:
            return self._injectors[direction]
        except KeyError:
            raise ConfigurationError(
                f"direction must be one of {DIRECTIONS}, got {direction!r}"
            ) from None

    def configure(self, direction: str, config: InjectorConfig) -> None:
        self.injector(direction).configure(config)

    def device_reset(self) -> None:
        for injector in self._injectors.values():
            injector.reset()

    def monitor_summary(self, direction: str) -> str:
        """MO command (no capture memory on this prototype)."""
        return "cap=0 sdram=0 drop=0"

    @property
    def pipeline_latency_ps(self) -> int:
        return self.pipeline_depth * self._char_period_ps

    # -- data path ---------------------------------------------------------

    def on_burst(self, burst: List, channel: Channel) -> None:
        direction = self._channel_direction.get(id(channel))
        if direction is None:
            raise ConfigurationError(f"{self.name}: unknown channel")
        out_channel = (
            self._tx["right"] if direction == "R" else self._tx["left"]
        )
        if out_channel is None:
            raise ConfigurationError(f"{self.name}: output not attached")

        symbols = self.adapter.decode(direction, list(burst))
        injector = self._injectors[direction]
        before = injector.injections
        processed = injector.process_burst(symbols)
        dirty = injector.injections > before
        fixed = self.adapter.fixup(direction, processed, dirty,
                                   injector.config.crc_fixup)
        line_items = self.adapter.encode(direction, fixed)
        self.bursts_forwarded += 1
        if line_items:
            self._sim.schedule(
                self.pipeline_latency_ps,
                lambda: out_channel.send(line_items),
                label=f"{self.name}:{direction}:out",
            )
