"""The assembled fault-injector device (paper Figure 1).

A :class:`FaultInjectorDevice` is spliced into one link of the network:
symbols arriving on the left segment pass through the right-going FIFO
injector and are retransmitted on the right segment, and vice versa —
"the architecture supports bi-directional fault injection", with the two
directions independently configurable ("the injector can execute
different and independent commands on data traveling in different
directions", §3.3).

Per direction the data path is::

    PHY in -> FIFO injector -> CRC fix-up -> statistics/monitor -> PHY out

The device is transparent to the network except for a fixed transit
latency: the injector pipeline depth in character periods, both PHY
conversions, and (a modelling artifact documented in DESIGN.md) one
store-and-forward re-serialization of each burst on the output segment —
together a few hundred nanoseconds to ~1.4 µs, the same order as the
paper's Table 2 measurements.

Control arrives over RS-232 exactly as in hardware: serial line → UART
chip → SPI → communications handler → command decoder.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import ConfigurationError
from repro.fastpath.buffer import SymbolBuffer
from repro.fastpath.engine import FastPathEngine
from repro.fastpath.state import resolve_pipeline
from repro.hw.comm import CommunicationsHandler
from repro.hw.injector import DEFAULT_PIPELINE_DEPTH, FifoInjector
from repro.hw.phy import DEFAULT_PHY_LATENCY_PS, PhyTransceiver
from repro.hw.registers import InjectorConfig
from repro.hw.sdram import SdramBuffer
from repro.hw.uart import DEFAULT_BAUD, SerialLine
from repro.core.crcfix import CrcFixupStage
from repro.core.monitor import InjectionMonitor, MonitorConfig
from repro.core.stats import StatisticsGatherer
from repro.myrinet.link import Channel, Link
from repro.myrinet.symbols import Symbol
from repro.sim.kernel import Simulator
from repro.capture import instrument as _capture
from repro.capture.state import CAPTURE as _CAPTURE
from repro.telemetry import instrument as _telemetry
from repro.telemetry.state import STATE as _TELEMETRY_STATE

#: Direction identifiers: R = left-to-right (toward the switch when the
#: device sits on a host link), L = right-to-left.
DIRECTIONS = ("R", "L")


class DeviceStats:
    """Aggregated view of one device's counters."""

    def __init__(self, device: "FaultInjectorDevice") -> None:
        self._device = device

    def as_dict(self) -> Dict[str, Dict[str, int]]:
        out: Dict[str, Dict[str, int]] = {}
        for direction in DIRECTIONS:
            injector = self._device.injector(direction)
            gatherer = self._device.statistics(direction)
            out[direction] = dict(injector.stats)
            out[direction]["frames_seen"] = gatherer.stats.frames
            out[direction]["crc_bad_frames"] = gatherer.stats.crc_bad_frames
        return out


class FaultInjectorDevice:
    """The in-path FPGA fault injector."""

    def __init__(
        self,
        sim: Simulator,
        name: str = "fi",
        pipeline_depth: int = DEFAULT_PIPELINE_DEPTH,
        phy_latency_ps: int = DEFAULT_PHY_LATENCY_PS,
        serial_baud: int = DEFAULT_BAUD,
        monitor_config: Optional[MonitorConfig] = None,
        medium: str = "myrinet",
        gather_statistics: bool = True,
        pipeline: Optional[str] = None,
    ) -> None:
        self._sim = sim
        self.name = name
        self.pipeline_depth = pipeline_depth
        self.medium = medium
        self.gather_statistics = gather_statistics
        #: Data-path implementation: "scalar" (reference, default) or
        #: "fast" (batched; see repro.fastpath).  ``None`` resolves to
        #: the process default (REPRO_PIPELINE / set_default_pipeline).
        self.pipeline = resolve_pipeline(pipeline)

        self._injectors: Dict[str, FifoInjector] = {
            d: FifoInjector(name=f"{name}:{d}", pipeline_depth=pipeline_depth)
            for d in DIRECTIONS
        }
        self._engines: Dict[str, FastPathEngine] = {
            d: FastPathEngine(self._injectors[d]) for d in DIRECTIONS
        }
        self._crcfix: Dict[str, CrcFixupStage] = {
            d: CrcFixupStage() for d in DIRECTIONS
        }
        self._stats: Dict[str, StatisticsGatherer] = {
            d: StatisticsGatherer() for d in DIRECTIONS
        }
        self.sdram = SdramBuffer()
        self._monitors: Dict[str, InjectionMonitor] = {
            d: InjectionMonitor(d, self.sdram, monitor_config)
            for d in DIRECTIONS
        }
        for direction in DIRECTIONS:
            self._injectors[direction].on_injection(
                lambda event, d=direction: self._on_injection_event(d, event)
            )

        self.phy_left = PhyTransceiver(f"{name}:phy-left", medium,
                                       phy_latency_ps)
        self.phy_right = PhyTransceiver(f"{name}:phy-right", medium,
                                        phy_latency_ps)

        self.serial_line = SerialLine(sim, baud=serial_baud)
        self.comm = CommunicationsHandler(sim, self.serial_line, self)

        self._tx: Dict[str, Optional[Channel]] = {"left": None, "right": None}
        self._channel_direction: Dict[int, str] = {}
        self._char_period_ps = 12_500
        self.bursts_forwarded = 0

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------

    def attach_left(self, link: Link, side: str) -> None:
        """Attach the segment toward the network's left endpoint (host)."""
        self._attach("left", link, side)

    def attach_right(self, link: Link, side: str) -> None:
        """Attach the segment toward the right endpoint (switch)."""
        self._attach("right", link, side)

    def _attach(self, where: str, link: Link, side: str) -> None:
        if self._tx[where] is not None:
            raise ConfigurationError(f"{self.name} {where} already attached")
        if side == "a":
            tx = link.attach_a(self)
            rx = link.b_to_a
        elif side == "b":
            tx = link.attach_b(self)
            rx = link.a_to_b
        else:
            raise ConfigurationError(f"link side must be 'a' or 'b': {side!r}")
        self._tx[where] = tx
        # Bursts received on the left segment travel right, and vice versa.
        self._channel_direction[id(rx)] = "R" if where == "left" else "L"
        self._char_period_ps = link.char_period_ps

    @property
    def attached(self) -> bool:
        return self._tx["left"] is not None and self._tx["right"] is not None

    @property
    def pipeline_latency_ps(self) -> int:
        """Transit latency excluding output re-serialization."""
        return (
            self.pipeline_depth * self._char_period_ps
            + self.phy_left.latency_ps
            + self.phy_right.latency_ps
        )

    # ------------------------------------------------------------------
    # decoder target protocol
    # ------------------------------------------------------------------

    def injector(self, direction: str) -> FifoInjector:
        """The FIFO injector for direction ``'R'`` or ``'L'``."""
        try:
            return self._injectors[direction]
        except KeyError:
            raise ConfigurationError(
                f"direction must be one of {DIRECTIONS}, got {direction!r}"
            ) from None

    def fastpath_engine(self, direction: str) -> FastPathEngine:
        """The batched engine for one direction (diagnostics)."""
        return self._engines[direction]

    def set_pipeline(self, pipeline: str) -> None:
        """Switch the data-path implementation (PL serial command)."""
        self.pipeline = resolve_pipeline(pipeline)

    def device_reset(self) -> None:
        """RS command: reset injectors, fix-up stages, and captures."""
        for direction in DIRECTIONS:
            self._injectors[direction].reset()
            self._crcfix[direction].flush()
            self._monitors[direction].flush()

    def monitor_summary(self, direction: str) -> str:
        """MO command: capture-memory summary for one direction."""
        monitor = self._monitors[direction]
        return (
            f"cap={monitor.captures_taken} "
            f"sdram={self.sdram.bytes_used} "
            f"drop={self.sdram.records_dropped_capacity}"
        )

    # ------------------------------------------------------------------
    # convenience configuration (programmatic path; campaigns normally
    # configure over the serial link through InjectorSession)
    # ------------------------------------------------------------------

    def configure(self, direction: str, config: InjectorConfig) -> None:
        """Load a register file directly (bypasses the serial link)."""
        self.injector(direction).configure(config)

    def monitor(self, direction: str) -> InjectionMonitor:
        return self._monitors[direction]

    def statistics(self, direction: str) -> StatisticsGatherer:
        return self._stats[direction]

    def crc_fixup_stage(self, direction: str) -> CrcFixupStage:
        return self._crcfix[direction]

    @property
    def stats(self) -> DeviceStats:
        return DeviceStats(self)

    # ------------------------------------------------------------------
    # data path
    # ------------------------------------------------------------------

    def _on_injection_event(self, direction: str, event) -> None:
        """Injector firing: open the monitor capture, log provenance."""
        self._monitors[direction].on_injection(self._sim.now, event)
        if _CAPTURE.active:
            _capture.injection(self._sim.now, self.name, direction, event)

    def on_burst(self, burst: List[Symbol], channel: Channel) -> None:
        """Intercept a burst from one segment, retransmit on the other."""
        direction = self._channel_direction.get(id(channel))
        if direction is None:
            raise ConfigurationError(
                f"{self.name}: burst on unknown channel {channel.name}"
            )
        out_channel = self._tx["right"] if direction == "R" else self._tx["left"]
        if out_channel is None:
            raise ConfigurationError(f"{self.name}: output segment not attached")

        in_phy = self.phy_left if direction == "R" else self.phy_right
        out_phy = self.phy_right if direction == "R" else self.phy_left
        in_phy.receive(len(burst))

        injector = self._injectors[direction]
        if self.pipeline == "fast":
            output = self._engines[direction].process_burst(burst)
        else:
            output = injector.process_burst(burst)
        # Burst-relative positions the injector rewrote: the CRC stage
        # marks exactly the frames containing them dirty.
        rewrites = injector.last_burst_rewrites

        crcfix = self._crcfix[direction]
        fixup_enabled = injector.config.crc_fixup
        if fixup_enabled or not crcfix.idle:
            output = crcfix.feed(output, fixup_enabled, rewrites)

        if self.gather_statistics:
            gatherer = self._stats[direction]
            if type(output) is SymbolBuffer:
                gatherer.feed_buffer(output)
            else:
                gatherer.feed(output)
        monitor = self._monitors[direction]
        if monitor.config.enabled:
            if type(output) is SymbolBuffer:
                monitor.observe_buffer(output)
            else:
                monitor.observe(output)

        out_phy.drive(len(output))
        self.bursts_forwarded += 1
        # One guarded call per burst (not per symbol): occupancy gauges,
        # throughput counters, and the added-latency histogram against
        # the paper's ~250 ns pipeline claim.
        if _TELEMETRY_STATE.active:
            _telemetry.device_burst(self, direction, len(burst), len(output))
        if _CAPTURE.active:
            _capture.device_transit(
                self._sim.now, self.name, direction, len(burst), len(output)
            )
        if output:
            latency = self.pipeline_latency_ps
            self._sim.schedule(
                latency,
                lambda: out_channel.send(output),
                label=f"{self.name}:{direction}:out",
            )
