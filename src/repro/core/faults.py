"""Fault models (paper §3.1, §3.2).

"The injector can be reconfigured by an external system at any time ...
allowing support for any combination of fault modes including bit flip,
forcing zero, and forcing one."  Each function here builds the
:class:`~repro.hw.registers.InjectorConfig` realizing one fault model;
the configs are loaded either programmatically or over the serial link.

Patterns are right-aligned in the compare window: the last byte of the
pattern is the *most recent* symbol (lane 0), so the trigger asserts on
the cycle the pattern completes and the matched bytes are still queued
in the FIFO.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.hw.registers import (
    CorruptMode,
    InjectorConfig,
    MatchMode,
    pattern_for_bytes,
)
from repro.myrinet.symbols import Symbol

_MASK32 = 0xFFFF_FFFF


def _aligned_value(raw: bytes) -> int:
    value = 0
    for byte in raw:
        value = (value << 8) | byte
    return value


def replace_bytes(
    match: bytes,
    replacement: bytes,
    match_mode: MatchMode = MatchMode.ONCE,
    crc_fixup: bool = False,
) -> InjectorConfig:
    """Replace a matched byte string with another of the same length.

    This is the paper's "typical injection scenario": match 0x1818,
    replace with 0x1918 (§3.3).
    """
    if len(match) != len(replacement):
        raise ConfigurationError(
            "replacement must be the same length as the match pattern"
        )
    compare_data, compare_mask = pattern_for_bytes(match)
    corrupt_data = _aligned_value(replacement)
    return InjectorConfig(
        match_mode=match_mode,
        compare_data=compare_data,
        compare_mask=compare_mask,
        corrupt_mode=CorruptMode.REPLACE,
        corrupt_data=corrupt_data,
        corrupt_mask=compare_mask,
        crc_fixup=crc_fixup,
    )


def toggle_bits(
    match: bytes,
    toggle: bytes,
    match_mode: MatchMode = MatchMode.ONCE,
    crc_fixup: bool = False,
) -> InjectorConfig:
    """XOR a toggle vector into the matched window (corrupt mode toggle).

    ``toggle`` is right-aligned like the match pattern; set bits are
    flipped in the stream.
    """
    compare_data, compare_mask = pattern_for_bytes(match)
    return InjectorConfig(
        match_mode=match_mode,
        compare_data=compare_data,
        compare_mask=compare_mask,
        corrupt_mode=CorruptMode.TOGGLE,
        corrupt_data=_aligned_value(toggle),
        crc_fixup=crc_fixup,
    )


def bit_flip(
    match: bytes,
    bit_index: int,
    match_mode: MatchMode = MatchMode.ONCE,
    crc_fixup: bool = False,
) -> InjectorConfig:
    """Flip one bit of the matched region (SEU-style transient).

    ``bit_index`` counts from bit 0 of the most recent byte; it must lie
    within the matched pattern.
    """
    if not 0 <= bit_index < 8 * len(match):
        raise ConfigurationError(
            f"bit index {bit_index} outside the {len(match)}-byte pattern"
        )
    compare_data, compare_mask = pattern_for_bytes(match)
    return InjectorConfig(
        match_mode=match_mode,
        compare_data=compare_data,
        compare_mask=compare_mask,
        corrupt_mode=CorruptMode.TOGGLE,
        corrupt_data=1 << bit_index,
        crc_fixup=crc_fixup,
    )


def force_zero(
    match: bytes,
    affected: bytes,
    match_mode: MatchMode = MatchMode.ONCE,
    crc_fixup: bool = False,
) -> InjectorConfig:
    """Force the bits selected by ``affected`` to logic zero."""
    compare_data, compare_mask = pattern_for_bytes(match)
    return InjectorConfig(
        match_mode=match_mode,
        compare_data=compare_data,
        compare_mask=compare_mask,
        corrupt_mode=CorruptMode.REPLACE,
        corrupt_data=0,
        corrupt_mask=_aligned_value(affected),
        crc_fixup=crc_fixup,
    )


def force_one(
    match: bytes,
    affected: bytes,
    match_mode: MatchMode = MatchMode.ONCE,
    crc_fixup: bool = False,
) -> InjectorConfig:
    """Force the bits selected by ``affected`` to logic one."""
    compare_data, compare_mask = pattern_for_bytes(match)
    return InjectorConfig(
        match_mode=match_mode,
        compare_data=compare_data,
        compare_mask=compare_mask,
        corrupt_mode=CorruptMode.REPLACE,
        corrupt_data=_MASK32,
        corrupt_mask=_aligned_value(affected),
        crc_fixup=crc_fixup,
    )


def control_symbol_swap(
    source: Symbol,
    target: Symbol,
    match_mode: MatchMode = MatchMode.ON,
) -> InjectorConfig:
    """Corrupt one control symbol into another (Table 4 campaigns).

    Matches a single *control* symbol (the D/C lane bit participates, so
    data bytes with the same value never trigger) and replaces both its
    value and, if needed, its D/C bit.
    """
    if source.is_data or target.is_data:
        raise ConfigurationError("control_symbol_swap needs control symbols")
    return InjectorConfig(
        match_mode=match_mode,
        compare_data=source.value,
        compare_mask=0xFF,
        compare_ctl=0x0,       # lane 0 must be a control symbol
        compare_ctl_mask=0x1,
        corrupt_mode=CorruptMode.REPLACE,
        corrupt_data=target.value,
        corrupt_mask=0xFF,
        corrupt_ctl=0x0,       # stays a control symbol
        corrupt_ctl_mask=0x1,
    )
