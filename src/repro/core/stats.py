"""Statistics gathering (paper §3.2).

"The architecture has full access to the data path, so the FPGA can
gather statistics about the fault injection campaign.  For instance,
data-link packet data such as source and destination identifier numbers
can be monitored, with counters incremented for each packet seen with
these identifiers."

:class:`StatisticsGatherer` passively parses the symbol stream of one
direction: it counts symbols by kind, reassembles frames, classifies
packet types, and maintains per-(source, destination) packet counters
for data packets.  It never modifies the stream.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import List

from repro.myrinet.addresses import MacAddress
from repro.myrinet.crc8 import crc8
from repro.myrinet.frames import FrameAssembler
from repro.myrinet.packet import (
    PACKET_TYPE_DATA,
    TYPE_FIELD_LEN,
    is_route_byte,
)
from repro.myrinet.symbols import CONTROL_NAME_BY_VALUE, Symbol


@dataclass
class DirectionStats:
    """Counters for one traffic direction."""

    symbols: int = 0
    data_symbols: int = 0
    control_symbols: Counter = field(default_factory=Counter)
    frames: int = 0
    crc_bad_frames: int = 0
    packet_types: Counter = field(default_factory=Counter)
    packets_by_pair: Counter = field(default_factory=Counter)

    def pair_count(self, src: MacAddress, dst: MacAddress) -> int:
        """Packets seen from ``src`` to ``dst``."""
        return self.packets_by_pair[(str(src), str(dst))]

    def publish(self, registry=None, **labels) -> None:
        """Bridge these counters into a telemetry metrics registry.

        ``registry`` defaults to the active session's; re-publishing is
        idempotent (cumulative bridging via ``Counter.set_total``).
        """
        from repro.telemetry.instrument import publish_direction_stats
        publish_direction_stats(self, registry=registry, **labels)


class StatisticsGatherer:
    """Passive per-direction stream statistics."""

    def __init__(self) -> None:
        self.stats = DirectionStats()
        self._assembler = FrameAssembler(self._on_frame, self._on_control)

    def feed(self, symbols: List[Symbol]) -> None:
        """Account for a burst of symbols (does not modify them)."""
        stats = self.stats
        stats.symbols += len(symbols)
        data_count = 0
        for symbol in symbols:
            if symbol.is_data:
                data_count += 1
            else:
                stats.control_symbols[symbol.name] += 1
        stats.data_symbols += data_count
        self._assembler.push_burst(symbols)

    def feed_buffer(self, buf) -> None:
        """Account for a whole :class:`~repro.fastpath.buffer.SymbolBuffer`.

        Byte-exact equivalent of :meth:`feed` driven by the buffer's
        value/flag planes: data symbols are counted with ``bytes.count``
        and control symbols are tallied run-by-run *in stream order*, so
        the ``control_symbols`` counter acquires keys in exactly the
        first-encounter order the scalar loop would have produced.
        """
        values, flags = buf.planes()
        stats = self.stats
        n = len(values)
        stats.symbols += n
        data_count = flags.count(1)
        stats.data_symbols += data_count
        if data_count != n:
            control_counts = stats.control_symbols
            names = CONTROL_NAME_BY_VALUE
            find = flags.find
            i = find(0)
            while i != -1:
                j = find(1, i)
                if j == -1:
                    j = n
                k = i
                while k < j:
                    value = values[k]
                    rest = values[k:j].lstrip(values[k:k + 1])
                    run = j - k - len(rest)
                    control_counts[names[value]] += run
                    k += run
                if j >= n:
                    break
                i = find(0, j)
        self._assembler.push_buffer(values, flags)

    def _on_control(self, symbol: Symbol) -> None:
        # Counted in feed(); the assembler callback exists so STOP/GO do
        # not break frame reassembly.
        return

    def _on_frame(self, frame: bytes) -> None:
        stats = self.stats
        stats.frames += 1
        if crc8(frame) != 0:
            stats.crc_bad_frames += 1
        # Strip any remaining route bytes (the device may sit on either
        # side of a switch, so frames can still carry route prefixes).
        offset = 0
        while offset < len(frame) and is_route_byte(frame[offset]):
            offset += 1
        if len(frame) < offset + TYPE_FIELD_LEN + 1:
            return
        packet_type = int.from_bytes(
            frame[offset:offset + TYPE_FIELD_LEN], "big"
        )
        stats.packet_types[packet_type] += 1
        if packet_type != PACKET_TYPE_DATA:
            return
        payload = frame[offset + TYPE_FIELD_LEN:-1]
        if len(payload) < 12:
            return
        dst = MacAddress.from_bytes(payload[:6])
        src = MacAddress.from_bytes(payload[6:12])
        stats.packets_by_pair[(str(src), str(dst))] += 1

    def publish(self, registry=None, **labels) -> None:
        """Bridge the current counters into a telemetry registry."""
        self.stats.publish(registry=registry, **labels)

    def reset(self) -> None:
        """Zero every counter (campaign reset)."""
        self.stats = DirectionStats()
        self._assembler.reset()
