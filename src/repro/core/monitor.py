"""Data monitoring (paper §3.2).

"The FPGA can be programmed to keep the bytes surrounding the fault
injection event, thus giving the user sufficient dynamic state
information about the environment in which the fault injection was
performed."

:class:`InjectionMonitor` keeps a rolling window of the most recent
symbols per direction; when the injector fires, it snapshots the
``pre_symbols`` preceding symbols and collects the next ``post_symbols``
into a :class:`CaptureRecord`, which is stored in the device's SDRAM
buffer (with the SDRAM's capacity/bandwidth accounting applied).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, List, Optional

from repro.capture import instrument as _capture
from repro.capture.state import CAPTURE as _CAPTURE
from repro.hw.injector import InjectionEvent
from repro.hw.sdram import SdramBuffer
from repro.myrinet.symbols import Symbol


@dataclass
class MonitorConfig:
    """Capture configuration for one direction."""

    enabled: bool = False
    pre_symbols: int = 32
    post_symbols: int = 32


@dataclass
class CaptureRecord:
    """One captured injection environment."""

    time_ps: int
    direction: str
    event: InjectionEvent
    before: List[Symbol] = field(default_factory=list)
    after: List[Symbol] = field(default_factory=list)

    @property
    def size_bytes(self) -> int:
        """Approximate SDRAM footprint (2 bytes per 9-bit symbol)."""
        return 2 * (len(self.before) + len(self.after)) + 16

    def data_bytes(self) -> bytes:
        """The data-symbol bytes surrounding the injection."""
        return bytes(
            s.value for s in self.before + self.after if s.is_data
        )


class InjectionMonitor:
    """Rolling-window capture for one traffic direction."""

    def __init__(
        self,
        direction: str,
        sdram: SdramBuffer,
        config: Optional[MonitorConfig] = None,
    ) -> None:
        self.direction = direction
        self._sdram = sdram
        self.config = config or MonitorConfig()
        self._window: Deque[Symbol] = deque(maxlen=max(1, self.config.pre_symbols))
        self._open: List[CaptureRecord] = []
        self.captures_taken = 0

    def configure(self, config: MonitorConfig) -> None:
        """Replace the capture configuration."""
        self.config = config
        self._window = deque(self._window, maxlen=max(1, config.pre_symbols))

    def observe(self, symbols: List[Symbol]) -> None:
        """Feed the post-injection output stream past the monitor."""
        if not self.config.enabled:
            return
        post = self.config.post_symbols
        for symbol in symbols:
            if self._open:
                still_open = []
                for record in self._open:
                    record.after.append(symbol)
                    if len(record.after) >= post:
                        self._finish(record)
                    else:
                        still_open.append(record)
                self._open = still_open
            self._window.append(symbol)

    def observe_buffer(self, symbols: List[Symbol]) -> None:
        """Batched :meth:`observe`: bulk-fill the rolling window.

        While captures are open the scalar loop runs unchanged (each
        symbol must be appended to every open record and close checks
        applied in order).  With no capture in flight, the only effect
        of observing a burst is that the window ends holding its last
        ``pre_symbols`` symbols — ``deque.extend`` with ``maxlen``
        produces exactly that in one C call.
        """
        if not self.config.enabled:
            return
        if self._open:
            self.observe(symbols)
        else:
            self._window.extend(symbols)

    def on_injection(self, time_ps: int, event: InjectionEvent) -> None:
        """Injector callback: open a capture around this event."""
        if not self.config.enabled:
            return
        record = CaptureRecord(
            time_ps=time_ps,
            direction=self.direction,
            event=event,
            before=list(self._window),
        )
        self._open.append(record)

    def flush(self) -> None:
        """Close any still-open captures (end of campaign)."""
        for record in self._open:
            self._finish(record)
        self._open = []

    def _finish(self, record: CaptureRecord) -> None:
        stored = self._sdram.store(record.time_ps, record, record.size_bytes)
        if stored:
            self.captures_taken += 1
        if _CAPTURE.active:
            _capture.capture_window(record, stored)

    def captures(self) -> List[CaptureRecord]:
        """All completed captures for this direction."""
        return [
            record
            for _time, record in self._sdram.records
            if isinstance(record, CaptureRecord)
            and record.direction == self.direction
        ]
