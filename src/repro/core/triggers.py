"""Trigger construction helpers (paper §3.2, "Real-time triggering").

The injector triggers on data patterns seen in real time on the network.
These helpers translate protocol-level intents — "match this byte string",
"match packets of this type" — into (compare data, compare mask) pairs
for the 32-bit compare window.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.errors import ConfigurationError
from repro.hw.registers import SEGMENT_LANES, pattern_for_bytes
from repro.myrinet.packet import TYPE_FIELD_LEN


def pattern_trigger(
    pattern: bytes,
    mask: Optional[bytes] = None,
) -> Tuple[int, int]:
    """(compare_data, compare_mask) for a right-aligned byte pattern.

    ``mask``, if given, selects *within-pattern* don't-care bits: a 0
    bit in the mask means "any value" ("By using the mask commands, we
    can specify any arbitrary number of bits between 0 and 32", §3.3).
    """
    data, full_mask = pattern_for_bytes(pattern)
    if mask is None:
        return data, full_mask
    if len(mask) != len(pattern):
        raise ConfigurationError("mask must be the same length as pattern")
    custom = 0
    for byte in mask:
        custom = (custom << 8) | byte
    return data & custom, custom


def header_trigger(packet_type: int, significant_bytes: int = 2) -> Tuple[int, int]:
    """Trigger on a packet-type field value.

    Myrinet packet types are "determined by a four byte subsection of the
    packet header" whose two significant bytes carry values like 0x0004
    and 0x0005 (§4.3.2); matching those two bytes is what the paper's
    packet-type campaigns did.
    """
    if not 1 <= significant_bytes <= min(SEGMENT_LANES, TYPE_FIELD_LEN):
        raise ConfigurationError(
            f"significant_bytes must be 1..{SEGMENT_LANES}"
        )
    raw = packet_type.to_bytes(TYPE_FIELD_LEN, "big")
    return pattern_trigger(raw[-significant_bytes:])
