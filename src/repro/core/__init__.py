"""The paper's primary contribution as a library.

:class:`FaultInjectorDevice` assembles the :mod:`repro.hw` entities into
the complete in-path device of paper Figure 1: bi-directional FIFO
injectors between PHY pairs, a CRC fix-up stage, monitoring capture into
SDRAM, statistics gathering, and the RS-232 command interface.  The
device is spliced into any link of a simulated network and is transparent
except for its fixed pipeline latency.

:class:`InjectorSession` is the external-system side of the serial link —
the paper's management host (NFTAPE) — offering a typed API over the
ASCII command protocol.  :mod:`repro.core.faults` provides the fault
models of §3.1/§3.2 as pre-packaged injector configurations.
"""

from repro.core.adapter import (
    FibreChannelAdapter,
    MediaAdapter,
    MyrinetAdapter,
    SecondGenerationDevice,
)
from repro.core.device import DeviceStats, FaultInjectorDevice
from repro.core.faults import (
    bit_flip,
    control_symbol_swap,
    force_one,
    force_zero,
    replace_bytes,
    toggle_bits,
)
from repro.core.monitor import CaptureRecord, MonitorConfig
from repro.core.session import InjectorSession, SessionError
from repro.core.stats import DirectionStats, StatisticsGatherer
from repro.core.triggers import header_trigger, pattern_trigger

__all__ = [
    "FaultInjectorDevice",
    "SecondGenerationDevice",
    "MediaAdapter",
    "MyrinetAdapter",
    "FibreChannelAdapter",
    "DeviceStats",
    "InjectorSession",
    "SessionError",
    "bit_flip",
    "force_zero",
    "force_one",
    "toggle_bits",
    "replace_bytes",
    "control_symbol_swap",
    "pattern_trigger",
    "header_trigger",
    "MonitorConfig",
    "CaptureRecord",
    "DirectionStats",
    "StatisticsGatherer",
]
