"""Streaming CRC-8 recalculation (paper §3.2, "Real-time triggering").

"The FPGA uses a local state-based trigger to look for a particular
pattern in the header of a packet and inject a random fault in the
payload while recalculating the correct CRC value to transmit
immediately before the end-of-frame (EOF) character."

A Myrinet frame's CRC is its last data symbol before the terminating
GAP, so the stage holds back exactly one data symbol: when the next
symbol turns out to be the GAP, the held symbol *was* the CRC and — if
an injection dirtied the frame — is replaced with the CRC recomputed
over the (possibly corrupted) bytes actually forwarded.  Clean frames
pass through byte-identical, so upstream corruption syndromes are never
laundered accidentally.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

from repro.myrinet.crc8 import crc8_update
from repro.myrinet.symbols import GAP, Symbol, data_symbol, decode_control


class CrcFixupStage:
    """One direction's CRC fix-up pipeline stage."""

    def __init__(self) -> None:
        self._held: Optional[Symbol] = None
        self._crc = 0
        self._frame_dirty = False
        self.frames_fixed = 0
        self.frames_passed = 0

    @property
    def idle(self) -> bool:
        """True when no frame is in flight (safe to bypass the stage)."""
        return self._held is None and not self._frame_dirty

    def mark_dirty(self) -> None:
        """Note that the current frame was modified by an injection."""
        self._frame_dirty = True

    def feed(self, symbols: List[Symbol], enabled: bool,
             dirty: Union[bool, Sequence[int]] = False) -> List[Symbol]:
        """Run a burst through the stage.

        ``enabled`` is the injector's crc_fixup register.  ``dirty``
        localises the injection damage:

        * a sequence of burst-relative positions (the injector's
          ``last_burst_rewrites``) marks *exactly the frames containing
          those positions* dirty — a clean frame sharing a burst with a
          corrupted one passes through byte-identical, and every
          corrupted frame in the burst is fixed, not just the first;
        * ``True`` keeps the legacy burst-scoped behaviour (the whole
          current frame is considered dirty) for direct callers.

        With the stage disabled and idle (and no positions to latch)
        the burst passes through untouched.
        """
        positions: Sequence[int] = ()
        if dirty is True:
            self._frame_dirty = True
        elif dirty:
            positions = dirty if isinstance(dirty, (set, frozenset)) \
                else frozenset(dirty)
        if not enabled and self.idle and not positions:
            return symbols
        out: List[Symbol] = []
        idx = 0
        for symbol in symbols:
            if idx in positions:
                # The injector rewrote this position: whatever frame it
                # belongs to carries the damage.
                self._frame_dirty = True
            idx += 1
            if symbol.is_data:
                if self._held is not None:
                    out.append(self._held)
                    self._crc = crc8_update(self._crc, self._held.value)
                self._held = symbol
                continue
            if decode_control(symbol.value) is GAP:
                self._close_frame(out, enabled)
                out.append(symbol)
            else:
                # STOP/GO/IDLE pass through without disturbing the frame.
                out.append(symbol)
        return out

    def _close_frame(self, out: List[Symbol], enabled: bool) -> None:
        if self._held is not None:
            if enabled and self._frame_dirty:
                out.append(data_symbol(self._crc))
                self.frames_fixed += 1
            else:
                out.append(self._held)
                self.frames_passed += 1
        self._held = None
        self._crc = 0
        self._frame_dirty = False

    def flush(self) -> List[Symbol]:
        """Emit any held symbol unchanged (device reset)."""
        out: List[Symbol] = []
        if self._held is not None:
            out.append(self._held)
        self._held = None
        self._crc = 0
        self._frame_dirty = False
        return out
