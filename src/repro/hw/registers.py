"""Injector control inputs (paper §3.3, Figure 3).

These are the registers the command decoder writes as configuration
commands arrive over the serial link:

* **match mode** — ``on`` (trigger on every match), ``off`` (trigger
  disabled), ``once`` (trigger on the first match, then disarm);
* **compare data / compare mask** — a 32-bit pattern and its don't-care
  mask, compared (bit-wise XOR) against the sliding window of the four
  most recent symbols;
* **corrupt mode** — ``toggle`` (XOR the corrupt-data vector into the
  segment) or ``replace`` (substitute corrupt-data bits selected by the
  corrupt mask);
* **corrupt data / corrupt mask** — the corruption vectors;
* **inject now** — a one-shot trigger exercised on the next even cycle.

The model extends the paper's 32-bit interface with four *control-lane*
bits per register group so the D/C bit of each byte lane can participate
in matching and corruption — this is how campaigns target GAP/GO/STOP
control symbols (documented extension, see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from enum import Enum

from repro.errors import ConfigurationError

#: Width of the compare/corrupt datapath.
SEGMENT_BITS = 32
#: Byte lanes per segment.
SEGMENT_LANES = 4

_MASK32 = (1 << SEGMENT_BITS) - 1
_MASK4 = (1 << SEGMENT_LANES) - 1


class MatchMode(Enum):
    """Trigger arming (paper: on / off / once)."""

    OFF = "off"
    ON = "on"
    ONCE = "once"


class CorruptMode(Enum):
    """How a matched segment is corrupted (paper: toggle / replace)."""

    TOGGLE = "toggle"
    REPLACE = "replace"


@dataclass
class InjectorConfig:
    """The full register file of one FIFO injector instance."""

    match_mode: MatchMode = MatchMode.OFF
    compare_data: int = 0
    compare_mask: int = 0
    compare_ctl: int = _MASK4  # expected D/C bits (1 = data symbol)
    compare_ctl_mask: int = 0  # which lanes' D/C bits participate
    corrupt_mode: CorruptMode = CorruptMode.TOGGLE
    corrupt_data: int = 0
    corrupt_mask: int = _MASK32
    corrupt_ctl: int = _MASK4  # replacement D/C bits
    corrupt_ctl_mask: int = 0  # which lanes get their D/C bit replaced
    crc_fixup: bool = False

    def __post_init__(self) -> None:
        for name in ("compare_data", "compare_mask", "corrupt_data",
                     "corrupt_mask"):
            value = getattr(self, name)
            if not 0 <= value <= _MASK32:
                raise ConfigurationError(
                    f"{name} {value:#x} outside {SEGMENT_BITS}-bit range"
                )
        for name in ("compare_ctl", "compare_ctl_mask", "corrupt_ctl",
                     "corrupt_ctl_mask"):
            value = getattr(self, name)
            if not 0 <= value <= _MASK4:
                raise ConfigurationError(
                    f"{name} {value:#x} outside {SEGMENT_LANES}-bit range"
                )

    def copy(self, **changes) -> "InjectorConfig":
        """A modified copy (the decoder applies one field per command)."""
        return replace(self, **changes)

    @property
    def armed(self) -> bool:
        return self.match_mode is not MatchMode.OFF

    def describe(self) -> str:
        """One-line summary used by monitoring and reports."""
        return (
            f"match={self.match_mode.value} "
            f"cd={self.compare_data:08x}/{self.compare_mask:08x} "
            f"corrupt={self.corrupt_mode.value} "
            f"rd={self.corrupt_data:08x}/{self.corrupt_mask:08x} "
            f"ctl={self.compare_ctl:x}/{self.compare_ctl_mask:x}"
            f"->{self.corrupt_ctl:x}/{self.corrupt_ctl_mask:x} "
            f"crcfix={'1' if self.crc_fixup else '0'}"
        )


def pattern_for_bytes(pattern: bytes, lanes: int = SEGMENT_LANES) -> tuple:
    """Build (compare_data, compare_mask) matching ``pattern`` at the
    *newest* end of the window.

    ``pattern`` may be 1..4 bytes; it is right-aligned (the most recent
    symbol is the low byte of the window word), matching how the window
    shifts, so a 2-byte pattern triggers the moment its second byte
    arrives.
    """
    if not 1 <= len(pattern) <= lanes:
        raise ConfigurationError(
            f"pattern must be 1..{lanes} bytes, got {len(pattern)}"
        )
    data = 0
    mask = 0
    for byte in pattern:
        data = ((data << 8) | byte) & _MASK32
        mask = ((mask << 8) | 0xFF) & _MASK32
    return data, mask
