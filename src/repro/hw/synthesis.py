"""Structural synthesis estimation (paper §3.4, Table 1).

The paper synthesizes the VHDL for Xilinx Virtex and reports, per entity,
the consumed gates, function generators (4-input LUTs), multiplexers and
D flip-flops.  We cannot run vendor synthesis, so this module estimates
the same quantities from *structural descriptions* of our Python entity
models: a bit-level register inventory, FSM state counts, combinational
term counts, and datapath mux inputs.  The estimator's constants are
calibrated once against the paper's table; benchmarks then check the
reproduction-relevant *shape*: the FIFO injector dominates every
resource class, the instruction decoder is the register-heaviest control
entity, and totals agree to within tens of percent (see
bench_table1_synthesis).

This is a model, not a synthesis run — documented as such in DESIGN.md.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List

from repro.hw.injector import DEFAULT_PIPELINE_DEPTH

#: Values published in the paper's Table 1.
PAPER_TABLE1: Dict[str, Dict[str, int]] = {
    "clck_gen": {"gates": 10, "function_generators": 15, "multiplexers": 1,
                 "flip_flops": 11},
    "comm": {"gates": 94, "function_generators": 100, "multiplexers": 9,
             "flip_flops": 31},
    "inst_dec": {"gates": 259, "function_generators": 275,
                 "multiplexers": 17, "flip_flops": 286},
    "out_gen": {"gates": 78, "function_generators": 80, "multiplexers": 0,
                "flip_flops": 15},
    "spi": {"gates": 66, "function_generators": 69, "multiplexers": 6,
            "flip_flops": 42},
    "fifo_inject": {"gates": 1768, "function_generators": 1800,
                    "multiplexers": 350, "flip_flops": 788},
    "total": {"gates": 2275, "function_generators": 2339,
              "multiplexers": 383, "flip_flops": 1173},
}

#: Entity order as the paper lists it.
ENTITY_ORDER = ("clck_gen", "comm", "inst_dec", "out_gen", "spi",
                "fifo_inject")


@dataclass
class EntityDescription:
    """Structural inventory of one VHDL entity."""

    name: str
    register_bits: int
    fsm_states: int
    comb_terms: int
    mux_inputs: int

    @property
    def state_bits(self) -> int:
        return max(0, math.ceil(math.log2(max(1, self.fsm_states))))


@dataclass
class ResourceEstimate:
    """Estimated Virtex resources for one entity."""

    name: str
    gates: int
    function_generators: int
    multiplexers: int
    flip_flops: int

    def as_dict(self) -> Dict[str, int]:
        return {
            "gates": self.gates,
            "function_generators": self.function_generators,
            "multiplexers": self.multiplexers,
            "flip_flops": self.flip_flops,
        }


def estimate_entity(description: EntityDescription) -> ResourceEstimate:
    """Apply the calibrated resource formulas to one entity."""
    flip_flops = description.register_bits + description.state_bits
    function_generators = (
        description.comb_terms
        + description.mux_inputs // 4
        + math.ceil(flip_flops * 0.12)
    )
    gates = max(1, function_generators - math.ceil(function_generators / 50)
                - description.mux_inputs // 40)
    return ResourceEstimate(
        name=description.name,
        gates=gates,
        function_generators=function_generators,
        multiplexers=description.mux_inputs,
        flip_flops=flip_flops,
    )


def describe_clck_gen() -> EntityDescription:
    """Clock generation: a divider counter and phase toggles."""
    register_bits = 8 + 1 + 1  # divider counter, phase bit, lock flag
    return EntityDescription("clck_gen", register_bits, fsm_states=2,
                             comb_terms=12, mux_inputs=1)


def describe_comm() -> EntityDescription:
    """Communications handler: byte staging and interrupt bookkeeping."""
    register_bits = 8 + 8 + 8 + 4  # rx/tx staging, interrupt latch, flags
    return EntityDescription("comm", register_bits, fsm_states=6,
                             comb_terms=90, mux_inputs=9)


def describe_inst_dec(directions: int = 2) -> EntityDescription:
    """Command decoder: the large FSM plus staged configuration words.

    The decoder stages one full 32-bit word, a 4-bit control word, the
    opcode/direction latches and a line-position counter — per command,
    not per direction — but also holds the applied register file shadow
    for write-back handshaking in both directions.
    """
    staging = 32 + 4 + 16 + 8 + 6
    shadow = directions * (32 + 32 + 4 + 4 + 2 + 1)  # per-direction file
    register_bits = staging + shadow + 64  # response latch
    return EntityDescription("inst_dec", register_bits, fsm_states=24,
                             comb_terms=230, mux_inputs=17)


def describe_out_gen() -> EntityDescription:
    """Output generator: ASCII formatting tables and a byte counter."""
    register_bits = 8 + 4 + 2  # byte latch, position, state flags
    return EntityDescription("out_gen", register_bits, fsm_states=8,
                             comb_terms=76, mux_inputs=0)


def describe_spi() -> EntityDescription:
    """SPI: 16-bit shift register, bit counter, parity, sync detect."""
    register_bits = 16 + 16 + 5 + 1 + 2  # rx/tx shift, count, parity, flags
    return EntityDescription("spi", register_bits, fsm_states=4,
                             comb_terms=58, mux_inputs=6)


def describe_fifo_inject(
    pipeline_depth: int = DEFAULT_PIPELINE_DEPTH,
) -> EntityDescription:
    """FIFO injector: compare/corrupt register file, window, pointers,
    inject pipeline and statistics counters.

    The FIFO storage itself lives in block RAM and does not consume
    flip-flops (paper footnote 2); only its pointers and pipeline
    registers do.
    """
    pointer_bits = 3 * math.ceil(math.log2(pipeline_depth + 1))
    config_file = 32 + 32 + 32 + 32 + 4 * 4  # cd, cm, rd, rm, ctl regs
    window = 32 + 4
    pipeline_regs = 3 * (36 + 4)  # 3-stage inject pipeline + valid bits
    counters = 4 * 32  # symbols, matches, injections, segments
    crc_fixup = 8 + 9 + 2  # running CRC, held symbol, dirty/valid
    staging = 2 * (32 + 4)  # double-buffered compare/corrupt staging
    output_reg = 9 + 1
    flags = 4  # once-fired, inject-now, armed, phase
    register_bits = (
        pointer_bits + config_file + window + pipeline_regs + counters
        + crc_fixup + staging + output_reg + flags + 256
    )  # + capture-address generators for the SDRAM interface
    comb_terms = (
        64   # 32-bit XOR compare + mask AND-reduce
        + 96  # corrupt toggle/replace datapath
        + 40  # CRC-8 next-state logic
        + 48  # pointer/full/empty arithmetic
        + 1350  # capture path, SDRAM address generation, lane steering
    )
    mux_inputs = 350
    return EntityDescription("fifo_inject", register_bits, fsm_states=10,
                             comb_terms=comb_terms, mux_inputs=mux_inputs)


def describe_all(
    pipeline_depth: int = DEFAULT_PIPELINE_DEPTH,
) -> List[EntityDescription]:
    """All six entity descriptions in the paper's table order."""
    return [
        describe_clck_gen(),
        describe_comm(),
        describe_inst_dec(),
        describe_out_gen(),
        describe_spi(),
        describe_fifo_inject(pipeline_depth),
    ]


def synthesis_report(
    pipeline_depth: int = DEFAULT_PIPELINE_DEPTH,
    fifo_instances: int = 1,
) -> Dict[str, Dict[str, int]]:
    """Estimate every entity and the total, as the paper's Table 1 does.

    .. note::
       The paper says the totals assume *two* FIFO injector instances,
       but its printed total row equals the single-instance sum; we
       default to the printed arithmetic (``fifo_instances=1``) and let
       callers ask for the stated assumption.
    """
    report: Dict[str, Dict[str, int]] = {}
    totals = {"gates": 0, "function_generators": 0, "multiplexers": 0,
              "flip_flops": 0}
    for description in describe_all(pipeline_depth):
        estimate = estimate_entity(description).as_dict()
        report[description.name] = estimate
        factor = fifo_instances if description.name == "fifo_inject" else 1
        for key in totals:
            totals[key] += estimate[key] * factor
    report["total"] = totals
    return report


def format_report(report: Dict[str, Dict[str, int]],
                  reference: Dict[str, Dict[str, int]] = PAPER_TABLE1) -> str:
    """Side-by-side text table: model estimate vs the paper's Table 1."""
    header = (
        f"{'Entity':<12} {'Gates':>12} {'FuncGen':>12} {'Mux':>12} "
        f"{'D-FF':>12}"
    )
    lines = [header, "-" * len(header)]
    for name in list(ENTITY_ORDER) + ["total"]:
        ours = report[name]
        paper = reference[name]
        lines.append(
            f"{name:<12} "
            f"{ours['gates']:>5}/{paper['gates']:<6} "
            f"{ours['function_generators']:>5}/{paper['function_generators']:<6} "
            f"{ours['multiplexers']:>5}/{paper['multiplexers']:<6} "
            f"{ours['flip_flops']:>5}/{paper['flip_flops']:<6}"
        )
    lines.append("(model/paper)")
    return "\n".join(lines)
