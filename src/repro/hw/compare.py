"""The compare unit: sliding window and trigger logic (paper §3.3).

The incoming symbol stream is shifted into the compare registers on odd
cycles; on the following even cycle the concurrent compare logic's result
is available.  "Incoming data is compared with the compare data (bit-wise
XOR) operation.  The trigger line is asserted if they all match.  The
compare mask enables the use of 'don't care' bits" — with the mask
applied to the XOR result, any 0 to 32 bits of the window can be made to
participate.

The window holds the four most recent symbols; the most recent symbol
occupies the low byte.  A parallel 4-bit register tracks the D/C bit of
each lane so control symbols are distinguishable from data bytes carrying
the same value.
"""

from __future__ import annotations

from typing import Tuple

from repro.hw.registers import SEGMENT_BITS, SEGMENT_LANES, InjectorConfig
from repro.myrinet.symbols import Symbol

_MASK32 = (1 << SEGMENT_BITS) - 1
_MASK4 = (1 << SEGMENT_LANES) - 1


class CompareUnit:
    """Sliding 32-bit (+4 control bit) window with masked comparison."""

    def __init__(self) -> None:
        self._window = 0
        self._ctl = _MASK4  # empty lanes read as "data"
        self._filled = 0
        self.shifts = 0
        self.evaluations = 0
        self.matches = 0

    @property
    def window(self) -> int:
        """The 32-bit window value (newest symbol in the low byte)."""
        return self._window

    @property
    def ctl_bits(self) -> int:
        """D/C bits of the four lanes (bit 0 = newest lane; 1 = data)."""
        return self._ctl

    @property
    def filled(self) -> bool:
        """True once four symbols have been shifted in."""
        return self._filled >= SEGMENT_LANES

    def shift(self, symbol: Symbol) -> None:
        """Odd-cycle operation: shift one symbol into the window."""
        self._window = ((self._window << 8) | symbol.value) & _MASK32
        self._ctl = ((self._ctl << 1) | (1 if symbol.is_data else 0)) & _MASK4
        if self._filled < SEGMENT_LANES:
            self._filled += 1
        self.shifts += 1

    def bulk_shift(self, tail_values: bytes, tail_flags: bytes,
                   total: int) -> None:
        """Account ``total`` shifts at once (fast-path bulk accounting).

        ``tail_values``/``tail_flags`` are the value and D/C planes of
        the *last* ``min(4, total)`` symbols of the stretch — enough to
        reconstruct the exact register state the per-symbol path would
        have reached, since each shift retains only the four most recent
        symbols.  Evaluation accounting is the caller's job (the fast
        path only bulk-advances stretches with no trigger activity).
        """
        window = self._window
        ctl = self._ctl
        for v, f in zip(tail_values, tail_flags):
            window = ((window << 8) | v) & _MASK32
            ctl = ((ctl << 1) | f) & _MASK4
        self._window = window
        self._ctl = ctl
        filled = self._filled + total
        self._filled = filled if filled < SEGMENT_LANES else SEGMENT_LANES
        self.shifts += total

    def evaluate(self, config: InjectorConfig) -> bool:
        """Even-cycle operation: is the trigger line asserted?

        With an all-zero compare mask and no control-lane mask the
        comparison is vacuous, so — like the hardware — the trigger
        would fire on every segment; callers gate this with the match
        mode.
        """
        self.evaluations += 1
        data_diff = (self._window ^ config.compare_data) & config.compare_mask
        ctl_diff = (self._ctl ^ config.compare_ctl) & config.compare_ctl_mask
        matched = data_diff == 0 and ctl_diff == 0
        if matched:
            self.matches += 1
        return matched

    def snapshot(self) -> Tuple[int, int]:
        """(window, ctl_bits) for monitoring captures."""
        return self._window, self._ctl

    def reset(self) -> None:
        """Clear the window (device reset)."""
        self._window = 0
        self._ctl = _MASK4
        self._filled = 0
