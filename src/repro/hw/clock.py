"""The injector's two-phase clocking scheme (paper Figures 2 and 3).

The FIFO injector needs two clock cycles per 32-bit segment:

* **odd cycle** — data is read and pushed onto the FIFO; if processed
  data is ready it is read out toward the network; the incoming stream
  is shifted into the compare registers, whose concurrent logic starts
  the compare operation;
* **even cycle** — the compare result is available; if data needs to be
  corrupted it is overwritten *in the FIFO*.

:class:`TwoPhaseClock` tracks the phase explicitly so the injector model
(and its unit tests) can assert the paper's phase ordering: pushes and
pops happen only on odd cycles, injections only on even cycles.
"""

from __future__ import annotations

from enum import Enum

from repro.errors import SimulationError


class ClockPhase(Enum):
    """Which half of the two-phase cycle is active."""

    ODD = "odd"
    EVEN = "even"


class TwoPhaseClock:
    """An explicitly-stepped two-phase clock.

    The clock starts *before* the first odd cycle; :meth:`tick` advances
    one phase and returns the phase that just became active.
    """

    def __init__(self) -> None:
        self._cycles = 0
        self._phase = ClockPhase.EVEN  # so the first tick lands on ODD

    @property
    def phase(self) -> ClockPhase:
        """The currently active phase."""
        return self._phase

    @property
    def cycles(self) -> int:
        """Total clock cycles elapsed (each phase is one cycle)."""
        return self._cycles

    @property
    def segments(self) -> int:
        """Completed odd/even cycle pairs (32-bit segments processed)."""
        return self._cycles // 2

    def tick(self) -> ClockPhase:
        """Advance one cycle and return the new phase."""
        self._cycles += 1
        self._phase = (
            ClockPhase.ODD if self._phase is ClockPhase.EVEN else ClockPhase.EVEN
        )
        return self._phase

    def advance(self, segments: int) -> None:
        """Advance ``segments`` whole odd/even cycle pairs at once.

        The fast path's bulk accounting: each pass-through symbol costs
        exactly one odd + one even cycle, so advancing ``2 * segments``
        cycles leaves the phase unchanged and the cycle counter exactly
        where the per-step path would have left it.
        """
        if segments < 0:
            raise SimulationError(f"cannot advance {segments} segments")
        self._cycles += 2 * segments

    def expect(self, phase: ClockPhase) -> None:
        """Assert the current phase; raises on violation.

        The injector model uses this to enforce the paper's contract:
        FIFO pushes/pops on odd cycles, injection on even cycles.
        """
        if self._phase is not phase:
            raise SimulationError(
                f"operation requires {phase.value} cycle, "
                f"clock is in {self._phase.value} cycle {self._cycles}"
            )
