"""PHY transceiver models (paper §3.2, §3.4).

"The injector can function on standard interfaces because commercially
available physical interface chips (PHYs) are used as transceivers.  Two
transceivers are necessary because the transmitted data must be
intercepted on one network segment and retransmitted ... on the opposite
segment."  The board carries a MyriPHY pair and an FCPHY pair.

The model is a counted pass-through with a fixed conversion latency (the
paper's footnote 5 notes the latency of the Myricom FI3 chips is unknown;
it is a parameter here and an ablation axis in the benchmarks).
"""

from __future__ import annotations


from repro.errors import ConfigurationError
from repro.sim.timebase import from_ns

#: Media the board provides PHY pairs for.
MEDIA = ("myrinet", "fibre-channel")

#: Default per-PHY conversion latency.
DEFAULT_PHY_LATENCY_PS = from_ns(10.0)


class PhyTransceiver:
    """One physical-interface chip: receive on one side, drive the other."""

    def __init__(
        self,
        name: str,
        medium: str = "myrinet",
        latency_ps: int = DEFAULT_PHY_LATENCY_PS,
    ) -> None:
        if medium not in MEDIA:
            raise ConfigurationError(
                f"unknown medium {medium!r}; expected one of {MEDIA}"
            )
        if latency_ps < 0:
            raise ConfigurationError("PHY latency cannot be negative")
        self.name = name
        self.medium = medium
        self.latency_ps = latency_ps
        self.symbols_received = 0
        self.symbols_driven = 0

    def receive(self, count: int) -> int:
        """Account for ``count`` symbols entering from the line.

        Returns the conversion latency to add to their timestamps.
        """
        self.symbols_received += count
        return self.latency_ps

    def drive(self, count: int) -> int:
        """Account for ``count`` symbols being driven onto the line."""
        self.symbols_driven += count
        return self.latency_ps
