"""FPGA fault-injector hardware models.

Cycle-phase-accurate Python models of every VHDL entity in the paper's
Figure 1: the two-phase FIFO injector (Figures 2/3) with its dual-port
RAM, compare registers, and corrupt logic; the command decoder and output
generator FSMs; the SPI and communications handler; the off-chip UART;
the SDRAM capture memory; and the PHY transceivers.  A structural
synthesis estimator reproduces the shape of the paper's Table 1.
"""

from repro.hw.clock import ClockPhase, TwoPhaseClock
from repro.hw.compare import CompareUnit
from repro.hw.fifo import DualPortRam, RamFifo
from repro.hw.injector import FifoInjector, InjectionEvent
from repro.hw.phy import PhyTransceiver
from repro.hw.registers import (
    CorruptMode,
    InjectorConfig,
    MatchMode,
)
from repro.hw.sdram import SdramBuffer
from repro.hw.synthesis import (
    PAPER_TABLE1,
    EntityDescription,
    ResourceEstimate,
    estimate_entity,
    synthesis_report,
)
from repro.hw.uart import SerialLine, Uart

__all__ = [
    "ClockPhase",
    "TwoPhaseClock",
    "CompareUnit",
    "DualPortRam",
    "RamFifo",
    "FifoInjector",
    "InjectionEvent",
    "PhyTransceiver",
    "MatchMode",
    "CorruptMode",
    "InjectorConfig",
    "SdramBuffer",
    "SerialLine",
    "Uart",
    "EntityDescription",
    "ResourceEstimate",
    "estimate_entity",
    "synthesis_report",
    "PAPER_TABLE1",
]
