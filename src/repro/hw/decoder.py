"""The command decoder FSM (paper §3.3).

"The command decoder is a large finite-state machine (FSM), which
receives data from the communication handler and applies configuration
information to the injector circuitry.  It also generates error and
acknowledgment signals that are interpreted by the output generator."

The decoder consumes one ASCII character per invocation (as the hardware
does per clock) through an explicit state machine, accumulating a command
line.  Command grammar (lines end with ``\\n``; ``<D>`` is ``L`` for the
left-going injector, ``R`` for the right-going one)::

    ID                    identity
    RS                    reset both injectors
    MM <D> ON|OFF|ONCE    match mode
    OM <D> TGL|RPL        corrupt mode
    CD <D> <hex8>         compare data       CM <D> <hex8>  compare mask
    CC <D> <hex1>         compare ctl bits   CX <D> <hex1>  compare ctl mask
    RD <D> <hex8>         corrupt data       RM <D> <hex8>  corrupt mask
    RC <D> <hex1>         corrupt ctl bits   RX <D> <hex1>  corrupt ctl mask
    CF <D> 0|1            CRC fix-up enable
    IN <D>                inject now
    ST <D>                read statistics
    MO <D>                read monitoring capture summary
    PT                    power-on self-test
    PL SCALAR|FAST        select the data-path pipeline (both directions)

Responses are ``OK ...`` acknowledgments or ``ER <code> <reason>``.
"""

from __future__ import annotations

from enum import Enum
from typing import Callable, Dict, Optional, Protocol

from repro.hw.injector import FifoInjector
from repro.hw.registers import CorruptMode, MatchMode

#: Maximum accepted command-line length.
MAX_LINE = 64

ERR_BAD_OPCODE = "01"
ERR_BAD_DIRECTION = "02"
ERR_BAD_ARGUMENT = "03"
ERR_OVERFLOW = "04"

IDENTITY = "DSN2002-FI 1.0"


class DecoderTarget(Protocol):
    """What the decoder drives: the device's two injectors plus reset."""

    def injector(self, direction: str) -> FifoInjector:
        """The injector for direction 'L' or 'R'."""

    def device_reset(self) -> None:
        """Reset both injectors and monitoring state."""

    def monitor_summary(self, direction: str) -> str:
        """A short summary of the capture memory for one direction."""

    def set_pipeline(self, pipeline: str) -> None:
        """Select the data-path implementation ("scalar" or "fast")."""


class _State(Enum):
    IDLE = "idle"
    ACCUMULATE = "accumulate"
    OVERFLOW = "overflow"


class CommandDecoder:
    """Character-at-a-time command decoder."""

    def __init__(
        self,
        target: DecoderTarget,
        respond: Callable[[str], None],
    ) -> None:
        self._target = target
        self._respond = respond
        self._state = _State.IDLE
        self._line: list = []
        self.commands_ok = 0
        self.commands_error = 0
        self.chars_consumed = 0

    @property
    def state(self) -> str:
        return self._state.value

    def on_char(self, byte: int) -> None:
        """Consume one character from the communications handler."""
        self.chars_consumed += 1
        char = chr(byte & 0x7F)
        if char == "\n":
            if self._state is _State.OVERFLOW:
                self._error(ERR_OVERFLOW, "line too long")
            else:
                self._execute("".join(self._line))
            self._line.clear()
            self._state = _State.IDLE
            return
        if char == "\r":
            return
        if self._state is _State.OVERFLOW:
            return
        if len(self._line) >= MAX_LINE:
            self._state = _State.OVERFLOW
            return
        self._state = _State.ACCUMULATE
        self._line.append(char)

    # ------------------------------------------------------------------
    # command execution
    # ------------------------------------------------------------------

    def _execute(self, line: str) -> None:
        tokens = line.split()
        if not tokens:
            return
        opcode = tokens[0].upper()
        handler = _HANDLERS.get(opcode)
        if handler is None:
            self._error(ERR_BAD_OPCODE, f"unknown opcode {opcode}")
            return
        handler(self, tokens[1:])

    def _injector_for(self, tokens: list) -> Optional[FifoInjector]:
        if not tokens or tokens[0].upper() not in ("L", "R"):
            self._error(ERR_BAD_DIRECTION, "expected direction L or R")
            return None
        return self._target.injector(tokens[0].upper())

    def _ok(self, message: str = "") -> None:
        self.commands_ok += 1
        self._respond(f"OK {message}".rstrip())

    def _error(self, code: str, reason: str) -> None:
        self.commands_error += 1
        self._respond(f"ER {code} {reason}")

    def _cmd_id(self, tokens: list) -> None:
        self._ok(IDENTITY)

    def _cmd_rs(self, tokens: list) -> None:
        self._target.device_reset()
        self._ok("reset")

    def _cmd_mm(self, tokens: list) -> None:
        injector = self._injector_for(tokens)
        if injector is None:
            return
        if len(tokens) < 2:
            self._error(ERR_BAD_ARGUMENT, "expected ON, OFF or ONCE")
            return
        try:
            mode = MatchMode(tokens[1].lower())
        except ValueError:
            self._error(ERR_BAD_ARGUMENT, f"bad match mode {tokens[1]}")
            return
        injector.set_match_mode(mode)
        self._ok(f"mm={mode.value}")

    def _cmd_om(self, tokens: list) -> None:
        injector = self._injector_for(tokens)
        if injector is None:
            return
        modes = {"TGL": CorruptMode.TOGGLE, "RPL": CorruptMode.REPLACE}
        if len(tokens) < 2 or tokens[1].upper() not in modes:
            self._error(ERR_BAD_ARGUMENT, "expected TGL or RPL")
            return
        mode = modes[tokens[1].upper()]
        injector.configure(injector.config.copy(corrupt_mode=mode))
        self._ok(f"om={mode.value}")

    def _hex_command(self, tokens: list, attribute: str, width: int) -> None:
        injector = self._injector_for(tokens)
        if injector is None:
            return
        if len(tokens) < 2:
            self._error(ERR_BAD_ARGUMENT, "missing hex argument")
            return
        text = tokens[1]
        limit = 1 << (4 * width)
        try:
            value = int(text, 16)
        except ValueError:
            self._error(ERR_BAD_ARGUMENT, f"bad hex value {text}")
            return
        if len(text) > width or value >= limit:
            self._error(ERR_BAD_ARGUMENT, f"value {text} too wide")
            return
        injector.configure(injector.config.copy(**{attribute: value}))
        self._ok(f"{attribute}={value:0{width}x}")

    def _cmd_cd(self, tokens: list) -> None:
        self._hex_command(tokens, "compare_data", 8)

    def _cmd_cm(self, tokens: list) -> None:
        self._hex_command(tokens, "compare_mask", 8)

    def _cmd_cc(self, tokens: list) -> None:
        self._hex_command(tokens, "compare_ctl", 1)

    def _cmd_cx(self, tokens: list) -> None:
        self._hex_command(tokens, "compare_ctl_mask", 1)

    def _cmd_rd(self, tokens: list) -> None:
        self._hex_command(tokens, "corrupt_data", 8)

    def _cmd_rm(self, tokens: list) -> None:
        self._hex_command(tokens, "corrupt_mask", 8)

    def _cmd_rc(self, tokens: list) -> None:
        self._hex_command(tokens, "corrupt_ctl", 1)

    def _cmd_rx(self, tokens: list) -> None:
        self._hex_command(tokens, "corrupt_ctl_mask", 1)

    def _cmd_cf(self, tokens: list) -> None:
        injector = self._injector_for(tokens)
        if injector is None:
            return
        if len(tokens) < 2 or tokens[1] not in ("0", "1"):
            self._error(ERR_BAD_ARGUMENT, "expected 0 or 1")
            return
        injector.configure(injector.config.copy(crc_fixup=tokens[1] == "1"))
        self._ok(f"cf={tokens[1]}")

    def _cmd_in(self, tokens: list) -> None:
        injector = self._injector_for(tokens)
        if injector is None:
            return
        injector.inject_now()
        self._ok("inject")

    def _cmd_st(self, tokens: list) -> None:
        injector = self._injector_for(tokens)
        if injector is None:
            return
        stats = injector.stats
        self._ok(
            f"sym={stats['symbols_processed']} "
            f"match={stats['compare_matches']} inj={stats['injections']}"
        )

    def _cmd_mo(self, tokens: list) -> None:
        if not tokens or tokens[0].upper() not in ("L", "R"):
            self._error(ERR_BAD_DIRECTION, "expected direction L or R")
            return
        self._ok(self._target.monitor_summary(tokens[0].upper()))

    def _cmd_pl(self, tokens: list) -> None:
        if len(tokens) < 1 or tokens[0].upper() not in ("SCALAR", "FAST"):
            self._error(ERR_BAD_ARGUMENT, "expected SCALAR or FAST")
            return
        pipeline = tokens[0].lower()
        self._target.set_pipeline(pipeline)
        self._ok(f"pl={pipeline}")

    def _cmd_pt(self, tokens: list) -> None:
        from repro.hw.selftest import run_selftest
        report = run_selftest()
        if report.passed:
            self._ok(report.summary())
        else:
            self._error(ERR_BAD_ARGUMENT, f"self-test: {report.summary()}")


_HANDLERS: Dict[str, Callable] = {
    "ID": CommandDecoder._cmd_id,
    "RS": CommandDecoder._cmd_rs,
    "MM": CommandDecoder._cmd_mm,
    "OM": CommandDecoder._cmd_om,
    "CD": CommandDecoder._cmd_cd,
    "CM": CommandDecoder._cmd_cm,
    "CC": CommandDecoder._cmd_cc,
    "CX": CommandDecoder._cmd_cx,
    "RD": CommandDecoder._cmd_rd,
    "RM": CommandDecoder._cmd_rm,
    "RC": CommandDecoder._cmd_rc,
    "RX": CommandDecoder._cmd_rx,
    "CF": CommandDecoder._cmd_cf,
    "IN": CommandDecoder._cmd_in,
    "ST": CommandDecoder._cmd_st,
    "MO": CommandDecoder._cmd_mo,
    "PT": CommandDecoder._cmd_pt,
    "PL": CommandDecoder._cmd_pl,
}
