"""Dual-port RAM and the FIFO built on it (paper §3.3, "Dual port RAM").

The paper implements the injector's FIFO over on-chip dual-port block RAM
("these entities are available on-chip in many commercial FPGAs,
including Xilinx Spartan and Virtex series parts").  The model keeps the
two structures distinct: :class:`DualPortRam` is raw storage with
independent read/write ports, and :class:`RamFifo` layers head/tail
pointers on top — including the ability to *rewrite entries in place*,
which is how the even-cycle inject operation overwrites matched data
while it is still queued (Figure 3).
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import ConfigurationError, SimulationError
from repro.myrinet.symbols import Symbol

#: Width of a FIFO word: one 9-bit symbol (D/C bit + 8 data bits).
WORD_BITS = 9


class DualPortRam:
    """Word-addressable storage with separate read and write ports.

    Access counters feed the statistics and the synthesis estimator.
    """

    def __init__(self, words: int) -> None:
        if words < 2:
            raise ConfigurationError("RAM needs at least 2 words")
        self.words = words
        self._cells: List[Optional[Symbol]] = [None] * words
        self.reads = 0
        self.writes = 0

    def write(self, address: int, value: Symbol) -> None:
        """Write one word via port A."""
        self._check(address)
        self._cells[address] = value
        self.writes += 1

    def read(self, address: int) -> Symbol:
        """Read one word via port B."""
        self._check(address)
        value = self._cells[address]
        if value is None:
            raise SimulationError(f"read of uninitialized RAM word {address}")
        self.reads += 1
        return value

    def _check(self, address: int) -> None:
        if not 0 <= address < self.words:
            raise SimulationError(
                f"RAM address {address} outside 0..{self.words - 1}"
            )


class RamFifo:
    """A FIFO over dual-port RAM whose queued entries can be rewritten.

    ``depth`` is the number of storage words; the injector keeps the
    occupancy at its pipeline depth so every symbol spends a fixed number
    of cycles in flight (the device's ~250 ns latency, paper footnote 5).
    """

    def __init__(self, depth: int) -> None:
        self.ram = DualPortRam(depth)
        self.depth = depth
        self._head = 0  # next read position
        self._tail = 0  # next write position
        self._count = 0
        self.in_place_rewrites = 0
        #: Peak occupancy ever reached (telemetry occupancy gauge; the
        #: fused burst path reports via :meth:`note_occupancy`).
        self.high_watermark = 0

    @property
    def occupancy(self) -> int:
        return self._count

    def note_occupancy(self, occupancy: int) -> None:
        """Fold an externally observed occupancy into the watermark.

        The injector's fused burst path keeps the pipeline in a local
        list for speed; it reports the equivalent FIFO occupancy here so
        the ``device.fifo.high_watermark`` gauge stays truthful.
        """
        if occupancy > self.high_watermark:
            self.high_watermark = occupancy

    def account_passthrough(self, count: int) -> None:
        """Account RAM traffic for ``count`` symbols that logically
        transited the FIFO without being individually stored (fast-path
        bulk accounting): one write and one read per symbol, exactly
        what the per-step push/pop pair records.
        """
        self.ram.writes += count
        self.ram.reads += count

    @property
    def full(self) -> bool:
        return self._count == self.depth

    @property
    def empty(self) -> bool:
        return self._count == 0

    def push(self, value: Symbol) -> None:
        """Append one symbol (odd-cycle operation)."""
        if self.full:
            raise SimulationError("FIFO overflow: push on a full FIFO")
        self.ram.write(self._tail, value)
        self._tail = (self._tail + 1) % self.depth
        self._count += 1
        if self._count > self.high_watermark:
            self.high_watermark = self._count

    def pop(self) -> Symbol:
        """Remove and return the oldest symbol (odd-cycle operation)."""
        if self.empty:
            raise SimulationError("FIFO underflow: pop on an empty FIFO")
        value = self.ram.read(self._head)
        self._head = (self._head + 1) % self.depth
        self._count -= 1
        return value

    def peek_from_tail(self, offset: int) -> Symbol:
        """Read the entry ``offset`` positions back from the newest.

        ``offset=0`` is the most recently pushed symbol.
        """
        self._check_tail_offset(offset)
        address = (self._tail - 1 - offset) % self.depth
        return self.ram.read(address)

    def rewrite_from_tail(self, offset: int, value: Symbol) -> None:
        """Overwrite a queued entry in place (even-cycle inject, Fig. 3)."""
        self._check_tail_offset(offset)
        address = (self._tail - 1 - offset) % self.depth
        self.ram.write(address, value)
        self.in_place_rewrites += 1

    def drain(self) -> List[Symbol]:
        """Pop everything (pipeline flush at end of a traffic burst)."""
        out = []
        while not self.empty:
            out.append(self.pop())
        return out

    def _check_tail_offset(self, offset: int) -> None:
        if not 0 <= offset < self._count:
            raise SimulationError(
                f"tail offset {offset} outside occupied range "
                f"(occupancy {self._count})"
            )
