"""RS-232 serial line and the off-chip UART (paper §3.3).

"The universal asynchronous receiver/transmitter (UART) used to support
serial communication channels between the device and an external system
is off-loaded to a separate chip."  The model keeps that structure: a
:class:`SerialLine` carries bytes with real serialization delay (10 bit
times per byte, 8N1 framing) between the external control host and the
:class:`Uart` chip, which hands bytes to/from the FPGA's SPI.

The serialization delay matters: re-arming the injector over RS-232
takes on the order of a millisecond, which is what paces once-mode
injection campaigns (paper §3.3, "Match mode ... once").
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import ConfigurationError
from repro.sim.kernel import Simulator

#: Default RS-232 baud rate.
DEFAULT_BAUD = 115_200
#: Bits on the wire per byte with 8N1 framing (start + 8 data + stop).
BITS_PER_BYTE = 10
_PS_PER_SECOND = 1_000_000_000_000


class SerialLine:
    """A full-duplex RS-232 line carrying one byte at a time.

    Endpoints register byte handlers; ``send`` serializes each byte at
    the configured baud rate, queueing behind earlier bytes in the same
    direction.
    """

    def __init__(self, sim: Simulator, baud: int = DEFAULT_BAUD) -> None:
        if baud <= 0:
            raise ConfigurationError("baud rate must be positive")
        self._sim = sim
        self.baud = baud
        self.byte_time_ps = (BITS_PER_BYTE * _PS_PER_SECOND) // baud
        self._handlers: dict = {"a": None, "b": None}
        self._busy_until: dict = {"a": 0, "b": 0}
        self.bytes_carried = 0

    def attach(self, side: str, handler: Callable[[int], None]) -> None:
        """Register the byte handler for endpoint ``side`` ('a' or 'b')."""
        if side not in self._handlers:
            raise ConfigurationError(f"serial side must be 'a' or 'b': {side!r}")
        self._handlers[side] = handler

    def send(self, from_side: str, data: bytes) -> int:
        """Transmit bytes from one endpoint to the other.

        Returns the delivery time of the final byte.
        """
        if from_side not in self._handlers:
            raise ConfigurationError(f"serial side must be 'a' or 'b': {from_side!r}")
        to_side = "b" if from_side == "a" else "a"
        handler = self._handlers[to_side]
        if handler is None:
            raise ConfigurationError(f"no handler attached on side {to_side!r}")
        start = max(self._sim.now, self._busy_until[from_side])
        delivery = start
        for byte in data:
            delivery = start + self.byte_time_ps
            start = delivery
            self._sim.schedule_at(
                delivery,
                lambda b=byte, h=handler: h(b),
                label="serial-byte",
            )
            self.bytes_carried += 1
        self._busy_until[from_side] = delivery
        return delivery


class Uart:
    """The off-chip UART: bridges the serial line and the FPGA's SPI.

    Must be configured by the communications handler on boot before any
    traffic flows — the model enforces the paper's boot sequence.
    """

    def __init__(self, sim: Simulator, line: SerialLine, side: str = "b") -> None:
        self._sim = sim
        self._line = line
        self._side = side
        self._to_fpga: Optional[Callable[[int], None]] = None
        self.configured = False
        self.rx_bytes = 0
        self.tx_bytes = 0
        self.dropped_before_config = 0
        line.attach(side, self._on_line_byte)

    def configure(self, data_bits: int = 8, parity: Optional[str] = None,
                  stop_bits: int = 1) -> None:
        """Boot-time configuration written by the communications handler."""
        if data_bits != 8 or parity is not None or stop_bits != 1:
            raise ConfigurationError("the model supports 8N1 framing only")
        self.configured = True

    def attach_fpga(self, handler: Callable[[int], None]) -> None:
        """Register the FPGA-side (SPI) byte consumer."""
        self._to_fpga = handler

    def _on_line_byte(self, byte: int) -> None:
        if not self.configured or self._to_fpga is None:
            self.dropped_before_config += 1
            return
        self.rx_bytes += 1
        self._to_fpga(byte)

    def transmit(self, byte: int) -> None:
        """Send one byte from the FPGA out over the serial line."""
        if not self.configured:
            self.dropped_before_config += 1
            return
        self.tx_bytes += 1
        self._line.send(self._side, bytes([byte]))
