"""The output generator FSM (paper §3.3).

"The output generator is another FSM that generates ASCII codes for
transmission over the serial link."  It takes the decoder's response
strings, appends line termination, and feeds them byte-by-byte to the
communications handler for SPI framing.
"""

from __future__ import annotations

from typing import Callable


class OutputGenerator:
    """Serializes response strings into ASCII byte streams."""

    def __init__(self, emit_byte: Callable[[int], None]) -> None:
        self._emit_byte = emit_byte
        self.responses_sent = 0
        self.bytes_emitted = 0

    def send_response(self, text: str) -> None:
        """Emit one response line (terminated with ``\\n``)."""
        self.responses_sent += 1
        for char in text + "\n":
            code = ord(char)
            if code > 0x7F:
                code = ord("?")
            self._emit_byte(code)
            self.bytes_emitted += 1
