"""The FIFO injector entity (paper §3.3, Figures 2 and 3).

This is the heart of the device: the symbol stream passes through a
RAM-backed FIFO while a sliding compare window watches it.  The two-phase
contract is modelled explicitly:

* odd cycle — the incoming symbol is pushed onto the FIFO, the oldest
  symbol (once the pipeline is full) is popped toward the output
  circuitry, and the symbol is shifted into the compare registers;
* even cycle — the compare result is evaluated; on a trigger (pattern
  match in ``on``/``once`` mode, or an ``inject now`` pulse) the matched
  segment is rewritten *inside the FIFO* according to the corrupt mode.

Corruption applies to the FIFO entries corresponding to the compare
window — the four most recently pushed symbols.  If part of the window
has already left the FIFO (a match straddling the start of a traffic
burst) only the still-queued lanes are rewritten; the event records how
many lanes were out of reach.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.hw.clock import ClockPhase, TwoPhaseClock
from repro.hw.compare import CompareUnit
from repro.hw.fifo import RamFifo
from repro.hw.registers import (
    SEGMENT_LANES,
    CorruptMode,
    InjectorConfig,
    MatchMode,
)
from repro.myrinet.symbols import Symbol, control_symbol, data_symbol
from repro.telemetry import instrument as _telemetry
from repro.telemetry.state import STATE as _TELEMETRY_STATE

#: Default pipeline depth in symbols: a 3-cycle inject pipeline plus "a
#: few more 32-bit segments in the FIFO" — about 250 ns at the paper's
#: 12.5 ns character period (footnote 5).
DEFAULT_PIPELINE_DEPTH = 20

_MASK32 = 0xFFFF_FFFF


@dataclass
class InjectionEvent:
    """Record of one trigger firing."""

    segment_index: int
    window_before: int
    ctl_before: int
    window_after: int
    ctl_after: int
    lanes_rewritten: int
    lanes_unreachable: int
    forced: bool

    @property
    def changed(self) -> bool:
        """True if the corruption actually altered the stream."""
        return (
            self.window_before != self.window_after
            or self.ctl_before != self.ctl_after
        )


class FifoInjector:
    """One direction's injector pipeline."""

    def __init__(
        self,
        name: str = "fifo_inject",
        pipeline_depth: int = DEFAULT_PIPELINE_DEPTH,
    ) -> None:
        if pipeline_depth < SEGMENT_LANES:
            raise ValueError(
                f"pipeline depth must be >= {SEGMENT_LANES} so a matched "
                f"window is still queued"
            )
        self.name = name
        self.pipeline_depth = pipeline_depth
        self.clock = TwoPhaseClock()
        self.fifo = RamFifo(pipeline_depth + 1)
        self.compare = CompareUnit()
        self.config = InjectorConfig()
        self._inject_now = False
        self._once_fired = False
        self._segment_index = 0
        self._on_injection: Optional[Callable[[InjectionEvent], None]] = None

        # counters -------------------------------------------------------
        self.symbols_processed = 0
        self.injections = 0
        self.forced_injections = 0
        self.events: List[InjectionEvent] = []
        self.events_limit = 4096
        #: Output-stream positions rewritten during the most recent
        #: :meth:`process_burst` call (burst-relative, including any
        #: leftover FIFO contents flushed ahead of the burst).  The CRC
        #: fix-up stage uses these to mark exactly the frames an
        #: injection touched — not merely "some frame in this burst".
        #: Only meaningful immediately after ``process_burst``.
        self.last_burst_rewrites: List[int] = []
        self._rewrite_origin = 0

    # ------------------------------------------------------------------
    # configuration interface (driven by the command decoder)
    # ------------------------------------------------------------------

    def configure(self, config: InjectorConfig) -> None:
        """Load a full register file; re-arms ``once`` mode."""
        self.config = config
        self._once_fired = False

    def set_match_mode(self, mode: MatchMode) -> None:
        """Change the match mode; (re-)arms ``once`` mode."""
        self.config = self.config.copy(match_mode=mode)
        self._once_fired = False

    def inject_now(self) -> None:
        """Force an injection on the next even cycle (paper: Inject now)."""
        self._inject_now = True

    def on_injection(self, callback: Callable[[InjectionEvent], None]) -> None:
        """Register the monitoring callback."""
        self._on_injection = callback

    @property
    def inject_pending(self) -> bool:
        """True while an ``inject now`` pulse awaits its even cycle."""
        return self._inject_now

    @property
    def armed(self) -> bool:
        """True if the trigger can still fire."""
        if self._inject_now:
            return True
        if self.config.match_mode is MatchMode.OFF:
            return False
        if self.config.match_mode is MatchMode.ONCE and self._once_fired:
            return False
        return True

    def reset(self) -> None:
        """Device reset: clears state and configuration."""
        self.fifo.drain()
        self.compare.reset()
        self.config = InjectorConfig()
        self._inject_now = False
        self._once_fired = False

    # ------------------------------------------------------------------
    # data path
    # ------------------------------------------------------------------

    def step(self, symbol: Symbol) -> Optional[Symbol]:
        """Run one full odd/even cycle pair for one incoming symbol.

        Returns the symbol leaving the pipeline, or None while the
        pipeline is filling.
        """
        output = self._odd_cycle(symbol)
        self._even_cycle()
        return output

    def _odd_cycle(self, symbol: Symbol) -> Optional[Symbol]:
        self.clock.tick()
        self.clock.expect(ClockPhase.ODD)
        self.fifo.push(symbol)
        self.compare.shift(symbol)
        self.symbols_processed += 1
        self._segment_index += 1
        if self.fifo.occupancy > self.pipeline_depth:
            return self.fifo.pop()
        return None

    def _even_cycle(self) -> None:
        self.clock.tick()
        self.clock.expect(ClockPhase.EVEN)
        forced = self._inject_now
        if forced:
            self._inject_now = False
        triggered = forced
        if not triggered and self.config.match_mode is not MatchMode.OFF:
            if self.config.match_mode is MatchMode.ONCE and self._once_fired:
                triggered = False
            else:
                # The hardware compares whatever the registers hold —
                # including the reset-state zeros before four symbols
                # have shifted in; don't-care masks make this safe.
                triggered = self.compare.evaluate(self.config)
        if not triggered:
            return
        if self.config.match_mode is MatchMode.ONCE and not forced:
            self._once_fired = True
        self._apply_corruption(forced)

    def _apply_corruption(self, forced: bool) -> None:
        window_before, ctl_before = self.compare.snapshot()
        config = self.config
        if config.corrupt_mode is CorruptMode.TOGGLE:
            window_after = window_before ^ config.corrupt_data
        else:
            window_after = (
                (window_before & ~config.corrupt_mask)
                | (config.corrupt_data & config.corrupt_mask)
            ) & _MASK32
        ctl_after = (
            (ctl_before & ~config.corrupt_ctl_mask)
            | (config.corrupt_ctl & config.corrupt_ctl_mask)
        ) & 0xF

        lanes_rewritten = 0
        lanes_unreachable = 0
        for lane in range(SEGMENT_LANES):
            old_byte = (window_before >> (8 * lane)) & 0xFF
            new_byte = (window_after >> (8 * lane)) & 0xFF
            old_ctl = (ctl_before >> lane) & 1
            new_ctl = (ctl_after >> lane) & 1
            if old_byte == new_byte and old_ctl == new_ctl:
                continue
            if lane >= self.fifo.occupancy:
                # Already left the FIFO (match straddled a burst start).
                lanes_unreachable += 1
                continue
            replacement = (
                data_symbol(new_byte) if new_ctl else control_symbol(new_byte)
            )
            self.fifo.rewrite_from_tail(lane, replacement)
            lanes_rewritten += 1
            # Burst-relative output position of the rewritten symbol:
            # _segment_index counts pushes, so subtracting the origin
            # (pushes at burst start minus the pre-burst occupancy)
            # yields the index in the burst's flushed output stream.
            self.last_burst_rewrites.append(
                self._segment_index - 1 - lane - self._rewrite_origin
            )

        self.injections += 1
        if forced:
            self.forced_injections += 1
        event = InjectionEvent(
            segment_index=self._segment_index,
            window_before=window_before,
            ctl_before=ctl_before,
            window_after=window_after,
            ctl_after=ctl_after,
            lanes_rewritten=lanes_rewritten,
            lanes_unreachable=lanes_unreachable,
            forced=forced,
        )
        if len(self.events) < self.events_limit:
            self.events.append(event)
        if _TELEMETRY_STATE.active:
            _telemetry.injection(self.name, event)
        if self._on_injection is not None:
            self._on_injection(event)

    def process_burst(self, burst: List[Symbol]) -> List[Symbol]:
        """Run a whole traffic burst through the pipeline and flush it.

        The pipeline drains at the end of each burst — in hardware the
        inter-burst IDLE stream clocks the queued symbols out; the
        device model accounts for the fixed transit latency in time
        instead (see :mod:`repro.core.device`).

        Because the FIFO is empty at every burst boundary, the burst is
        processed with a fused equivalent of :meth:`step` (one tight
        loop, a local list standing in for the drained-empty FIFO); the
        per-phase semantics are identical and are cross-checked against
        the explicit two-phase path by the unit tests.
        """
        self.last_burst_rewrites = []
        self._rewrite_origin = self._segment_index - self.fifo.occupancy
        if not self.armed and self.fifo.empty:
            # Fast path: a disarmed injector is a transparent pipe.
            self.symbols_processed += len(burst)
            self._segment_index += len(burst)
            return list(burst)
        if not self.fifo.empty:
            # step() was used directly before this burst; stay on the
            # exact cycle-accurate path to preserve FIFO contents.
            output: List[Symbol] = []
            for symbol in burst:
                out = self.step(symbol)
                if out is not None:
                    output.append(out)
            output.extend(self.fifo.drain())
            return output
        return self._process_burst_fused(burst)

    def advance_passthrough(
        self,
        count: int,
        *,
        armed: bool,
        tail_values: bytes = b"",
        tail_flags: bytes = b"",
    ) -> None:
        """Bulk-account ``count`` pass-through symbols (fast-path entry).

        The fast path calls this for a stretch it has *proven* contains
        no trigger activity (no match, no pending ``inject now``, FIFO
        empty at the stretch start).  The bookkeeping mirrors exactly
        what the scalar path would have recorded:

        * ``armed=False`` — the disarmed transparent-pipe branch of
          :meth:`process_burst`: only the symbol counters move (the
          scalar path touches neither clock, compare registers, nor RAM
          for a disarmed burst).
        * ``armed=True`` — the fused branch with zero matches: clock,
          compare window/ctl (reconstructed from the stretch's last
          ``min(4, count)`` symbols in ``tail_values``/``tail_flags``),
          shift and evaluation counts, RAM traffic and the FIFO
          watermark all advance as if every symbol had been stepped.
        """
        if count <= 0:
            return
        self.symbols_processed += count
        self._segment_index += count
        if not armed:
            return
        self.clock.advance(count)
        self.compare.bulk_shift(tail_values, tail_flags, count)
        self.compare.evaluations += count
        self.fifo.account_passthrough(count)
        self.fifo.note_occupancy(min(count, self.pipeline_depth + 1))

    def _process_burst_fused(self, burst: List[Symbol]) -> List[Symbol]:
        config = self.config
        window, ctl = self.compare.snapshot()
        filled = self.compare._filled
        mode_on = config.match_mode is MatchMode.ON
        mode_once = config.match_mode is MatchMode.ONCE
        cd = config.compare_data
        cm = config.compare_mask
        cc = config.compare_ctl
        ccm = config.compare_ctl_mask
        pipeline: List[Symbol] = []
        output: List[Symbol] = []
        out_append = output.append
        pipe_append = pipeline.append
        depth = self.pipeline_depth
        segment = self._segment_index
        matches = 0
        evaluations = 0
        pop_at = 0  # index of next symbol to leave the pipeline

        for symbol in burst:
            # --- odd cycle: push, pop, shift -----------------------------
            pipe_append(symbol)
            if len(pipeline) - pop_at > depth:
                out_append(pipeline[pop_at])
                pop_at += 1
            window = ((window << 8) | symbol.value) & 0xFFFF_FFFF
            ctl = ((ctl << 1) | (1 if symbol.is_data else 0)) & 0xF
            if filled < SEGMENT_LANES:
                filled += 1
            segment += 1
            # --- even cycle: compare, maybe inject -----------------------
            forced = self._inject_now
            if forced:
                self._inject_now = False
                triggered = True
            elif mode_on or (mode_once and not self._once_fired):
                evaluations += 1
                if ((window ^ cd) & cm) == 0 and ((ctl ^ cc) & ccm) == 0:
                    matches += 1
                    triggered = True
                else:
                    triggered = False
            else:
                triggered = False
            if not triggered:
                continue
            if mode_once and not forced:
                self._once_fired = True
            # Corruption rewrites the queued FIFO entries; the compare
            # registers keep holding the as-received stream, exactly as
            # in the per-step path.
            self._corrupt_pipeline_tail(
                pipeline, pop_at, window, ctl, forced, segment
            )

        # flush the pipeline
        output.extend(pipeline[pop_at:])
        # bulk-update the bookkeeping the per-step path maintains
        count = len(burst)
        self.symbols_processed += count
        self._segment_index = segment
        self.clock._cycles += 2 * count
        self.compare._window = window
        self.compare._ctl = ctl
        self.compare._filled = filled
        self.compare.shifts += count
        self.compare.evaluations += evaluations
        self.compare.matches += matches
        self.fifo.ram.writes += count
        self.fifo.ram.reads += count
        # The per-step path pushes before popping, so its occupancy
        # transiently reaches depth + 1 (the FIFO holds depth + 1 words);
        # mirror that in the watermark, not the post-pop steady state.
        self.fifo.note_occupancy(min(count, depth + 1))
        return output

    def _corrupt_pipeline_tail(
        self,
        pipeline: List[Symbol],
        pop_at: int,
        window: int,
        ctl: int,
        forced: bool,
        segment: int,
    ) -> None:
        """Corrupt the window's lanes inside the fused-path pipeline."""
        config = self.config
        if config.corrupt_mode is CorruptMode.TOGGLE:
            window_after = window ^ config.corrupt_data
        else:
            window_after = (
                (window & ~config.corrupt_mask)
                | (config.corrupt_data & config.corrupt_mask)
            ) & _MASK32
        ctl_after = (
            (ctl & ~config.corrupt_ctl_mask)
            | (config.corrupt_ctl & config.corrupt_ctl_mask)
        ) & 0xF
        lanes_rewritten = 0
        lanes_unreachable = 0
        occupancy = len(pipeline) - pop_at
        for lane in range(SEGMENT_LANES):
            old_byte = (window >> (8 * lane)) & 0xFF
            new_byte = (window_after >> (8 * lane)) & 0xFF
            old_ctl = (ctl >> lane) & 1
            new_ctl = (ctl_after >> lane) & 1
            if old_byte == new_byte and old_ctl == new_ctl:
                continue
            if lane >= occupancy:
                lanes_unreachable += 1
                continue
            replacement = (
                data_symbol(new_byte) if new_ctl else control_symbol(new_byte)
            )
            pipeline[len(pipeline) - 1 - lane] = replacement
            lanes_rewritten += 1
            self.fifo.in_place_rewrites += 1
            self.last_burst_rewrites.append(
                segment - 1 - lane - self._rewrite_origin
            )
        self.injections += 1
        if forced:
            self.forced_injections += 1
        event = InjectionEvent(
            segment_index=segment,
            window_before=window,
            ctl_before=ctl,
            window_after=window_after,
            ctl_after=ctl_after,
            lanes_rewritten=lanes_rewritten,
            lanes_unreachable=lanes_unreachable,
            forced=forced,
        )
        if len(self.events) < self.events_limit:
            self.events.append(event)
        if _TELEMETRY_STATE.active:
            _telemetry.injection(self.name, event)
        if self._on_injection is not None:
            self._on_injection(event)

    @property
    def stats(self) -> dict:
        """Counter snapshot for the ST command and campaign reports."""
        return {
            "symbols_processed": self.symbols_processed,
            "compare_matches": self.compare.matches,
            "injections": self.injections,
            "forced_injections": self.forced_injections,
            "cycles": self.clock.cycles,
            "fifo_rewrites": self.fifo.in_place_rewrites,
            "fifo_high_watermark": self.fifo.high_watermark,
        }
