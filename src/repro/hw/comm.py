"""The communications handler (paper §3.3).

"The communications handler configures the UART on boot-up and handles
any interrupts coming from the UART or the internal logic.  This entity
assembles data in the 16-bit SPI protocol format from 8-bit ASCII codes
received from the output generator.  Data in the payload is stripped
from incoming packets and applied to the command decoder."

The model wires the full chain: serial line → UART chip → SPI frames →
this handler → command decoder, and in the reverse direction output
generator → this handler → SPI → UART → serial line.
"""

from __future__ import annotations

from repro.hw.decoder import CommandDecoder, DecoderTarget
from repro.hw.outputgen import OutputGenerator
from repro.hw.spi import Spi
from repro.hw.uart import SerialLine, Uart
from repro.sim.kernel import Simulator


class CommunicationsHandler:
    """Boot-time glue and steady-state byte routing for the control path."""

    def __init__(
        self,
        sim: Simulator,
        line: SerialLine,
        target: DecoderTarget,
    ) -> None:
        self.uart = Uart(sim, line, side="b")
        self.spi = Spi()
        self.decoder = CommandDecoder(target, self._respond)
        self.output_generator = OutputGenerator(self.spi.send_byte)
        self.interrupts_handled = 0

        # Boot sequence: configure the UART, then wire the byte paths.
        self.uart.configure(data_bits=8, parity=None, stop_bits=1)
        self.uart.attach_fpga(self.spi.from_uart)
        self.spi.attach_handler(self._on_command_byte)
        self.spi.attach_uart(self.uart.transmit)

    def _on_command_byte(self, byte: int) -> None:
        """UART interrupt: one command character arrived."""
        self.interrupts_handled += 1
        self.decoder.on_char(byte)

    def _respond(self, text: str) -> None:
        """Decoder interrupt: a response line is ready to transmit."""
        self.interrupts_handled += 1
        self.output_generator.send_response(text)
