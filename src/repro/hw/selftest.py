"""Power-on self-test (paper §3.5).

"After verifying the ability of the injector to communicate (i.e.,
accept commands) via a serial interface with the external system, the
performance impact of the fault injector in pass-through mode was
evaluated."  Before that verification can mean anything, the board has
to trust its own logic; :func:`run_selftest` is that power-on check:

* a walking-ones/zeros test over the dual-port RAM;
* FIFO ordering and in-place rewrite;
* compare-unit match/mask behaviour;
* a full injector micro-pipeline check (replace + toggle).

The command decoder exposes it as the ``PT`` command.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.hw.compare import CompareUnit
from repro.hw.fifo import DualPortRam, RamFifo
from repro.hw.injector import FifoInjector
from repro.hw.registers import CorruptMode, InjectorConfig, MatchMode
from repro.myrinet.symbols import data_symbol, data_symbols, symbol_bytes


@dataclass
class SelfTestReport:
    """Outcome of one power-on self-test."""

    results: Dict[str, bool] = field(default_factory=dict)
    details: List[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return bool(self.results) and all(self.results.values())

    def record(self, name: str, ok: bool, detail: str = "") -> None:
        self.results[name] = ok
        if detail:
            self.details.append(f"{name}: {detail}")

    def summary(self) -> str:
        """The one-line form the PT command responds with."""
        parts = [
            f"{name}={'pass' if ok else 'FAIL'}"
            for name, ok in self.results.items()
        ]
        return " ".join(parts)


def _test_ram(report: SelfTestReport, words: int = 64) -> None:
    ram = DualPortRam(words)
    ok = True
    for pattern in (0x00, 0xFF, 0x55, 0xAA):
        for address in range(words):
            ram.write(address, data_symbol((pattern + address) & 0xFF))
        for address in range(words):
            if ram.read(address).value != (pattern + address) & 0xFF:
                ok = False
    # Walking ones across one word.
    for bit in range(8):
        ram.write(0, data_symbol(1 << bit))
        if ram.read(0).value != 1 << bit:
            ok = False
    report.record("ram", ok, f"{words} words, 4 patterns + walking ones")


def _test_fifo(report: SelfTestReport, depth: int = 16) -> None:
    fifo = RamFifo(depth)
    ok = True
    for value in range(depth):
        fifo.push(data_symbol(value))
    fifo.rewrite_from_tail(0, data_symbol(0xEE))
    drained = [s.value for s in fifo.drain()]
    if drained != list(range(depth - 1)) + [0xEE]:
        ok = False
    report.record("fifo", ok, f"depth {depth}, order + rewrite")


def _test_compare(report: SelfTestReport) -> None:
    unit = CompareUnit()
    for byte in b"\x12\x34\x56\x78":
        unit.shift(data_symbol(byte))
    exact = unit.evaluate(InjectorConfig(compare_data=0x12345678,
                                         compare_mask=0xFFFFFFFF))
    masked = unit.evaluate(InjectorConfig(compare_data=0x00005678,
                                          compare_mask=0x0000FFFF))
    mismatch = unit.evaluate(InjectorConfig(compare_data=0x12345679,
                                            compare_mask=0xFFFFFFFF))
    report.record("cmp", exact and masked and not mismatch,
                  "exact + don't-care + mismatch")


def _test_inject(report: SelfTestReport) -> None:
    replace = FifoInjector(pipeline_depth=8)
    replace.configure(InjectorConfig(
        match_mode=MatchMode.ON, compare_data=0x18, compare_mask=0xFF,
        corrupt_mode=CorruptMode.REPLACE, corrupt_data=0x19,
        corrupt_mask=0xFF,
    ))
    replaced = symbol_bytes(replace.process_burst(data_symbols(b"\x18\x20")))
    toggle = FifoInjector(pipeline_depth=8)
    toggle.configure(InjectorConfig(
        match_mode=MatchMode.ON, compare_data=0x18, compare_mask=0xFF,
        corrupt_mode=CorruptMode.TOGGLE, corrupt_data=0x01,
    ))
    toggled = symbol_bytes(toggle.process_burst(data_symbols(b"\x18\x20")))
    report.record("inj",
                  replaced == b"\x19\x20" and toggled == b"\x19\x20",
                  "replace + toggle micro-pipeline")


def run_selftest() -> SelfTestReport:
    """Run the complete power-on self-test."""
    report = SelfTestReport()
    _test_ram(report)
    _test_fifo(report)
    _test_compare(report)
    _test_inject(report)
    return report
