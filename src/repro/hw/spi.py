"""SPI entity (paper §3.3).

"SPI serializes the data for transmission to the UART and converts the
received data into parallel form to be accessible by the communication
handler."  The communications handler "assembles data in the 16-bit SPI
protocol format from 8-bit ASCII codes".

The 16-bit frame format used here::

    [15:12] sync nibble 0xA
    [11:9]  reserved (0)
    [8]     even parity over the data byte
    [7:0]   data byte

Frames with a bad sync nibble or parity are dropped and counted — a unit
test injects bit errors into the control path itself to check this.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import ProtocolError

_SYNC = 0xA


def _parity(byte: int) -> int:
    """Even parity bit over eight data bits."""
    return bin(byte & 0xFF).count("1") & 1


def encode_frame(byte: int) -> int:
    """Wrap one data byte into a 16-bit SPI frame."""
    if not 0 <= byte <= 0xFF:
        raise ProtocolError(f"SPI payload {byte!r} is not a byte")
    return (_SYNC << 12) | (_parity(byte) << 8) | byte


def decode_frame(frame: int) -> int:
    """Extract the data byte; raises :class:`ProtocolError` on a bad frame."""
    if not 0 <= frame <= 0xFFFF:
        raise ProtocolError(f"SPI frame {frame!r} is not 16 bits")
    if (frame >> 12) != _SYNC:
        raise ProtocolError(f"SPI frame {frame:#06x}: bad sync nibble")
    byte = frame & 0xFF
    if ((frame >> 8) & 1) != _parity(byte):
        raise ProtocolError(f"SPI frame {frame:#06x}: parity error")
    return byte


class Spi:
    """The FPGA's SPI entity: byte <-> 16-bit frame conversion."""

    def __init__(self) -> None:
        self._to_handler: Optional[Callable[[int], None]] = None
        self._to_uart: Optional[Callable[[int], None]] = None
        self.frames_in = 0
        self.frames_out = 0
        self.frame_errors = 0

    def attach_handler(self, handler: Callable[[int], None]) -> None:
        """Register the communications-handler byte consumer."""
        self._to_handler = handler

    def attach_uart(self, transmit: Callable[[int], None]) -> None:
        """Register the UART transmit function."""
        self._to_uart = transmit

    def from_uart(self, byte: int) -> None:
        """A byte arrived from the UART: frame it and pass it inward."""
        frame = encode_frame(byte)
        self.receive_frame(frame)

    def receive_frame(self, frame: int) -> None:
        """Deliver one 16-bit frame to the communications handler."""
        self.frames_in += 1
        try:
            byte = decode_frame(frame)
        except ProtocolError:
            self.frame_errors += 1
            return
        if self._to_handler is not None:
            self._to_handler(byte)

    def send_byte(self, byte: int) -> None:
        """Serialize one byte toward the UART."""
        frame = encode_frame(byte)
        self.frames_out += 1
        if self._to_uart is not None:
            self._to_uart(decode_frame(frame))
