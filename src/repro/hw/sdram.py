"""External SDRAM capture memory (paper §3.4).

"The external memory is large enough to hold a significant amount of
network traffic (for later transmission and analysis) and has the
bandwidth to accept at least one of the target network streams (roughly
1 Gb/s).  SDRAM running at 125 MHz was chosen..."

The model tracks capacity and sustained-bandwidth accounting: writes that
would exceed the configured bandwidth within their arrival window are
dropped and counted, as are writes beyond capacity.  Monitoring captures
(:mod:`repro.core.monitor`) store their records here.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from repro.errors import ConfigurationError

#: Default capacity: 32 MiB, in line with late-90s SDRAM parts.
DEFAULT_CAPACITY_BYTES = 32 * 1024 * 1024
#: Default sustained write bandwidth: 125 MHz x 16-bit = 250 MB/s.
DEFAULT_BANDWIDTH_BYTES_PER_S = 250_000_000

_PS_PER_SECOND = 1_000_000_000_000


class SdramBuffer:
    """Bounded, bandwidth-accounted record storage."""

    #: How far the write queue may lag behind the stream before new
    #: records are shed (1 ms of backlog).
    MAX_BACKLOG_PS = 1_000_000_000

    def __init__(
        self,
        capacity_bytes: int = DEFAULT_CAPACITY_BYTES,
        bandwidth_bytes_per_s: int = DEFAULT_BANDWIDTH_BYTES_PER_S,
    ) -> None:
        if capacity_bytes <= 0 or bandwidth_bytes_per_s <= 0:
            raise ConfigurationError("capacity and bandwidth must be positive")
        self.capacity_bytes = capacity_bytes
        self.bandwidth_bytes_per_s = bandwidth_bytes_per_s
        self._records: List[Tuple[int, Any]] = []
        self._bytes_used = 0
        self._write_frontier_ps = 0
        self.records_stored = 0
        self.records_dropped_capacity = 0
        self.records_dropped_bandwidth = 0
        self.bytes_dropped = 0
        self.peak_backlog_ps = 0
        self._last_backlog_ps = 0

    @property
    def bytes_used(self) -> int:
        return self._bytes_used

    @property
    def backlog_ps(self) -> int:
        """How far the write queue currently lags the last stored record."""
        return self._last_backlog_ps

    @property
    def stats(self) -> Dict[str, int]:
        """Capture-loss visibility: stores, drops, sheds, backlog."""
        return {
            "records_stored": self.records_stored,
            "records_dropped_capacity": self.records_dropped_capacity,
            "records_dropped_bandwidth": self.records_dropped_bandwidth,
            "bytes_used": self._bytes_used,
            "bytes_dropped": self.bytes_dropped,
            "peak_backlog_ps": self.peak_backlog_ps,
        }

    @property
    def records(self) -> List[Tuple[int, Any]]:
        """Stored (timestamp, record) pairs in arrival order."""
        return list(self._records)

    def store(self, time_ps: int, record: Any, size_bytes: int) -> bool:
        """Store one record arriving at ``time_ps``.

        Returns False (and counts the drop) if capacity or sustained
        bandwidth would be exceeded.
        """
        if self._bytes_used + size_bytes > self.capacity_bytes:
            self.records_dropped_capacity += 1
            self.bytes_dropped += size_bytes
            return False
        write_duration = (size_bytes * _PS_PER_SECOND) // self.bandwidth_bytes_per_s
        start = max(time_ps, self._write_frontier_ps)
        backlog = start - time_ps
        if backlog > self.peak_backlog_ps:
            self.peak_backlog_ps = backlog
        if backlog > self.MAX_BACKLOG_PS:
            # The write queue has fallen hopelessly behind the stream.
            self.records_dropped_bandwidth += 1
            self.bytes_dropped += size_bytes
            return False
        self._last_backlog_ps = backlog
        self._write_frontier_ps = start + write_duration
        self._bytes_used += size_bytes
        self._records.append((time_ps, record))
        self.records_stored += 1
        return True

    def clear(self) -> None:
        """Erase the memory (campaign reset).

        Drop/shed counters survive a clear — they are campaign-level
        loss evidence, not buffer contents.
        """
        self._records.clear()
        self._bytes_used = 0
        self._write_frontier_ps = 0
        self._last_backlog_ps = 0

    def __len__(self) -> int:
        return len(self._records)
