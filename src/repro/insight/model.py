"""Report schema of the incident-correlation engine.

Everything :func:`repro.insight.correlate.analyze_artifacts` produces is
expressed with the dataclasses here and serialized through one pair of
choke points — :func:`canonical_json` and :meth:`IncidentReport.digest`
— so a report is **byte-stable**: the same campaign artifacts yield the
same canonical JSON (and the same BLAKE2b digest) on every machine, at
any worker count.  Two rules make that hold:

* nothing wall-clock-derived enters the report (spans contribute their
  *sim-time* intervals only; ``wall_ns`` fields are dropped at the
  join);
* every collection is emitted in a deterministic order (sorted keys,
  index-sorted incidents, tier-sorted hypotheses).

The schema is versioned (:data:`REPORT_VERSION`); consumers should
reject reports whose version they do not understand rather than guess.
:data:`FEATURES` fixes the name *and order* of the numeric feature
vector used by the sqlite similarity store.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

__all__ = [
    "REPORT_FORMAT",
    "REPORT_VERSION",
    "FEATURES",
    "TimelineEntry",
    "Hypothesis",
    "BlastRadius",
    "Incident",
    "IncidentReport",
    "canonical_json",
]

#: Identifies the document type in the serialized report.
REPORT_FORMAT = "repro.insight-report"
#: Bump on any backwards-incompatible schema change.
REPORT_VERSION = 1

#: Fixed name/order of the similarity feature vector.  Appending is a
#: compatible change (missing keys read as 0.0); reordering or renaming
#: is not.
FEATURES: Tuple[str, ...] = (
    "injections",
    "captures",
    "windows",
    "marks_matched",
    "lanes_rewritten",
    "crc_broken_frames",
    "udp_broken_frames",
    "udp_valid_despite_hit",
    "frames_decoded",
    "hit_frames",
    "sdram_dropped_capacity",
    "sdram_dropped_bandwidth",
    "stage_drops",
    "stage_udp_checksum_drops",
    "stage_host_sends",
    "stage_delivers",
    "events",
    "fault_class_active",
    "fault_class_passive",
    "latency_p50_ns",
    "latency_p95_ns",
    "latency_p99_ns",
)


def canonical_json(document: Any) -> str:
    """The one canonical serialization: sorted keys, no whitespace."""
    return json.dumps(
        document, sort_keys=True, separators=(",", ":"), allow_nan=False
    )


@dataclass
class TimelineEntry:
    """One event on an incident's reconstructed sim-time timeline."""

    #: Sim time in picoseconds; ``None`` sorts first (unplaced entries).
    time_ps: Optional[int]
    #: Entry kind: ``phase`` | ``inject`` | ``window`` | ``drop`` |
    #: ``shed`` | ``udp_checksum_drop``.
    kind: str
    label: str
    detail: Dict[str, Any] = field(default_factory=dict)

    def sort_key(self) -> Tuple[int, int, str, str]:
        """Deterministic ordering: sim time, then kind, then label."""
        placed = 0 if self.time_ps is not None else -1
        return (placed, self.time_ps or 0, self.kind, self.label)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "time_ps": self.time_ps,
            "kind": self.kind,
            "label": self.label,
            "detail": dict(self.detail),
        }


@dataclass
class Hypothesis:
    """One ranked symptom->cause candidate.

    ``tier_counts`` holds the evidence counts per tier (``marks``,
    ``crc``, ``udp``, ``drops``); ranking is *lexicographic* over the
    tiers in that order, so a single injection mark outranks any number
    of CRC verdicts, which outrank any number of UDP anomalies, which
    outrank any number of drop/shed deltas.  ``score`` is a scalar
    rendering of the same ordering for display only.
    """

    cause: str
    description: str
    tier_counts: Dict[str, int]
    score: int
    evidence: List[str] = field(default_factory=list)

    def sort_key(self) -> Tuple[int, int, int, int]:
        """The lexicographic tier tuple (higher wins)."""
        return (
            self.tier_counts.get("marks", 0),
            self.tier_counts.get("crc", 0),
            self.tier_counts.get("udp", 0),
            self.tier_counts.get("drops", 0),
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "cause": self.cause,
            "description": self.description,
            "tier_counts": dict(self.tier_counts),
            "score": self.score,
            "evidence": list(self.evidence),
        }


@dataclass
class BlastRadius:
    """Which host conversations crossed the corrupted segment.

    ``segment`` names the instrumented link (host side, switch side,
    affected directions); ``pairs`` lists every ordered ``src -> dst``
    host pair whose route traverses that link in an affected direction,
    with the source-route ports the conversation uses.
    """

    segment: Dict[str, Any] = field(default_factory=dict)
    pairs: List[Dict[str, Any]] = field(default_factory=list)
    note: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return {
            "segment": dict(self.segment),
            "pairs": [dict(p) for p in self.pairs],
            "note": self.note,
        }


@dataclass
class Incident:
    """Everything the engine reconstructed about one experiment."""

    index: int
    name: str
    seed: Optional[int] = None
    fault_class: str = "unknown"
    evidence: List[str] = field(default_factory=list)
    #: The capture<->telemetry join result: merged-shard key, phase
    #: intervals in sim time.  Wall-clock span fields never enter.
    span: Dict[str, Any] = field(default_factory=dict)
    #: ``[lo, hi]`` sim-time interval of the observed fault activity.
    fault_window_ps: Optional[List[int]] = None
    windows: List[Dict[str, Any]] = field(default_factory=list)
    stage_counts: Dict[str, int] = field(default_factory=dict)
    timeline: List[TimelineEntry] = field(default_factory=list)
    timeline_truncated: int = 0
    blast_radius: BlastRadius = field(default_factory=BlastRadius)
    hypotheses: List[Hypothesis] = field(default_factory=list)
    features: Dict[str, float] = field(default_factory=dict)

    @property
    def top_cause(self) -> Optional[str]:
        """Cause string of the highest-ranked hypothesis, if any."""
        return self.hypotheses[0].cause if self.hypotheses else None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "name": self.name,
            "seed": self.seed,
            "fault_class": self.fault_class,
            "evidence": list(self.evidence),
            "span": dict(self.span),
            "fault_window_ps": (
                None if self.fault_window_ps is None
                else list(self.fault_window_ps)
            ),
            "windows": [dict(w) for w in self.windows],
            "stage_counts": dict(self.stage_counts),
            "timeline": [t.to_dict() for t in self.timeline],
            "timeline_truncated": self.timeline_truncated,
            "blast_radius": self.blast_radius.to_dict(),
            "hypotheses": [h.to_dict() for h in self.hypotheses],
            "top_cause": self.top_cause,
            "features": {k: self.features[k] for k in sorted(self.features)},
        }


@dataclass
class IncidentReport:
    """The versioned, byte-stable output of one ``insight analyze``."""

    label: str
    campaign: Dict[str, Any] = field(default_factory=dict)
    incidents: List[Incident] = field(default_factory=list)
    degradations: List[str] = field(default_factory=list)
    counts: Dict[str, int] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "format": REPORT_FORMAT,
            "version": REPORT_VERSION,
            "label": self.label,
            "campaign": dict(self.campaign),
            "incidents": [
                i.to_dict()
                for i in sorted(self.incidents, key=lambda i: i.index)
            ],
            "degradations": list(self.degradations),
            "counts": dict(self.counts),
        }

    def canonical_json(self) -> str:
        """The canonical serialization the digest is computed over."""
        return canonical_json(self.to_dict())

    def digest(self) -> str:
        """BLAKE2b-128 hex digest of the canonical JSON."""
        return hashlib.blake2b(
            self.canonical_json().encode("utf-8"), digest_size=16
        ).hexdigest()

    def feature_vector(self) -> Dict[str, float]:
        """Campaign-level feature vector: per-incident features summed.

        Campaign-wide features (the latency quantiles) are injected by
        the correlator into every report under the same keys; summing
        per-incident dicts keeps the vector's shape fixed either way.
        Keys follow :data:`FEATURES`; absent features read 0.0.
        """
        out: Dict[str, float] = {name: 0.0 for name in FEATURES}
        for incident in self.incidents:
            for name, value in incident.features.items():
                out[name] = out.get(name, 0.0) + float(value)
        for name, value in self.campaign.get("features", {}).items():
            out[name] = out.get(name, 0.0) + float(value)
        return out

    def render_text(self) -> str:
        """Human-readable report (the ``insight report`` command)."""
        lines = [
            f"incident report: {self.label} "
            f"(schema v{REPORT_VERSION}, digest {self.digest()})",
            f"  campaign: {self.campaign.get('name', '?')} "
            f"[{self.campaign.get('source', '?')} layout] "
            f"{len(self.incidents)} incident(s)",
        ]
        for incident in sorted(self.incidents, key=lambda i: i.index):
            lines.append(
                f"[{incident.index}] {incident.name} "
                f"-> {incident.fault_class}"
            )
            if incident.fault_window_ps:
                lo, hi = incident.fault_window_ps
                lines.append(f"  fault window: {lo} .. {hi} ps")
            for rank, hypothesis in enumerate(incident.hypotheses, 1):
                marker = "*" if rank == 1 else " "
                lines.append(
                    f"  {marker} #{rank} {hypothesis.cause} "
                    f"(score {hypothesis.score}): "
                    f"{hypothesis.description}"
                )
            radius = incident.blast_radius
            if radius.pairs:
                rendered = ", ".join(
                    f"{p['src']}->{p['dst']}" for p in radius.pairs
                )
                lines.append(f"  blast radius: {rendered}")
            elif radius.note:
                lines.append(f"  blast radius: {radius.note}")
        if self.degradations:
            lines.append(f"degraded ({len(self.degradations)}):")
            for note in self.degradations:
                lines.append(f"  - {note}")
        return "\n".join(lines)
