"""repro.insight — offline incident correlation and failure analysis.

The observability capstone of the reproduction (ROADMAP item 5, the
paper's "failure analysis" endgame): where :mod:`repro.telemetry` and
:mod:`repro.capture` *record* what happened, this package *explains*
it.  Given one campaign's artifact directory, the engine

* joins decoded ``.rcap`` capture windows to telemetry spans via the
  correlation ids the capture session stamped at run time;
* reconstructs a per-incident sim-time timeline (phases, injections,
  capture windows, drops);
* computes the **blast radius** over the Figure 10 route graph — which
  host pairs crossed the corrupted segment in the affected direction;
* ranks symptom->cause hypotheses with a deterministic lexicographic
  scorer (injection marks > CRC verdicts > UDP anomalies > drop/shed
  deltas);
* persists the versioned, byte-stable :class:`IncidentReport` into a
  sqlite :class:`InsightStore` that answers "which past campaign looked
  like this one" by feature-vector cosine distance.

Entry points: :func:`analyze_artifacts` (the engine),
:class:`InsightStore` (the archive), and ``repro.cli insight
analyze|report|similar`` (the command line).  See docs/insight.md.
"""

from repro.insight.correlate import (
    CampaignArtifacts,
    analyze_artifacts,
    load_artifacts,
)
from repro.insight.model import (
    FEATURES,
    REPORT_FORMAT,
    REPORT_VERSION,
    BlastRadius,
    Hypothesis,
    Incident,
    IncidentReport,
    TimelineEntry,
    canonical_json,
)
from repro.insight.rank import TIER_ORDER, build_hypotheses
from repro.insight.store import InsightStore, cosine_distance
from repro.insight.store_ingest import crosscheck_report

__all__ = [
    "analyze_artifacts",
    "load_artifacts",
    "CampaignArtifacts",
    "IncidentReport",
    "Incident",
    "Hypothesis",
    "BlastRadius",
    "TimelineEntry",
    "InsightStore",
    "build_hypotheses",
    "cosine_distance",
    "crosscheck_report",
    "canonical_json",
    "FEATURES",
    "TIER_ORDER",
    "REPORT_FORMAT",
    "REPORT_VERSION",
]
