"""Artifact ingestion and the capture<->telemetry<->topology join.

This is the engine behind ``repro.cli insight analyze``: it loads one
campaign's artifact directory, joins the three observation planes, and
emits the byte-stable :class:`~repro.insight.model.IncidentReport`.

**Layouts.**  Both artifact layouts are accepted:

* *engine* — ``root/telemetry/metrics.json`` + ``spans.jsonl``,
  ``root/capture/capture.rcap``, ``root/spec.json`` (written by the
  campaign executors);
* *flat* (legacy serial sessions) — ``metrics.json``, ``spans.jsonl``,
  ``capture.rcap`` side by side in one directory.

**The join.**  Each experiment marker in the capture file carries the
``span_id`` of the telemetry ``experiment`` span it ran under.  In a
merged (engine) campaign, span ids restart per shard, so the join key
is ``(shard, span_id)`` where ``shard`` is the campaign-global
experiment index stamped by the artifact merge; a flat layout joins on
``span_id`` alone.  Phase intervals (settle/injection/workload/drain)
come from the span's children — *sim time only*; wall-clock fields
never enter the report, which is what keeps it byte-stable across
worker counts and machines.

**Degradation.**  Missing or torn inputs never crash the analysis:
every gap is recorded in ``report.degradations``, counted on the
``insight.degraded`` telemetry counter when a session is active, and
the report stays partial-but-valid.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.capture.decode import CaptureAnalysis, analyze_capture
from repro.capture.format import CaptureFileData, read_capture
from repro.capture.provenance import Stage
from repro.capture.session import CAPTURE_FILE_NAME
from repro.errors import ConfigurationError
from repro.insight.model import (
    BlastRadius,
    Incident,
    IncidentReport,
    TimelineEntry,
)
from repro.insight.rank import build_hypotheses
from repro.myrinet.mapping import TopologyOracle, paper_oracle
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.state import STATE

__all__ = ["CampaignArtifacts", "load_artifacts", "analyze_artifacts"]

#: Hard cap on per-incident timeline entries; the overflow count is
#: reported so truncation is never silent.
MAX_TIMELINE_ENTRIES = 160

#: Timeline kinds derived from lifecycle event stages.
_EVENT_KINDS = {
    Stage.INJECT: "inject",
    Stage.DROP: "drop",
    Stage.CAPTURE_SHED: "shed",
    Stage.UDP_CHECKSUM_DROP: "udp_checksum_drop",
}


class CampaignArtifacts:
    """One campaign's loaded artifacts plus every load-time degradation."""

    def __init__(self, root: Path, layout: str) -> None:
        self.root = root
        #: ``engine`` or ``flat`` (see module docstring).
        self.layout = layout
        self.capture: Optional[CaptureFileData] = None
        self.spans_rows: List[Dict[str, Any]] = []
        self.metrics_doc: Optional[Dict[str, Any]] = None
        self.spec: Optional[Dict[str, Any]] = None
        self.degradations: List[str] = []


def _detect_layout(root: Path) -> str:
    engine_markers = (
        root / "telemetry" / "metrics.json",
        root / "capture" / CAPTURE_FILE_NAME,
        root / "spec.json",
    )
    return "engine" if any(p.exists() for p in engine_markers) else "flat"


def _load_spans(artifacts: CampaignArtifacts, path: Path) -> None:
    """Parse ``spans.jsonl`` tolerantly: torn/garbled lines degrade."""
    try:
        text = path.read_text()
    except OSError as exc:
        artifacts.degradations.append(f"spans.jsonl unreadable: {exc}")
        return
    lines = [
        (number, line.strip())
        for number, line in enumerate(text.splitlines(), 1)
        if line.strip()
    ]
    for position, (number, line) in enumerate(lines):
        try:
            row = json.loads(line)
        except ValueError:
            where = (
                "torn final line" if position == len(lines) - 1
                else f"line {number}"
            )
            artifacts.degradations.append(
                f"spans.jsonl: {where} is not valid JSON; skipped"
            )
            continue
        if isinstance(row, dict):
            artifacts.spans_rows.append(row)
        else:
            artifacts.degradations.append(
                f"spans.jsonl: line {number} is not an object; skipped"
            )


def load_artifacts(root: Union[str, Path]) -> CampaignArtifacts:
    """Load a campaign artifact directory (either layout), tolerantly."""
    root = Path(root)
    if not root.is_dir():
        raise ConfigurationError(f"{root} is not an artifact directory")
    layout = _detect_layout(root)
    artifacts = CampaignArtifacts(root, layout)
    if layout == "engine":
        telemetry = root / "telemetry"
        capture_path = root / "capture" / CAPTURE_FILE_NAME
    else:
        telemetry = root
        capture_path = root / CAPTURE_FILE_NAME

    metrics_path = telemetry / "metrics.json"
    if metrics_path.exists():
        try:
            artifacts.metrics_doc = json.loads(metrics_path.read_text())
        except ValueError as exc:
            artifacts.degradations.append(f"metrics.json unparsable: {exc}")
    else:
        artifacts.degradations.append("metrics.json missing")

    spans_path = telemetry / "spans.jsonl"
    if spans_path.exists():
        _load_spans(artifacts, spans_path)
    else:
        artifacts.degradations.append("spans.jsonl missing")

    if capture_path.exists():
        try:
            artifacts.capture = read_capture(capture_path)
        except Exception as exc:  # noqa: BLE001 - any decode failure degrades
            artifacts.degradations.append(
                f"capture.rcap unreadable: {exc}"
            )
    else:
        artifacts.degradations.append("capture.rcap missing")

    spec_path = root / "spec.json"
    if spec_path.exists():
        try:
            artifacts.spec = json.loads(spec_path.read_text())
        except ValueError as exc:
            artifacts.degradations.append(f"spec.json unparsable: {exc}")
    return artifacts


# ---------------------------------------------------------------------------
# the join
# ---------------------------------------------------------------------------


def _span_indices(
    rows: List[Dict[str, Any]],
) -> Tuple[Dict[Tuple[Optional[int], int], Dict[str, Any]],
           Dict[Tuple[Optional[int], Optional[int]], List[Dict[str, Any]]]]:
    """Index span rows: experiment spans by (shard, id), children by
    (shard, parent_id)."""
    experiments: Dict[Tuple[Optional[int], int], Dict[str, Any]] = {}
    children: Dict[Tuple[Optional[int], Optional[int]],
                   List[Dict[str, Any]]] = {}
    for row in rows:
        shard = row.get("shard")
        if row.get("name") == "experiment":
            span_id = row.get("span_id")
            if isinstance(span_id, int):
                experiments[(shard, span_id)] = row
        parent = row.get("parent_id")
        if parent is not None:
            children.setdefault((shard, parent), []).append(row)
    return experiments, children


def _join_span(
    incident: Incident,
    marker: Dict[str, Any],
    experiments: Dict[Tuple[Optional[int], int], Dict[str, Any]],
    children: Dict[Tuple[Optional[int], Optional[int]],
                   List[Dict[str, Any]]],
    sharded: bool,
    degradations: List[str],
) -> List[Dict[str, Any]]:
    """Attach the experiment span + phase intervals; returns the phases."""
    span_id = marker.get("span_id")
    if not isinstance(span_id, int):
        degradations.append(
            f"experiment {incident.index}: no span id in its capture "
            f"marker (telemetry off?); timeline has no phases"
        )
        incident.span = {
            "span_id": None, "shard": None, "phases": [], "joined": False,
        }
        return []
    shard: Optional[int] = incident.index if sharded else None
    row = experiments.get((shard, span_id))
    if row is None and sharded:
        # Serial runs that still write an engine layout keep unsharded
        # span rows; fall back before declaring the join broken.
        shard = None
        row = experiments.get((None, span_id))
    if row is None:
        degradations.append(
            f"experiment {incident.index}: span_id {span_id} not found "
            f"in spans.jsonl; phases unavailable"
        )
        incident.span = {
            "span_id": span_id, "shard": None, "phases": [],
            "joined": False,
        }
        return []
    phases = []
    for child in children.get((shard, span_id), []):
        phases.append({
            "name": child.get("name"),
            "start_sim_ps": child.get("start_sim_ps"),
            "end_sim_ps": child.get("end_sim_ps"),
        })
    phases.sort(key=lambda p: (
        p["start_sim_ps"] if p["start_sim_ps"] is not None else -1,
        str(p["name"]),
    ))
    incident.span = {
        "span_id": span_id,
        "shard": shard,
        "name": row.get("attrs", {}).get("name"),
        "phases": phases,
        "joined": True,
    }
    return phases


def _blast_radius(
    direction: str,
    instrumented_host: str,
    oracle: TopologyOracle,
) -> BlastRadius:
    """Host pairs whose conversations cross the instrumented segment.

    ``direction`` uses the injector's convention: ``R`` is the burst
    received on the *left* (host-facing) segment — host->switch traffic
    — and ``L`` is switch->host.  ``RL`` covers both.
    """
    switch_node = ("sw", "switch")
    radius = BlastRadius(segment={
        "host": instrumented_host,
        "attached_to": "sw:switch",
        "directions": sorted(set(direction)),
    })
    seen = set()
    for letter in sorted(set(direction)):
        if letter == "R":
            edge = (instrumented_host, switch_node)
            rendered = f"{instrumented_host}->switch"
        else:
            edge = (switch_node, instrumented_host)
            rendered = f"switch->{instrumented_host}"
        for src, dst in oracle.pairs_crossing(edge):
            key = (src, dst, rendered)
            if key in seen:
                continue
            seen.add(key)
            radius.pairs.append({
                "src": src,
                "dst": dst,
                "direction": rendered,
                "route": oracle.route(src, dst),
            })
    radius.pairs.sort(
        key=lambda p: (p["src"], p["dst"], p["direction"])
    )
    return radius


def _window_summary(window_analysis: Any) -> Dict[str, Any]:
    """Flatten one decoded window into report-friendly verdict counts."""
    capture = window_analysis.capture
    frames = window_analysis.frames
    crc_broken = sum(1 for f in frames if f.crc_ok is False)
    udp_broken = sum(
        1 for f in frames
        if f.udp is not None and f.udp.get("checksum_ok") is False
    )
    sneaky = sum(
        1 for i in window_analysis.hit_frames
        if frames[i].udp is not None and frames[i].udp.get("checksum_ok")
    )
    return {
        "time_ps": capture.time_ps,
        "direction": capture.direction,
        "segment_index": capture.segment_index,
        "forced": capture.forced,
        "marked": window_analysis.mark.matched,
        "lanes_rewritten": capture.lanes_rewritten,
        "injected_offsets": list(window_analysis.mark.injected_offsets),
        "frames": len(frames),
        "hit_frames": len(window_analysis.hit_frames),
        "crc_broken_frames": crc_broken,
        "udp_broken_frames": udp_broken,
        "udp_valid_despite_hit": sneaky,
        "effect": window_analysis.effect,
    }


def _latency_features(
    metrics_doc: Optional[Dict[str, Any]],
    degradations: List[str],
) -> Dict[str, float]:
    """p50/p95/p99 of ``device.added_latency_ns`` from merged metrics."""
    if not metrics_doc:
        return {}
    try:
        registry = MetricsRegistry.from_dict(
            metrics_doc.get("metrics", {})
        )
    except Exception as exc:  # noqa: BLE001 - degraded, not fatal
        degradations.append(f"metrics.json not a metrics document: {exc}")
        return {}
    histogram = registry.get("device.added_latency_ns")
    if histogram is None or not hasattr(histogram, "quantiles"):
        return {}
    quantiles = histogram.quantiles()
    return {
        "latency_p50_ns": quantiles["p50"],
        "latency_p95_ns": quantiles["p95"],
        "latency_p99_ns": quantiles["p99"],
    }


def _incident_timeline(
    incident: Incident,
    phases: List[Dict[str, Any]],
    events: List[Any],
    windows: List[Dict[str, Any]],
) -> None:
    """Assemble + truncate the sim-time timeline for one incident."""
    entries: List[TimelineEntry] = []
    for phase in phases:
        entries.append(TimelineEntry(
            time_ps=phase.get("start_sim_ps"),
            kind="phase",
            label=str(phase.get("name")),
            detail={
                "start_sim_ps": phase.get("start_sim_ps"),
                "end_sim_ps": phase.get("end_sim_ps"),
            },
        ))
    for event in events:
        kind = _EVENT_KINDS.get(event.stage)
        if kind is None:
            continue
        entries.append(TimelineEntry(
            time_ps=event.time_ps,
            kind=kind,
            label=f"{event.stage}@{event.node}",
            detail={
                "node": event.node,
                "direction": event.direction,
                "corr_id": event.corr_id,
            },
        ))
    for number, window in enumerate(windows):
        entries.append(TimelineEntry(
            time_ps=window["time_ps"],
            kind="window",
            label=f"window {number}",
            detail={
                "direction": window["direction"],
                "marked": window["marked"],
                "effect": window["effect"],
            },
        ))
    entries.sort(key=lambda e: e.sort_key())
    if len(entries) > MAX_TIMELINE_ENTRIES:
        incident.timeline_truncated = len(entries) - MAX_TIMELINE_ENTRIES
        entries = entries[:MAX_TIMELINE_ENTRIES]
    incident.timeline = entries


def _fault_window(
    events: List[Any],
    windows: List[Dict[str, Any]],
    phases: List[Dict[str, Any]],
) -> Optional[List[int]]:
    """The observed fault interval: inject events, else marked windows,
    else the injection phase's sim interval."""
    inject_times = [
        e.time_ps for e in events if e.stage == Stage.INJECT
    ]
    if inject_times:
        return [min(inject_times), max(inject_times)]
    marked = [w["time_ps"] for w in windows if w["marked"]]
    if marked:
        return [min(marked), max(marked)]
    for phase in phases:
        if phase.get("name") == "injection" \
                and phase.get("start_sim_ps") is not None \
                and phase.get("end_sim_ps") is not None:
            return [phase["start_sim_ps"], phase["end_sim_ps"]]
    return None


def analyze_artifacts(
    source: Union[str, Path, CampaignArtifacts],
    label: Optional[str] = None,
) -> IncidentReport:
    """Correlate one campaign's artifacts into an :class:`IncidentReport`.

    ``source`` is an artifact directory (either layout) or a pre-loaded
    :class:`CampaignArtifacts`.  The function never raises on missing or
    damaged inputs — it degrades, listing every gap in the report and
    bumping the ``insight.degraded`` counter when telemetry is active —
    and its output is byte-stable for byte-identical inputs.
    """
    artifacts = (
        source if isinstance(source, CampaignArtifacts)
        else load_artifacts(source)
    )
    degradations = list(artifacts.degradations)

    analysis: Optional[CaptureAnalysis] = None
    if artifacts.capture is not None:
        analysis = analyze_capture(artifacts.capture)

    spec = artifacts.spec or {}
    spec_experiments: Dict[int, Dict[str, Any]] = {
        entry["index"]: entry
        for entry in spec.get("experiments", [])
        if isinstance(entry, dict) and isinstance(entry.get("index"), int)
    }

    campaign_label = label or spec.get("name") or (
        analysis.meta.get("label") if analysis is not None else None
    ) or artifacts.root.name

    experiments, children = _span_indices(artifacts.spans_rows)
    sharded = any("shard" in row for row in artifacts.spans_rows)

    report = IncidentReport(
        label=str(campaign_label),
        campaign={
            "name": str(spec.get("name") or campaign_label),
            "base_seed": spec.get("base_seed"),
            "source": artifacts.layout,
            "spec_present": artifacts.spec is not None,
            "capture_present": artifacts.capture is not None,
            "telemetry_present": bool(artifacts.spans_rows)
            or artifacts.metrics_doc is not None,
            "features": _latency_features(
                artifacts.metrics_doc, degradations
            ),
        },
    )

    # The incident universe: decoded capture experiments first, spec
    # entries as the fallback when the capture plane is missing.
    decoded: Dict[int, Any] = {}
    if analysis is not None:
        decoded = {e.index: e for e in analysis.experiments}
    indices = sorted(set(decoded) | set(spec_experiments)) or sorted(
        shard for (shard, _sid) in experiments if shard is not None
    )

    instrumented_host = "pc"
    for entry in spec_experiments.values():
        testbed = entry.get("testbed") or {}
        if testbed.get("instrumented_host"):
            instrumented_host = str(testbed["instrumented_host"])
            break
    try:
        oracle: Optional[TopologyOracle] = paper_oracle(instrumented_host)
    except ConfigurationError as exc:
        oracle = None
        degradations.append(f"topology: {exc}")

    matched_span_keys = set()
    for index in indices:
        experiment = decoded.get(index)
        spec_entry = spec_experiments.get(index, {})
        marker = experiment.meta if experiment is not None else {}
        incident = Incident(
            index=index,
            name=str(
                marker.get("name") or spec_entry.get("name")
                or f"experiment-{index}"
            ),
            seed=marker.get("seed", spec_entry.get("seed")),
            fault_class=str(marker.get("fault_class", "unknown")),
            evidence=[str(e) for e in (marker.get("evidence") or [])],
        )
        if experiment is None:
            degradations.append(
                f"experiment {index}: present in spec.json but absent "
                f"from the capture artifact"
            )

        phases = _join_span(
            incident, marker, experiments, children, sharded, degradations
        )
        if incident.span.get("joined"):
            matched_span_keys.add(
                (incident.span.get("shard"), incident.span["span_id"])
            )

        windows = []
        events: List[Any] = []
        if experiment is not None:
            windows = [_window_summary(w) for w in experiment.windows]
            incident.stage_counts = dict(experiment.stage_counts)
            if artifacts.capture is not None:
                events = artifacts.capture.events_for(index)
        incident.windows = windows
        if marker.get("span_id") is not None and not windows \
                and experiment is not None:
            degradations.append(
                f"experiment {index}: span joined but no capture "
                f"window was stored (trigger never fired?)"
            )
        incident.fault_window_ps = _fault_window(events, windows, phases)
        _incident_timeline(incident, phases, events, windows)

        sdram = marker.get("sdram") or {}
        aggregate = {
            "injections": marker.get("injections", 0),
            "captures": marker.get("captures", 0),
            "windows": len(windows),
            "marks_matched": sum(1 for w in windows if w["marked"]),
            "lanes_rewritten": sum(w["lanes_rewritten"] for w in windows),
            "crc_broken_frames": sum(
                w["crc_broken_frames"] for w in windows
            ),
            "udp_broken_frames": sum(
                w["udp_broken_frames"] for w in windows
            ),
            "udp_valid_despite_hit": sum(
                w["udp_valid_despite_hit"] for w in windows
            ),
            "frames_decoded": sum(w["frames"] for w in windows),
            "hit_frames": sum(w["hit_frames"] for w in windows),
            "sdram_dropped_capacity": sdram.get(
                "records_dropped_capacity", 0
            ),
            "sdram_dropped_bandwidth": sdram.get(
                "records_dropped_bandwidth", 0
            ),
            "stage_drops": incident.stage_counts.get(Stage.DROP, 0),
            "stage_udp_checksum_drops": incident.stage_counts.get(
                Stage.UDP_CHECKSUM_DROP, 0
            ),
            "stage_host_sends": incident.stage_counts.get(
                Stage.HOST_SEND, 0
            ),
            "stage_delivers": incident.stage_counts.get(Stage.DELIVER, 0),
            "events": len(events) or sum(
                incident.stage_counts.values()
            ),
        }
        incident.features = {
            key: float(value) for key, value in aggregate.items()
        }
        incident.features["fault_class_active"] = float(
            incident.fault_class == "active"
        )
        incident.features["fault_class_passive"] = float(
            incident.fault_class == "passive"
        )

        plan = spec_entry.get("plan")
        direction = (plan or {}).get("direction")
        if direction is None:
            observed = sorted({
                w["direction"] for w in windows if w["direction"]
            })
            direction = "".join(observed)
        fault_seen = bool(
            aggregate["injections"] or aggregate["marks_matched"]
        )
        if oracle is not None and direction and fault_seen:
            incident.blast_radius = _blast_radius(
                direction, instrumented_host, oracle
            )
        else:
            incident.blast_radius = BlastRadius(
                note="no fault observed; blast radius not applicable"
                if not fault_seen else
                "fault direction unknown; blast radius unavailable"
            )

        incident.hypotheses = build_hypotheses(
            aggregate, fault_label=incident.name, plan=plan
        )
        report.incidents.append(incident)

    # Experiment spans nothing claimed: telemetry saw a run the capture
    # plane has no record of.
    for (shard, span_id), row in sorted(
        experiments.items(),
        key=lambda item: (item[0][0] is not None, item[0][0] or 0,
                          item[0][1]),
    ):
        if (shard, span_id) in matched_span_keys:
            continue
        name = row.get("attrs", {}).get("name", "?")
        degradations.append(
            f"experiment span {span_id}"
            + (f" (shard {shard})" if shard is not None else "")
            + f" [{name}]: no matching capture experiment"
        )

    report.degradations = degradations
    report.counts = {
        "incidents": len(report.incidents),
        "windows": 0 if analysis is None else analysis.total_windows,
        "events": 0 if analysis is None else analysis.total_events,
        "spans": len(artifacts.spans_rows),
        "degradations": len(degradations),
    }

    if degradations and STATE.active and STATE.registry is not None:
        STATE.registry.counter("insight.degraded").inc(len(degradations))
    return report
