"""Cross-check an insight report against the fabric's result store.

Two independent records of the same campaign exist once it ran on the
fabric: the **artifact-derived** :class:`~repro.insight.model.
IncidentReport` (decoded captures + telemetry, built by
:func:`~repro.insight.correlate.analyze_artifacts`) and the **runtime**
:class:`~repro.runtime.store.ResultStore` rows the workers pushed while
executing.  They were produced by different code paths from different
inputs, so agreement between them is strong evidence that neither the
merge nor the store lost or duplicated an experiment — and disagreement
pinpoints which experiment diverged.

:func:`crosscheck_report` joins the two on experiment index and
compares the invariants both sides must share:

* every incident's experiment exists in the store as a winner row;
* seeds match (the derived-seed rule reached both sides intact);
* experiment names match;
* the store's campaign is complete (``experiments_done`` equals the
  campaign's experiment count);
* the store's incremental aggregate equals a from-scratch fold over
  its winner rows (internal consistency).

The check is deliberately *read-only and print-oriented*: it never
mutates either side and never perturbs the pinned insight report
digests — ``repro.cli insight analyze --result-store PATH`` appends its
verdict lines after the normal summary.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Tuple, Union

from repro.insight.model import IncidentReport
from repro.runtime.store import ResultStore

__all__ = ["crosscheck_report"]


def crosscheck_report(
    report: IncidentReport,
    store_path: Union[str, Path],
) -> Tuple[bool, List[str]]:
    """Compare ``report`` with the result store; ``(ok, lines)``.

    ``lines`` is the human-readable verdict, one check per line; ``ok``
    is True when every check passed.  A campaign whose name is absent
    from the store fails the check (the report and the store must
    describe the same campaign).
    """
    lines: List[str] = []
    ok = True
    campaign_name = str(
        report.campaign.get("name") or report.label or ""
    )
    with ResultStore(store_path) as store:
        row = next(
            (c for c in store.campaigns() if c["name"] == campaign_name),
            None,
        )
        if row is None:
            return False, [
                f"store crosscheck: campaign {campaign_name!r} not found "
                f"in {store_path}"
            ]
        digest = row["spec_digest"]
        if row["experiments_done"] == row["experiments"]:
            lines.append(
                f"store crosscheck: campaign complete "
                f"({row['experiments_done']}/{row['experiments']} "
                f"experiments recorded)"
            )
        else:
            ok = False
            lines.append(
                f"store crosscheck: MISMATCH campaign incomplete "
                f"({row['experiments_done']}/{row['experiments']} "
                f"experiments recorded)"
            )
        winners = {
            winner["index"]: winner
            for winner in store.export_rows(digest)
        }
        matched = 0
        for incident in sorted(report.incidents, key=lambda i: i.index):
            winner = winners.get(incident.index)
            if winner is None:
                ok = False
                lines.append(
                    f"store crosscheck: MISMATCH incident "
                    f"[{incident.index}] {incident.name} has no winner "
                    f"row in the store"
                )
                continue
            if winner["name"] != incident.name:
                ok = False
                lines.append(
                    f"store crosscheck: MISMATCH index {incident.index} "
                    f"is {winner['name']!r} in the store but "
                    f"{incident.name!r} in the report"
                )
                continue
            if incident.seed is not None \
                    and winner["seed"] != incident.seed:
                ok = False
                lines.append(
                    f"store crosscheck: MISMATCH seed of "
                    f"[{incident.index}] {incident.name}: store "
                    f"{winner['seed']} vs report {incident.seed}"
                )
                continue
            matched += 1
        lines.append(
            f"store crosscheck: {matched}/{len(report.incidents)} "
            f"incident(s) matched winner rows (index, name, seed)"
        )
        if store.aggregate(digest) == store.fold_aggregate(digest):
            lines.append(
                "store crosscheck: incremental aggregate equals "
                "from-scratch fold"
            )
        else:
            ok = False
            lines.append(
                "store crosscheck: MISMATCH incremental aggregate "
                "diverges from the from-scratch fold"
            )
    return ok, lines
