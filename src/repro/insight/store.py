"""The queryable incident store: sqlite persistence + similarity.

:class:`InsightStore` keeps every analyzed campaign's full report (as
canonical JSON) plus its numeric feature vector, so past campaigns can
be queried without re-decoding their artifacts.  ``insight similar``
ranks stored campaigns by **cosine distance** between feature vectors
(:data:`repro.insight.model.FEATURES` fixes the dimension order) — two
campaigns that injected the same fault class produce near-parallel
evidence vectors however their absolute counts differ, which is exactly
what cosine geometry rewards.

Determinism: reports are keyed by label (re-adding a label replaces the
row), no wall-clock timestamps are stored, and similarity ties break on
``(rounded distance, label)`` so result order never depends on insert
order or float noise in the last bits.
"""

from __future__ import annotations

import json
import math
import sqlite3
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.errors import ConfigurationError
from repro.insight.model import FEATURES, IncidentReport

__all__ = ["InsightStore", "cosine_distance"]

#: Schema generation; bump on incompatible table changes.
SCHEMA_VERSION = 1

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS campaigns (
    label         TEXT PRIMARY KEY,
    digest        TEXT NOT NULL,
    report_json   TEXT NOT NULL,
    features_json TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS incidents (
    label       TEXT NOT NULL,
    idx         INTEGER NOT NULL,
    name        TEXT NOT NULL,
    fault_class TEXT NOT NULL,
    top_cause   TEXT,
    PRIMARY KEY (label, idx)
);
"""


def cosine_distance(a: Dict[str, float], b: Dict[str, float]) -> float:
    """``1 - cos(a, b)`` over the union of feature keys.

    Zero vectors are handled deterministically: two zero vectors are
    identical (distance 0), a zero vector against anything else is
    maximally distant (1.0).
    """
    keys = sorted(set(a) | set(b))
    dot = sum(a.get(k, 0.0) * b.get(k, 0.0) for k in keys)
    norm_a = math.sqrt(sum(a.get(k, 0.0) ** 2 for k in keys))
    norm_b = math.sqrt(sum(b.get(k, 0.0) ** 2 for k in keys))
    if norm_a == 0.0 and norm_b == 0.0:
        return 0.0
    if norm_a == 0.0 or norm_b == 0.0:
        return 1.0
    similarity = dot / (norm_a * norm_b)
    return 1.0 - max(-1.0, min(1.0, similarity))


class InsightStore:
    """A sqlite-backed archive of :class:`IncidentReport` documents.

    Usable as a context manager; ``path`` may be ``":memory:"`` for
    tests.  All queries are deterministic (explicit ``ORDER BY``
    everywhere) and the store never records wall-clock time.
    """

    def __init__(self, path: Union[str, Path] = ":memory:") -> None:
        self.path = str(path)
        self._conn = sqlite3.connect(self.path)
        self._conn.executescript(_SCHEMA)
        row = self._conn.execute(
            "SELECT value FROM meta WHERE key = 'schema_version'"
        ).fetchone()
        if row is None:
            self._conn.execute(
                "INSERT INTO meta (key, value) VALUES (?, ?)",
                ("schema_version", str(SCHEMA_VERSION)),
            )
            self._conn.commit()
        elif int(row[0]) != SCHEMA_VERSION:
            raise ConfigurationError(
                f"insight store {self.path} has schema v{row[0]}; this "
                f"build reads v{SCHEMA_VERSION}"
            )

    # ------------------------------------------------------------------

    def __enter__(self) -> "InsightStore":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    def close(self) -> None:
        """Close the underlying sqlite connection."""
        self._conn.close()

    # ------------------------------------------------------------------

    def add_report(
        self, report: IncidentReport, label: Optional[str] = None
    ) -> str:
        """Persist (or replace) one report; returns its storage label."""
        key = label or report.label
        features = report.feature_vector()
        self._conn.execute(
            "INSERT OR REPLACE INTO campaigns "
            "(label, digest, report_json, features_json) "
            "VALUES (?, ?, ?, ?)",
            (
                key,
                report.digest(),
                report.canonical_json(),
                json.dumps(features, sort_keys=True),
            ),
        )
        self._conn.execute("DELETE FROM incidents WHERE label = ?", (key,))
        for incident in sorted(report.incidents, key=lambda i: i.index):
            self._conn.execute(
                "INSERT INTO incidents "
                "(label, idx, name, fault_class, top_cause) "
                "VALUES (?, ?, ?, ?, ?)",
                (
                    key,
                    incident.index,
                    incident.name,
                    incident.fault_class,
                    incident.top_cause,
                ),
            )
        self._conn.commit()
        return key

    def labels(self) -> List[str]:
        """Stored campaign labels, sorted."""
        rows = self._conn.execute(
            "SELECT label FROM campaigns ORDER BY label"
        ).fetchall()
        return [row[0] for row in rows]

    def get(self, label: str) -> Optional[Dict[str, Any]]:
        """The stored report document for ``label``, or ``None``."""
        row = self._conn.execute(
            "SELECT report_json FROM campaigns WHERE label = ?", (label,)
        ).fetchone()
        return None if row is None else json.loads(row[0])

    def features(self, label: str) -> Optional[Dict[str, float]]:
        """The stored feature vector for ``label``, or ``None``."""
        row = self._conn.execute(
            "SELECT features_json FROM campaigns WHERE label = ?",
            (label,),
        ).fetchone()
        return None if row is None else json.loads(row[0])

    def similar(
        self,
        query: Union[IncidentReport, Dict[str, float], str],
        top: int = 5,
        exclude_label: Optional[str] = None,
    ) -> List[Dict[str, Any]]:
        """Stored campaigns ranked by feature-vector cosine distance.

        ``query`` is a report, a raw feature dict, or the label of a
        stored campaign.  Results carry ``label``, ``distance`` (rounded
        to 12 places — the tie-break precision), ``digest``, and the
        campaign's most common top cause.  A stored campaign equal to
        ``exclude_label`` (or to a string query's own label) is omitted.
        """
        if isinstance(query, IncidentReport):
            vector = query.feature_vector()
        elif isinstance(query, str):
            stored = self.features(query)
            if stored is None:
                raise ConfigurationError(
                    f"no campaign labelled {query!r} in the store"
                )
            vector = stored
            exclude_label = exclude_label or query
        else:
            vector = {k: float(v) for k, v in query.items()}
        vector = {k: vector.get(k, 0.0) for k in set(FEATURES) | set(vector)}

        scored: List[Tuple[float, str]] = []
        for label in self.labels():
            if exclude_label is not None and label == exclude_label:
                continue
            stored = self.features(label)
            scored.append(
                (round(cosine_distance(vector, stored or {}), 12), label)
            )
        scored.sort()
        out: List[Dict[str, Any]] = []
        for distance, label in scored[:max(0, top)]:
            causes = self._conn.execute(
                "SELECT top_cause, COUNT(*) AS n FROM incidents "
                "WHERE label = ? AND top_cause IS NOT NULL "
                "GROUP BY top_cause ORDER BY n DESC, top_cause LIMIT 1",
                (label,),
            ).fetchone()
            digest = self._conn.execute(
                "SELECT digest FROM campaigns WHERE label = ?", (label,)
            ).fetchone()
            out.append({
                "label": label,
                "distance": distance,
                "digest": digest[0] if digest else None,
                "dominant_cause": causes[0] if causes else None,
            })
        return out
