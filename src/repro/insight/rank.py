"""Deterministic symptom->cause hypothesis ranking.

The evidence hierarchy is the paper's own §4.4 reasoning made explicit:

1. **injection marks** — the injector's post-corruption lane window was
   *located in the captured symbol stream*; nothing is more direct;
2. **CRC verdicts** — reassembled frames whose recomputed CRC-8 shows a
   residue (link-level corruption, caught by the paper's per-hop check);
3. **UDP checksum anomalies** — end-to-end damage (broken checksums,
   or the §4.3.4 aligned-swap case where the checksum *stays valid*
   despite a hit, plus host-side checksum drops);
4. **drop/shed counter deltas** — SDRAM capacity/bandwidth shedding and
   network drop events: real symptoms, weakest attribution.

Ranking is **lexicographic over the tiers in that order** — one mark
beats any number of CRC verdicts, and so on — which is what makes the
verdict deterministic and explainable: no tuned weights, no floats.
The scalar ``score`` merely renders the same ordering for display
(tiers saturate, so it cannot be used to launder a lower tier into a
higher one).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.insight.model import Hypothesis

__all__ = ["TIER_ORDER", "build_hypotheses", "scalar_score"]

#: Evidence tiers, strongest first (the lexicographic sort order).
TIER_ORDER = ("marks", "crc", "udp", "drops")

#: Per-tier saturation for the display score: counts clamp here so a
#: flood of weak evidence can never look like strong evidence.
_TIER_CAP = 99
_TIER_WEIGHT = {
    "marks": 1_000_000,
    "crc": 10_000,
    "udp": 100,
    "drops": 1,
}


def scalar_score(tier_counts: Dict[str, int]) -> int:
    """Render a tier tuple as one display integer (order-preserving)."""
    return sum(
        _TIER_WEIGHT[tier] * min(_TIER_CAP, max(0, tier_counts.get(tier, 0)))
        for tier in TIER_ORDER
    )


def _hypothesis(
    cause: str,
    description: str,
    tier_counts: Dict[str, int],
    evidence: List[str],
) -> Hypothesis:
    counts = {tier: int(tier_counts.get(tier, 0)) for tier in TIER_ORDER}
    return Hypothesis(
        cause=cause,
        description=description,
        tier_counts=counts,
        score=scalar_score(counts),
        evidence=evidence,
    )


def build_hypotheses(
    aggregate: Dict[str, Any],
    fault_label: Optional[str] = None,
    plan: Optional[Dict[str, Any]] = None,
) -> List[Hypothesis]:
    """Rank cause candidates for one incident.

    ``aggregate`` is the correlator's per-incident evidence summary
    (mark/CRC/UDP/drop counts); ``fault_label`` names the configured
    fault (usually the experiment name, e.g. ``IDLE->GAP``); ``plan``
    is the spec's plan summary when available (kind, direction).

    Returns hypotheses sorted strongest-first; ties (identical tier
    tuples) break on the cause string so the order never depends on
    dict iteration.  An all-quiet incident yields the single benign
    ``no-fault-observed`` hypothesis rather than an empty list.
    """
    marks = int(aggregate.get("marks_matched", 0))
    injections = int(aggregate.get("injections", 0))
    crc = int(aggregate.get("crc_broken_frames", 0))
    udp_broken = int(aggregate.get("udp_broken_frames", 0))
    udp_sneaky = int(aggregate.get("udp_valid_despite_hit", 0))
    udp_drops = int(aggregate.get("stage_udp_checksum_drops", 0))
    udp = udp_broken + udp_sneaky + udp_drops
    drops = (
        int(aggregate.get("sdram_dropped_capacity", 0))
        + int(aggregate.get("sdram_dropped_bandwidth", 0))
        + int(aggregate.get("stage_drops", 0))
    )

    hypotheses: List[Hypothesis] = []

    if injections or marks:
        name = fault_label or "configured fault"
        direction = (plan or {}).get("direction")
        kind = (plan or {}).get("kind")
        detail = []
        if kind:
            detail.append(f"{kind} plan")
        if direction:
            detail.append(f"direction {direction}")
        suffix = f" ({', '.join(detail)})" if detail else ""
        evidence = []
        if injections:
            evidence.append(f"{injections} injection event(s) on the wire")
        if marks:
            evidence.append(
                f"{marks} capture window(s) with the post-corruption "
                f"lane window located in the stream"
            )
        hypotheses.append(_hypothesis(
            f"injected-fault:{name}",
            f"the campaign's own injected fault '{name}'{suffix} "
            f"corrupted the instrumented segment",
            # Mark evidence counts located marks, plus one for the
            # injection events themselves (direct but un-located).
            {"marks": marks + (1 if injections else 0),
             "crc": crc, "udp": udp, "drops": drops},
            evidence,
        ))

    if crc:
        hypotheses.append(_hypothesis(
            "link-crc-corruption",
            "frames reassembled from the capture fail their recomputed "
            "CRC-8: link-level corruption on the captured segment",
            {"crc": crc, "udp": udp, "drops": drops},
            [f"{crc} frame(s) with CRC-8 residue"],
        ))

    if udp:
        evidence = []
        if udp_broken:
            evidence.append(f"{udp_broken} UDP checksum failure(s)")
        if udp_sneaky:
            evidence.append(
                f"{udp_sneaky} hit frame(s) whose UDP checksum stayed "
                f"valid (aligned 16-bit swap, paper §4.3.4)"
            )
        if udp_drops:
            evidence.append(
                f"{udp_drops} datagram(s) dropped at the host checksum "
                f"check"
            )
        hypotheses.append(_hypothesis(
            "udp-payload-corruption",
            "end-to-end UDP evidence: payload damage visible (or "
            "deliberately invisible) at the datagram layer",
            {"udp": udp, "drops": drops},
            evidence,
        ))

    if drops:
        hypotheses.append(_hypothesis(
            "congestion-loss",
            "frames or capture records were shed without corruption "
            "evidence: backlog/capacity pressure, not the data path",
            {"drops": drops},
            [f"{drops} drop/shed event(s)"],
        ))

    if not hypotheses:
        hypotheses.append(_hypothesis(
            "no-fault-observed",
            "no injection, CRC, UDP, or loss evidence in this "
            "experiment's artifacts",
            {},
            [],
        ))

    hypotheses.sort(key=lambda h: (
        tuple(-c for c in h.sort_key()), h.cause
    ))
    return hypotheses
