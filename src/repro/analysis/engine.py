"""simlint — an AST lint engine for simulation-correctness rules.

The paper's hardware gets its guarantees at *synthesis time*: FSM
exhaustiveness, register widths and FIFO phase discipline are elaborated
statically before a bitstream is ever produced (paper §3.3, Table 1).
This engine is the software equivalent for the reproduction: every file
under ``src/repro/`` is parsed once and handed to a pack of rules that
statically verify the invariants the discrete-event kernel depends on —
no wall-clock time, no unseeded randomness, no float time arithmetic,
no unordered iteration feeding the scheduler, exhaustive FSM dispatch,
and a command grammar that agrees with the register file.

Suppressions
------------

A finding on line *N* is suppressed by a trailing comment on that line::

    frob()  # simlint: disable=SIM001 -- justification

Several rule IDs may be listed, comma-separated.  A file-level
suppression in the first ten lines disables a rule for the whole file::

    # simlint: disable-file=SIM002 -- this module wraps `random`

Rule kinds
----------

* :class:`ModuleRule` — checked against each parsed module in isolation.
* :class:`ProjectRule` — checked once against the whole module map
  (cross-module consistency, e.g. decoder grammar vs. register file).

Scoped allowances
-----------------

Some rules have *sanctioned* violation scopes — packages where the
flagged construct is the design (telemetry reads the wall clock; the
rng wrapper imports ``random``).  These are declared per rule ID as
package lists, either in :data:`DEFAULT_SCOPED_ALLOWANCES` or — taking
precedence — in the project's ``pyproject.toml``::

    [tool.simlint.scoped-allowances]
    SIM001 = ["repro.telemetry", "repro.runtime"]

The engine drops any finding whose module lives under an allowed
package for that finding's rule, so individual rules no longer carry
their own ad-hoc allowance lists.
"""

from __future__ import annotations

import ast
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set

__all__ = [
    "Finding",
    "ModuleInfo",
    "ModuleRule",
    "ProjectRule",
    "LintEngine",
    "parse_module",
    "DEFAULT_SCOPED_ALLOWANCES",
    "load_scoped_allowances",
]

#: rule ID -> packages sanctioned to violate it.  Mirrored by the
#: ``[tool.simlint.scoped-allowances]`` table in pyproject.toml, which
#: overrides these per rule when present; the in-code defaults keep
#: engine behaviour identical on trees scanned without a pyproject
#: (tmp fixture trees, installed packages).
DEFAULT_SCOPED_ALLOWANCES: Dict[str, Sequence[str]] = {
    # Wall clock: telemetry strictly observes; the runtime layer times
    # and kills host-side worker processes; the server tracks uptime,
    # queue latency and heartbeats.  None of them feed sim time.
    "SIM001": ("repro.telemetry", "repro.runtime", "repro.server"),
    "FLOW101": ("repro.telemetry", "repro.runtime", "repro.server"),
    # Randomness: the deterministic rng wrapper is the one sanctioned
    # importer of `random`.
    "SIM002": ("repro.sim.rng",),
    "FLOW102": ("repro.sim.rng",),
}


def load_scoped_allowances(
    start: Path,
) -> Dict[str, Sequence[str]]:
    """Scoped allowances for a scan rooted at ``start``.

    Walks up from ``start`` looking for a ``pyproject.toml`` with a
    ``[tool.simlint]`` section; its ``scoped-allowances`` table
    overrides :data:`DEFAULT_SCOPED_ALLOWANCES` per rule ID.  Without
    one (tmp trees, installed checkouts) the defaults apply unchanged.
    """
    allowances: Dict[str, Sequence[str]] = dict(DEFAULT_SCOPED_ALLOWANCES)
    node = start if start.is_dir() else start.parent
    for candidate in (node, *node.parents):
        pyproject = candidate / "pyproject.toml"
        if not pyproject.is_file():
            continue
        try:
            import tomllib

            data = tomllib.loads(pyproject.read_text(encoding="utf-8"))
        except Exception:  # simlint: disable=ERR001 -- malformed toml falls back to defaults
            return allowances
        simlint = data.get("tool", {}).get("simlint")
        if not isinstance(simlint, dict):
            return allowances
        table = simlint.get("scoped-allowances", {})
        if isinstance(table, dict):
            for rule_id, packages in table.items():
                if isinstance(packages, list):
                    allowances[str(rule_id)] = tuple(
                        str(p) for p in packages
                    )
        return allowances
    return allowances

#: ``# simlint: disable=RULE1,RULE2`` (optionally followed by a reason).
_DISABLE_RE = re.compile(
    r"#\s*simlint:\s*disable=(?P<rules>[A-Z]+[0-9]+(?:\s*,\s*[A-Z]+[0-9]+)*)"
)
#: ``# simlint: disable-file=RULE1,RULE2`` in the first few lines.
_DISABLE_FILE_RE = re.compile(
    r"#\s*simlint:\s*disable-file=(?P<rules>[A-Z]+[0-9]+(?:\s*,\s*[A-Z]+[0-9]+)*)"
)
#: How many leading lines may carry a file-level suppression.
_FILE_PRAGMA_WINDOW = 10


@dataclass(frozen=True)
class Finding:
    """One lint violation at a specific source location."""

    path: str
    line: int
    col: int
    rule_id: str
    message: str

    def format(self) -> str:
        """Single-line parseable rendering: ``file:line:col RULE message``."""
        return f"{self.path}:{self.line}:{self.col} {self.rule_id} {self.message}"


@dataclass
class ModuleInfo:
    """A parsed source module plus its suppression tables."""

    path: Path
    #: Dotted module name relative to the scan root, e.g. ``repro.sim.kernel``.
    module: str
    source: str
    tree: ast.Module
    #: line number -> set of rule IDs suppressed on that line.
    line_suppressions: Dict[int, Set[str]] = field(default_factory=dict)
    #: rule IDs suppressed for the entire file.
    file_suppressions: Set[str] = field(default_factory=set)

    def in_package(self, *packages: str) -> bool:
        """True if the module lives under any of the dotted ``packages``."""
        return any(
            self.module == pkg or self.module.startswith(pkg + ".")
            for pkg in packages
        )

    def suppressed(self, rule_id: str, line: int) -> bool:
        """Is ``rule_id`` suppressed at ``line`` (or file-wide)?"""
        if rule_id in self.file_suppressions:
            return True
        return rule_id in self.line_suppressions.get(line, set())


class ModuleRule:
    """Base class for rules checked per module."""

    rule_id: str = ""
    title: str = ""

    def check(self, module: ModuleInfo) -> List[Finding]:
        raise NotImplementedError

    def finding(self, module: ModuleInfo, node: ast.AST, message: str) -> Finding:
        """Build a finding at an AST node's location."""
        return Finding(
            path=str(module.path),
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule_id=self.rule_id,
            message=message,
        )


class ProjectRule:
    """Base class for rules checked once over the whole module map."""

    rule_id: str = ""
    title: str = ""

    def check_project(self, modules: Dict[str, ModuleInfo]) -> List[Finding]:
        raise NotImplementedError


def _collect_suppressions(source: str) -> tuple:
    """Extract (line -> rules, file-wide rules) from comment pragmas.

    Comments are found with :mod:`tokenize` so string literals that merely
    *contain* pragma-like text do not count.
    """
    line_rules: Dict[int, Set[str]] = {}
    file_rules: Set[str] = set()
    try:
        tokens = tokenize.generate_tokens(
            iter(source.splitlines(keepends=True)).__next__
        )
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _DISABLE_FILE_RE.search(tok.string)
            if match and tok.start[0] <= _FILE_PRAGMA_WINDOW:
                file_rules.update(
                    rule.strip() for rule in match.group("rules").split(",")
                )
                continue
            match = _DISABLE_RE.search(tok.string)
            if match:
                rules = {rule.strip() for rule in match.group("rules").split(",")}
                line_rules.setdefault(tok.start[0], set()).update(rules)
    except (tokenize.TokenError, IndentationError):  # pragma: no cover
        # Tokenizer failure falls back to "no suppressions": a file we
        # cannot scan for pragmas never *hides* findings.
        pass  # simlint: disable=ERR001 -- deliberate lenient fallback
    return line_rules, file_rules


def parse_module(path: Path, root: Path) -> ModuleInfo:
    """Parse one source file into a :class:`ModuleInfo`."""
    source = path.read_text(encoding="utf-8")
    tree = ast.parse(source, filename=str(path))
    relative = path.relative_to(root)
    parts = list(relative.with_suffix("").parts)
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    module = ".".join(parts)
    line_rules, file_rules = _collect_suppressions(source)
    return ModuleInfo(
        path=path,
        module=module,
        source=source,
        tree=tree,
        line_suppressions=line_rules,
        file_suppressions=file_rules,
    )


class LintEngine:
    """Walks a tree of Python sources and applies the rule pack."""

    def __init__(
        self,
        module_rules: Sequence[ModuleRule],
        project_rules: Sequence[ProjectRule] = (),
        scoped_allowances: Optional[Mapping[str, Sequence[str]]] = None,
    ) -> None:
        self.module_rules = list(module_rules)
        self.project_rules = list(project_rules)
        #: None = resolve from pyproject.toml at run() time.
        self.scoped_allowances = (
            None if scoped_allowances is None else dict(scoped_allowances)
        )

    def iter_sources(self, root: Path) -> Iterable[Path]:
        """All ``.py`` files under ``root``, in sorted (deterministic) order."""
        return sorted(root.rglob("*.py"))

    def load(self, root: Path, scan_root: Optional[Path] = None) -> Dict[str, ModuleInfo]:
        """Parse every source below ``root`` into a module map.

        ``scan_root`` is the directory module names are computed relative
        to (defaults to ``root``'s parent so ``src/repro`` maps to the
        ``repro`` package).
        """
        base = scan_root if scan_root is not None else root.parent
        modules: Dict[str, ModuleInfo] = {}
        for path in self.iter_sources(root):
            info = parse_module(path, base)
            modules[info.module] = info
        return modules

    def run(self, root: Path, scan_root: Optional[Path] = None) -> List[Finding]:
        """Lint every module under ``root``; returns unsuppressed findings."""
        modules = self.load(root, scan_root)
        allowances = self.scoped_allowances
        if allowances is None:
            allowances = load_scoped_allowances(root)
        return self.run_modules(modules, allowances)

    def run_modules(
        self,
        modules: Dict[str, ModuleInfo],
        scoped_allowances: Optional[Mapping[str, Sequence[str]]] = None,
    ) -> List[Finding]:
        """Apply all rules to an already-parsed module map."""
        if scoped_allowances is None:
            scoped_allowances = (
                self.scoped_allowances
                if self.scoped_allowances is not None
                else DEFAULT_SCOPED_ALLOWANCES
            )
        findings: List[Finding] = []
        for _name, info in sorted(modules.items()):
            for rule in self.module_rules:
                for finding in rule.check(info):
                    if info.suppressed(finding.rule_id, finding.line):
                        continue
                    if self._allowed(finding, info, scoped_allowances):
                        continue
                    findings.append(finding)
        for project_rule in self.project_rules:
            for finding in project_rule.check_project(modules):
                info = _module_for_path(modules, finding.path)
                if info is not None and info.suppressed(
                    finding.rule_id, finding.line
                ):
                    continue
                if info is not None and self._allowed(
                    finding, info, scoped_allowances
                ):
                    continue
                findings.append(finding)
        findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
        return findings

    @staticmethod
    def _allowed(
        finding: Finding,
        info: ModuleInfo,
        scoped_allowances: Mapping[str, Sequence[str]],
    ) -> bool:
        packages = scoped_allowances.get(finding.rule_id)
        return bool(packages) and info.in_package(*packages)


def _module_for_path(
    modules: Dict[str, ModuleInfo], path: str
) -> Optional[ModuleInfo]:
    for info in modules.values():
        if str(info.path) == path:
            return info
    return None
