"""Runtime determinism sanitizer.

Static rules (simlint) prove the *sources* of nondeterminism are absent;
this module proves the *outcome*: an identical-seed campaign replayed
twice produces a bit-identical event stream.  A
:class:`~repro.sim.trace.TraceRecorder` is attached to the kernel's
per-event tracer hook, folding every fired event — ``(time, seq,
label)`` — into a running blake2b digest.  Two probe runs with the same
seed must produce equal digests; the first divergent run is reported
with enough context (event counts, final clock, message counters) to
bisect.

The probes also run with the kernel's ``REPRO_SANITIZE=1`` invariant
assertions enabled (integral timestamps, monotonic pop order), so a
sanitize pass is simultaneously a queue-invariant soak test.

This is the reproduction's equivalent of the paper's hardware
repeatability precondition: "to ensure the repeatability of the
experiments, each campaign began with the network in a known good
state" (§4.2) — here we additionally prove the *whole run*, not just
the initial state, is repeatable.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.sim.timebase import MS, US, format_time
from repro.sim.trace import TraceRecorder

__all__ = [
    "ProbeResult",
    "SanitizeReport",
    "run_probe",
    "check_determinism",
]


@dataclass
class ProbeResult:
    """Observable outcome of one seeded probe campaign."""

    seed: int
    digest: str
    events_fired: int
    final_time_ps: int
    messages_sent: int
    messages_received: int
    counters: Dict[str, int] = field(default_factory=dict)

    def summary(self) -> str:
        return (
            f"seed={self.seed} digest={self.digest} "
            f"events={self.events_fired} t={format_time(self.final_time_ps)} "
            f"sent={self.messages_sent} recv={self.messages_received}"
        )


@dataclass
class SanitizeReport:
    """Outcome of a multi-run determinism check."""

    seed: int
    runs: List[ProbeResult]

    @property
    def deterministic(self) -> bool:
        digests = {run.digest for run in self.runs}
        return len(digests) <= 1

    def render(self) -> str:
        lines = [
            f"determinism sanitizer: seed={self.seed} runs={len(self.runs)}"
        ]
        for index, run in enumerate(self.runs):
            lines.append(f"  run {index}: {run.summary()}")
        if self.deterministic:
            lines.append("  PASS: all runs produced identical event digests")
        else:
            lines.append(
                "  FAIL: digests diverge — the campaign is nondeterministic"
            )
        return "\n".join(lines)


def _default_probe(seed: int, duration_ps: int) -> ProbeResult:
    """Build a small paper test bed, run an all-pairs load, digest it."""
    # Imported here so `repro.analysis` stays importable without the
    # full simulation stack (and so static tools see no cycle).
    from repro.nftape.experiment import Testbed, TestbedOptions
    from repro.nftape.workload import AllPairsWorkload, WorkloadConfig

    recorder = TraceRecorder(max_events=1)  # digest-only; keep memory flat
    options = TestbedOptions(seed=seed, settle_ps=2 * MS)
    testbed = Testbed(options)
    testbed.sim.attach_tracer(
        lambda event: recorder.record(
            testbed.sim.now, "kernel", "event", event.label, seq=event.seq
        )
    )
    testbed.settle()
    workload = AllPairsWorkload(
        testbed.network,
        WorkloadConfig(send_interval_ps=250 * US, flood_ping=False),
        rng=testbed.rng.fork("workload"),
    )
    workload.start()
    testbed.sim.run_for(duration_ps)
    workload.stop()
    testbed.sim.run_for(1 * MS)
    return ProbeResult(
        seed=seed,
        digest=recorder.digest(),
        events_fired=testbed.sim.events_fired,
        final_time_ps=testbed.sim.now,
        messages_sent=workload.messages_sent,
        messages_received=workload.messages_received,
        counters={
            "digested": recorder.digested,
        },
    )


def run_probe(
    seed: int = 0,
    duration_ps: int = 4 * MS,
    probe: Optional[Callable[[int, int], ProbeResult]] = None,
) -> ProbeResult:
    """Run one probe campaign under sanitize mode and digest it."""
    chosen = probe if probe is not None else _default_probe
    previous = os.environ.get("REPRO_SANITIZE")
    os.environ["REPRO_SANITIZE"] = "1"
    try:
        return chosen(seed, duration_ps)
    finally:
        if previous is None:
            del os.environ["REPRO_SANITIZE"]
        else:
            os.environ["REPRO_SANITIZE"] = previous


def check_determinism(
    seed: int = 0,
    runs: int = 2,
    duration_ps: int = 4 * MS,
    probe: Optional[Callable[[int, int], ProbeResult]] = None,
) -> SanitizeReport:
    """Replay the same seeded campaign ``runs`` times; compare digests."""
    results = [
        run_probe(seed=seed, duration_ps=duration_ps, probe=probe)
        for _ in range(runs)
    ]
    return SanitizeReport(seed=seed, runs=results)
