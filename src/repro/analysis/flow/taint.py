"""FLOW1xx — determinism taint analysis.

simlint's SIM001/SIM002 flag nondeterminism *at the call site*; this
analysis flags it **at the output boundary**: a wall-clock read that
only feeds a log string is noise, but one that reaches a stats table, a
digest, a journal record, a ``derive_seed`` argument or a merged
telemetry metric silently breaks bit-for-bit campaign replay.  Each
function's CFG is solved to fixpoint with the :mod:`dataflow` engine,
then replayed to report every source→sink path.

Sources (the rule ID a reaching taint is reported under):

========  =============================================================
FLOW101   wall-clock reads (``time.time``/``perf_counter``/…,
          ``datetime.now``/``utcnow``/``today``)
FLOW102   unseeded randomness (``random.*`` module functions,
          ``os.urandom``, ``secrets.*``)
FLOW103   ``id()`` — CPython address, differs across runs
FLOW104   unsorted directory listings (``os.listdir``/``os.scandir``,
          ``glob.glob``/``iglob``, ``Path.iterdir``/``glob``/``rglob``)
FLOW105   set-order-dependent iteration (``for x in {…}``); ``dict``
          iteration is deliberately *not* a source — CPython dicts are
          insertion-ordered, and the codebase relies on that
========  =============================================================

``sorted(...)`` (and an in-place ``.sort()``) neutralises the two
*order* taints (FLOW104/FLOW105) — the values are fine, only their
order was unstable.

Sinks are recognised two ways: **by name** for the unambiguous entry
points (``derive_seed(...)``, ``blake2b(...)``, and the capture
writer's ``write_event``/``write_window``/``write_experiment``), and
**by tracked kind** for generic method names — a variable assigned from
``blake2b(...)`` carries kind ``digest`` so its ``.update(x)`` is a
sink, while an unrelated ``d.update(x)`` is not.  Kinds assigned to
``self.*`` attributes anywhere in a class seed the entry state of every
method of that class, so ``self._table.add(...)`` sinks even though the
constructor ran in ``__init__``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, FrozenSet, Hashable, List, Optional, Set, Tuple, Union

from repro.analysis.engine import Finding, ModuleInfo, ModuleRule
from repro.analysis.flow.cfg import LoopBind, build_cfg
from repro.analysis.flow.dataflow import State, replay, solve_forward

__all__ = ["DeterminismTaintRule", "Taint"]


@dataclass(frozen=True)
class Taint:
    """One nondeterminism source: which rule, what, where."""

    rule_id: str
    detail: str
    line: int


Fact = Hashable  # Taint | "kind:<k>" strings
Facts = FrozenSet[Fact]
_EMPTY: Facts = frozenset()

#: Wall-clock attributes on the ``time`` module (FLOW101).
_WALL_TIME_ATTRS = {
    "time", "time_ns", "perf_counter", "perf_counter_ns",
    "monotonic", "monotonic_ns", "process_time", "process_time_ns",
    "clock",
}
#: Wall-clock attributes on ``datetime``/``date`` (FLOW101).
_WALL_DATETIME_ATTRS = {"now", "utcnow", "today"}

#: Dotted call names that yield unsorted directory listings (FLOW104).
_LISTING_CALLS = {"os.listdir", "os.scandir", "glob.glob", "glob.iglob"}
#: Method names that yield unsorted listings on path-like objects.
_LISTING_METHODS = {"iterdir", "glob", "rglob"}

#: Constructor call name -> tracked kind.
_KIND_CTORS = {
    "blake2b": "digest",
    "hashlib.blake2b": "digest",
    "sha256": "digest",
    "hashlib.sha256": "digest",
    "ResultTable": "table",
    "Journal": "journal",
    "CaptureWriter": "capture",
}
#: Method-call constructors (``registry.counter(...)`` etc.).
_KIND_METHOD_CTORS = {"counter": "metric", "gauge": "metric",
                      "histogram": "metric"}
#: kind -> method names that are sinks on values of that kind.
_KIND_SINKS = {
    "digest": {"update"},
    "table": {"add", "note"},
    "journal": {"record", "begin"},
    "capture": {"write_event", "write_window", "write_experiment"},
    "metric": {"inc", "set", "observe", "add"},
}
#: Call names that are sinks regardless of kind tracking.
_NAME_SINKS = {
    "derive_seed": "a derive_seed argument",
    "blake2b": "a blake2b digest input",
    "write_event": "a capture event record",
    "write_window": "a capture window record",
    "write_experiment": "a capture experiment record",
}
#: Human labels for the kind-tracked sinks.
_KIND_SINK_LABELS = {
    "digest": "a digest input",
    "table": "a results-table entry",
    "journal": "a journal record",
    "capture": "a capture record",
    "metric": "a telemetry metric",
}

_ORDER_RULES = ("FLOW104", "FLOW105")


def _dotted(expr: ast.expr) -> Optional[str]:
    """``a.b.c`` for a pure Name/Attribute chain, else None."""
    parts: List[str] = []
    node = expr
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _is_set_expr(expr: ast.expr, state: State) -> bool:
    if isinstance(expr, (ast.Set, ast.SetComp)):
        return True
    if isinstance(expr, ast.Call):
        func = expr.func
        if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
            return True
    path = _dotted(expr)
    if path is not None:
        return "kind:set" in state.get(path, _EMPTY)
    return False


def _target_paths(target: ast.expr) -> List[str]:
    """The state keys a store-target binds (names and dotted paths)."""
    if isinstance(target, (ast.Tuple, ast.List)):
        paths: List[str] = []
        for element in target.elts:
            paths.extend(_target_paths(element))
        return paths
    if isinstance(target, ast.Starred):
        return _target_paths(target.value)
    path = _dotted(target)
    return [path] if path is not None else []


class _FunctionTaint:
    """Transfer function + sink emission for one function's CFG."""

    def __init__(
        self,
        module: ModuleInfo,
        rule: "DeterminismTaintRule",
        entry_kinds: Dict[str, Facts],
    ) -> None:
        self.module = module
        self.rule = rule
        self.entry_kinds = entry_kinds
        self.emitting = False
        self.findings: List[Finding] = []
        self._emitted: Set[Tuple[int, int, str, int]] = set()

    # -- driver --------------------------------------------------------

    def run(self, func: Union[ast.FunctionDef, ast.AsyncFunctionDef,
                              ast.Module]) -> List[Finding]:
        cfg = build_cfg(func)
        entry: State = {
            path: facts for path, facts in self.entry_kinds.items()
        }
        states = solve_forward(cfg, self.transfer, entry)
        self.emitting = True
        replay(cfg, self.transfer, states)
        self.emitting = False
        return self.findings

    # -- transfer ------------------------------------------------------

    def transfer(self, stmt: object, state: State) -> State:
        out = dict(state)
        if isinstance(stmt, LoopBind):
            facts = self.expr_facts(stmt.iter, out)
            if _is_set_expr(stmt.iter, out):
                facts = facts | {Taint(
                    "FLOW105",
                    "set-order-dependent iteration",
                    stmt.lineno,
                )}
            facts = frozenset(
                f for f in facts if f != "kind:set"
            )
            for path in _target_paths(stmt.target):
                out[path] = facts
            return out
        assert isinstance(stmt, ast.stmt), stmt
        if isinstance(stmt, ast.Assign):
            facts = self.expr_facts(stmt.value, out)
            for target in stmt.targets:
                self._store(target, facts, out)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                facts = self.expr_facts(stmt.value, out)
                self._store(stmt.target, facts, out)
        elif isinstance(stmt, ast.AugAssign):
            facts = self.expr_facts(stmt.value, out)
            for path in _target_paths(stmt.target):
                out[path] = out.get(path, _EMPTY) | facts
        elif isinstance(stmt, (ast.Expr, ast.Return)):
            if stmt.value is not None:
                # `x.sort()` neutralises the order taints on x in place.
                call = stmt.value
                if (
                    isinstance(call, ast.Call)
                    and isinstance(call.func, ast.Attribute)
                    and call.func.attr == "sort"
                ):
                    base = _dotted(call.func.value)
                    if base is not None and base in out:
                        out[base] = _strip_order(out[base])
                self.expr_facts(stmt.value, out)
        elif isinstance(stmt, (ast.Assert, ast.Raise)):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self.expr_facts(child, out)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                for path in _target_paths(target):
                    out.pop(path, None)
        return out

    def _store(self, target: ast.expr, facts: Facts, out: State) -> None:
        if isinstance(target, ast.Subscript):
            # d[k] = tainted — the container accumulates the taint.
            self.expr_facts(target.slice, out)
            base = _dotted(target.value)
            if base is not None:
                out[base] = out.get(base, _EMPTY) | facts
            return
        paths = _target_paths(target)
        if paths:
            for path in paths:
                out[path] = facts  # strong update
        # Unresolvable targets (starred expressions into calls, etc.)
        # simply drop the facts — conservative for a may-analysis only
        # in the harmless direction (the value is not a sink).

    # -- expressions ---------------------------------------------------

    def expr_facts(self, expr: ast.expr, state: State) -> Facts:
        if isinstance(expr, ast.Call):
            return self._call_facts(expr, state)
        path = _dotted(expr)
        if path is not None:
            facts = state.get(path, _EMPTY)
            if "." in path:
                # a.b carries a's facts too (field of tainted object).
                root = path.split(".", 1)[0]
                facts = facts | state.get(root, _EMPTY)
            return facts
        if isinstance(expr, (ast.ListComp, ast.SetComp,
                             ast.GeneratorExp, ast.DictComp)):
            return self._comprehension_facts(expr, state)
        if isinstance(expr, ast.Lambda):
            return _EMPTY
        facts: Facts = _EMPTY
        for child in ast.iter_child_nodes(expr):
            if isinstance(child, ast.expr):
                facts = facts | self.expr_facts(child, state)
        return facts

    def _comprehension_facts(self, expr: ast.expr, state: State) -> Facts:
        """Union over element + iterables, with set-iteration taint.

        Comprehensions bind their targets expression-locally; an inner
        scope copy of the state picks up the per-generator bindings so
        the element expression sees them.
        """
        inner = dict(state)
        facts: Facts = _EMPTY
        for gen in expr.generators:  # type: ignore[attr-defined]
            iter_facts = self.expr_facts(gen.iter, inner)
            if _is_set_expr(gen.iter, inner):
                iter_facts = iter_facts | {Taint(
                    "FLOW105",
                    "set-order-dependent iteration",
                    getattr(gen.iter, "lineno", expr.lineno),
                )}
            iter_facts = frozenset(
                f for f in iter_facts if f != "kind:set"
            )
            for path in _target_paths(gen.target):
                inner[path] = iter_facts
            facts = facts | iter_facts
            for cond in gen.ifs:
                self.expr_facts(cond, inner)
        for key in ("elt", "key", "value"):
            sub = getattr(expr, key, None)
            if isinstance(sub, ast.expr):
                facts = facts | self.expr_facts(sub, inner)
        if isinstance(expr, ast.SetComp):
            facts = facts | {"kind:set"}
        return facts

    def _call_facts(self, call: ast.Call, state: State) -> Facts:
        arg_facts: Facts = _EMPTY
        for arg in call.args:
            value = arg.value if isinstance(arg, ast.Starred) else arg
            arg_facts = arg_facts | self.expr_facts(value, state)
        for keyword in call.keywords:
            arg_facts = arg_facts | self.expr_facts(keyword.value, state)

        func = call.func
        dotted = _dotted(func)

        # sorted(...) — order is now stable; value taints pass through.
        if isinstance(func, ast.Name) and func.id == "sorted":
            return _strip_order(arg_facts)

        self._check_sink(call, dotted, arg_facts, state)

        source = self._source_taint(call, dotted, state)
        if source is not None:
            return arg_facts | {source}

        if dotted in ("set", "frozenset") or isinstance(func, ast.Name) and \
                func.id in ("set", "frozenset"):
            return arg_facts | {"kind:set"}
        kind = _KIND_CTORS.get(dotted or "")
        if kind is None and isinstance(func, ast.Attribute):
            kind = (
                _KIND_CTORS.get(func.attr)
                or _KIND_METHOD_CTORS.get(func.attr)
            )
        if kind is not None:
            return arg_facts | {f"kind:{kind}"}

        # A method call on a tracked value keeps that value's facts
        # (digest.copy() is still a digest, s.union() still a set).
        if isinstance(func, ast.Attribute):
            base = _dotted(func.value)
            if base is not None:
                arg_facts = arg_facts | state.get(base, _EMPTY)
            else:
                # Chained receiver: str(stamp).encode(),
                # datetime.now().isoformat() — the receiver
                # expression's facts flow through the method result.
                arg_facts = arg_facts | self.expr_facts(func.value, state)
        return arg_facts

    # -- sources -------------------------------------------------------

    def _source_taint(
        self, call: ast.Call, dotted: Optional[str], state: State
    ) -> Optional[Taint]:
        line = call.lineno
        func = call.func
        if dotted is not None:
            parts = dotted.split(".")
            if parts[0] == "time" and parts[-1] in _WALL_TIME_ATTRS:
                return Taint("FLOW101", f"wall-clock read {dotted}()", line)
            if parts[-1] in _WALL_DATETIME_ATTRS and (
                "datetime" in parts or "date" in parts
            ):
                return Taint("FLOW101", f"wall-clock read {dotted}()", line)
            if parts[0] in ("random", "secrets") and len(parts) > 1:
                return Taint(
                    "FLOW102", f"unseeded randomness {dotted}()", line
                )
            if dotted == "os.urandom":
                return Taint("FLOW102", "unseeded randomness os.urandom()",
                             line)
            if dotted in _LISTING_CALLS:
                return Taint(
                    "FLOW104", f"unsorted listing {dotted}()", line
                )
        if isinstance(func, ast.Name) and func.id == "id" and call.args:
            return Taint("FLOW103", "id() value (CPython address)", line)
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _LISTING_METHODS
            and not isinstance(func.value, ast.Constant)
        ):
            return Taint(
                "FLOW104", f"unsorted listing .{func.attr}()", line
            )
        return None

    # -- sinks ---------------------------------------------------------

    def _check_sink(
        self,
        call: ast.Call,
        dotted: Optional[str],
        arg_facts: Facts,
        state: State,
    ) -> None:
        if not self.emitting:
            return
        taints = [f for f in arg_facts if isinstance(f, Taint)]
        if not taints:
            return
        func = call.func
        sink_label: Optional[str] = None
        last = dotted.split(".")[-1] if dotted else (
            func.attr if isinstance(func, ast.Attribute) else None
        )
        if last in _NAME_SINKS:
            sink_label = _NAME_SINKS[last]
        elif isinstance(func, ast.Attribute):
            base = _dotted(func.value)
            if base is not None:
                base_facts = state.get(base, _EMPTY)
                for kind, methods in _KIND_SINKS.items():
                    if f"kind:{kind}" in base_facts and func.attr in methods:
                        sink_label = _KIND_SINK_LABELS[kind]
                        break
        if sink_label is None:
            return
        for taint in sorted(taints, key=lambda t: (t.rule_id, t.line)):
            key = (call.lineno, call.col_offset, taint.rule_id, taint.line)
            if key in self._emitted:
                continue
            self._emitted.add(key)
            self.findings.append(Finding(
                path=str(self.module.path),
                line=call.lineno,
                col=call.col_offset,
                rule_id=taint.rule_id,
                message=(
                    f"{taint.detail} (line {taint.line}) flows into "
                    f"{sink_label}; route through the deterministic "
                    f"seed/clock machinery or sort before emitting"
                ),
            ))


def _strip_order(facts: Facts) -> Facts:
    return frozenset(
        f for f in facts
        if not (isinstance(f, Taint) and f.rule_id in _ORDER_RULES)
    )


def _class_attr_kinds(cls: ast.ClassDef) -> Dict[str, Facts]:
    """``self.x`` attributes assigned a tracked-kind constructor
    anywhere in the class — seeds every method's entry state."""
    kinds: Dict[str, Facts] = {}
    for node in ast.walk(cls):
        if not isinstance(node, ast.Assign):
            continue
        value = node.value
        if not isinstance(value, ast.Call):
            continue
        dotted = _dotted(value.func)
        kind = _KIND_CTORS.get(dotted or "")
        if kind is None and isinstance(value.func, ast.Attribute):
            kind = (
                _KIND_CTORS.get(value.func.attr)
                or _KIND_METHOD_CTORS.get(value.func.attr)
            )
        if kind is None:
            continue
        for target in node.targets:
            path = _dotted(target)
            if path is not None and path.startswith("self."):
                kinds[path] = frozenset({f"kind:{kind}"})
    return kinds


class DeterminismTaintRule(ModuleRule):
    """FLOW101–FLOW105: nondeterminism sources reaching output sinks."""

    rule_id = "FLOW101"
    title = "no nondeterminism source may reach an output sink"

    #: ID -> title for every rule this class can report.
    rule_table = {
        "FLOW101": "no wall-clock value may reach an output sink",
        "FLOW102": "no unseeded randomness may reach an output sink",
        "FLOW103": "no id() value may reach an output sink",
        "FLOW104": "no unsorted directory listing may reach an output sink",
        "FLOW105": "no set-iteration order may reach an output sink",
    }

    def check(self, module: ModuleInfo) -> List[Finding]:
        if not module.in_package("repro"):
            return []
        findings: List[Finding] = []
        class_kinds: Dict[int, Dict[str, Facts]] = {}
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                kinds = _class_attr_kinds(node)
                for sub in ast.walk(node):
                    if isinstance(sub, (ast.FunctionDef,
                                        ast.AsyncFunctionDef)):
                        class_kinds[id(sub)] = kinds
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                analysis = _FunctionTaint(
                    module, self, class_kinds.get(id(node), {})
                )
                findings.extend(analysis.run(node))
        return findings
