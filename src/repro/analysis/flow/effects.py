"""FLOW3xx — fastpath effect-set divergence analysis.

PR 5's conformance harness proves scalar/fast equivalence *dynamically*
on sampled workloads; both bugs it surfaced (the fused-loop watermark
off-by-one and the burst-scoped CRC dirty flag) were divergences in
**which state the two paths write and with what arguments**.  This
module checks that property statically: for each declared
:class:`~repro.fastpath.contract.EffectContract`, the *effect set* —
the ``self``-rooted attributes stored and mutating methods called — of
the scalar functions is extracted from the AST and compared against the
fast-path functions', modulo the contract's declared equivalences.

Effect vocabulary (paths are relative to ``self``, with the contract's
``strip`` prefixes removed so engine-side ``inj.fifo.push`` and
scalar-side ``self.fifo.push`` compare equal):

* ``fifo.push`` — a mutating method call on a tracked object;
* ``compare._window`` — an attribute store / augmented assignment;
* ``fallback_reasons[]`` — an item store on a tracked container;
* ``call:process_burst`` — a call to an own method (used only as a
  *fallback witness*, never compared as state).

Local aliases are resolved (``stats = self.stats`` then
``stats.symbols += n`` is the effect ``stats.symbols``), including one
level of chaining (``counts = stats.control_symbols``).

Rule IDs:

=========  ===========================================================
FLOW301    scalar-path effect with no fast-path counterpart, coverage
           mapping, fallback witness, or allowlist entry
FLOW302    effect present on both sides but with diverging (normalised)
           call-argument signature
FLOW303    fast-path effect the scalar path never performs and the
           contract does not declare
FLOW304    contract references a function that no longer exists
=========  ===========================================================
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.analysis.engine import Finding, ModuleInfo, ProjectRule

__all__ = [
    "ExtractedEffects",
    "extract_effects",
    "normalize_signature",
    "FastpathEffectContractRule",
]

#: Method names that read without mutating — never effects.
KNOWN_NONMUTATING = {
    "snapshot", "planes", "get", "count", "find", "copy", "expect",
    "keys", "values", "items", "index", "startswith", "endswith",
}


@dataclass
class ExtractedEffects:
    """The effect set of one function, plus signature witnesses."""

    #: Non-call effects: stores and mutating method calls, by path.
    effects: Set[str]
    #: ``call:name`` effects (own-method calls) — fallback witnesses.
    calls: Set[str]
    #: effect path -> list of (normalised first-arg signature, line).
    signatures: Dict[str, List[Tuple[str, int]]]
    #: effect path -> first line it occurs on (for finding locations).
    lines: Dict[str, int]


def _dotted(expr: ast.expr) -> Optional[str]:
    parts: List[str] = []
    node = expr
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def _resolve(path: str, aliases: Dict[str, str]) -> Optional[str]:
    """Rewrite ``path`` onto its ``self``-rooted form, or None.

    ``self.a.b`` -> ``a.b``; ``alias.b`` -> ``<alias target>.b`` when
    the alias is itself self-rooted.
    """
    head, _, rest = path.partition(".")
    if head == "self":
        return rest or None
    target = aliases.get(head)
    if target is None:
        return None
    return f"{target}.{rest}" if rest else target


def normalize_signature(text: str, renames: Mapping[str, str]) -> str:
    """Canonicalise an unparsed argument expression via word-boundary
    renames (longest key first, so ``inj.pipeline_depth`` wins over
    ``n``)."""
    for key in sorted(renames, key=len, reverse=True):
        # Word boundaries only where the key edge is a word char —
        # `len(burst)` ends in `)`, which `\b` could never follow.
        prefix = r"(?<!\w)" if re.match(r"\w", key) else ""
        suffix = r"(?!\w)" if re.search(r"\w$", key) else ""
        text = re.sub(
            prefix + re.escape(key) + suffix, renames[key], text
        )
    return text


def extract_effects(
    func: ast.AST,
    renames: Optional[Mapping[str, str]] = None,
    strip: Sequence[str] = (),
) -> ExtractedEffects:
    """Extract the effect set of one function body."""
    renames = renames or {}
    aliases: Dict[str, str] = {}

    # Pass 1: local aliases of self-rooted paths (``inj = self.injector``,
    # then ``counts = inj.stats.control_symbols``).  Two sweeps resolve
    # one level of chaining in either source order.
    for _sweep in (0, 1):
        for node in ast.walk(func):
            if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                continue
            target = node.targets[0]
            if not isinstance(target, ast.Name):
                continue
            value_path = _dotted(node.value)
            if value_path is None:
                continue
            resolved = _resolve(value_path, aliases)
            if resolved is not None:
                aliases[target.id] = resolved

    out = ExtractedEffects(
        effects=set(), calls=set(), signatures={}, lines={}
    )

    def strip_path(path: str) -> str:
        for prefix in strip:
            if path.startswith(prefix):
                return path[len(prefix):]
        return path

    def note(path: str, line: int) -> None:
        out.effects.add(path)
        out.lines.setdefault(path, line)

    for node in ast.walk(func):
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign)
                else [node.target]
            )
            for target in targets:
                if isinstance(target, ast.Name):
                    # Rebinding a local (even an alias of self state)
                    # is not an object effect.
                    continue
                suffix = ""
                base = target
                if isinstance(base, ast.Subscript):
                    suffix = "[]"
                    base = base.value
                path = _dotted(base)
                if path is None:
                    continue
                resolved = _resolve(path, aliases)
                if resolved is None:
                    continue
                note(strip_path(resolved) + suffix, base.lineno)
        elif isinstance(node, ast.Call):
            func_expr = node.func
            if not isinstance(func_expr, ast.Attribute):
                continue
            method = func_expr.attr
            if method in KNOWN_NONMUTATING:
                continue
            base_path = _dotted(func_expr.value)
            if base_path is None:
                continue
            resolved = _resolve(base_path, aliases)
            if resolved is None:
                # self.method(...) — own-method call witness.
                if base_path == "self":
                    out.calls.add(f"call:{method}")
                continue
            stripped = strip_path(f"{resolved}.{method}")
            if "." not in stripped:
                # The whole object prefix was stripped away: this is a
                # delegated own-method call, a fallback witness.
                out.calls.add(f"call:{stripped}")
                continue
            note(stripped, func_expr.lineno)
            if node.args:
                signature = normalize_signature(
                    ast.unparse(node.args[0]), renames
                )
                out.signatures.setdefault(stripped, []).append(
                    (signature, node.lineno)
                )
    # A bare self-attribute call recorded as ``call:x`` may also be an
    # effect path when x is itself dotted (``self._on_injection(e)`` is
    # the witness call:_on_injection; ``self.events.append(e)`` was
    # handled above as events.append).
    return out


@dataclass(frozen=True)
class _Located:
    module: str
    path: str
    line: int


class FastpathEffectContractRule(ProjectRule):
    """FLOW301–FLOW304: declared scalar/fast effect contracts hold."""

    rule_id = "FLOW301"
    title = "fast path covers every scalar-path effect"

    rule_table = {
        "FLOW301": "every scalar-path effect is covered on the fast path",
        "FLOW302": "scalar/fast effect signatures agree",
        "FLOW303": "no undeclared fast-path-only effects",
        "FLOW304": "effect contracts reference existing functions",
    }

    def __init__(self, contracts=None) -> None:
        if contracts is None:
            from repro.fastpath.contract import CONTRACTS
            contracts = CONTRACTS
        self.contracts = list(contracts)

    # -- resolution ----------------------------------------------------

    def _find_function(
        self, modules: Dict[str, ModuleInfo], module: str, qualname: str
    ) -> Optional[Tuple[ModuleInfo, ast.AST]]:
        info = modules.get(module)
        if info is None:
            return None
        parts = qualname.split(".")
        scope: ast.AST = info.tree
        for i, part in enumerate(parts):
            found = None
            for node in ast.iter_child_nodes(scope):
                if isinstance(
                    node, (ast.ClassDef, ast.FunctionDef,
                           ast.AsyncFunctionDef)
                ) and node.name == part:
                    found = node
                    break
            if found is None:
                return None
            scope = found
        if not isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return None
        return info, scope

    # -- checking ------------------------------------------------------

    def check_project(
        self, modules: Dict[str, ModuleInfo]
    ) -> List[Finding]:
        findings: List[Finding] = []
        for contract in self.contracts:
            findings.extend(self._check_contract(contract, modules))
        findings.sort(key=lambda f: (f.path, f.line, f.rule_id, f.message))
        return findings

    def _check_contract(self, contract, modules) -> List[Finding]:
        refs = list(contract.scalar) + list(contract.fast)
        present = [r for r in refs if r.module in modules]
        if not present:
            # The scanned tree does not contain this contract's subject
            # code at all (e.g. a partial fixture tree) — skip.
            return []

        findings: List[Finding] = []
        anchor = modules[present[0].module]

        def side(refs, renames, strip):
            merged = ExtractedEffects(
                effects=set(), calls=set(), signatures={}, lines={}
            )
            located: Dict[str, _Located] = {}
            for ref in refs:
                resolved = self._find_function(
                    modules, ref.module, ref.qualname
                )
                if resolved is None:
                    findings.append(Finding(
                        path=str(anchor.path),
                        line=1,
                        col=0,
                        rule_id="FLOW304",
                        message=(
                            f"effect contract `{contract.name}` "
                            f"references missing function "
                            f"{ref.module}:{ref.qualname}"
                        ),
                    ))
                    continue
                info, func = resolved
                extracted = extract_effects(func, renames, strip)
                merged.effects |= extracted.effects
                merged.calls |= extracted.calls
                for path, sigs in extracted.signatures.items():
                    merged.signatures.setdefault(path, []).extend(sigs)
                for path, line in extracted.lines.items():
                    merged.lines.setdefault(path, line)
                    located.setdefault(
                        path, _Located(ref.module, str(info.path), line)
                    )
                located.setdefault(
                    "__def__", _Located(
                        ref.module, str(info.path), func.lineno
                    )
                )
            return merged, located

        scalar, scalar_loc = side(
            contract.scalar, contract.scalar_renames, contract.scalar_strip
        )
        fast, fast_loc = side(
            contract.fast, contract.fast_renames, contract.fast_strip
        )

        fallback_active = bool(
            set(contract.fallback_calls) & fast.calls
        )
        covered_targets: Set[str] = set()
        for targets in contract.covered_by.values():
            covered_targets |= set(targets)

        # FLOW301 — scalar effects the fast side does not perform.
        for effect in sorted(scalar.effects):
            if effect in fast.effects:
                continue
            if set(contract.covered_by.get(effect, ())) & fast.effects:
                continue
            if effect in contract.fallback and fallback_active:
                continue
            if effect in contract.allow_scalar_only:
                continue
            where = scalar_loc.get(effect) or scalar_loc.get("__def__")
            findings.append(Finding(
                path=where.path if where else str(anchor.path),
                line=where.line if where else 1,
                col=0,
                rule_id="FLOW301",
                message=(
                    f"scalar-path effect `{effect}` has no fast-path "
                    f"counterpart in contract `{contract.name}`; add "
                    f"bulk accounting, a covered_by mapping, or a "
                    f"fallback declaration"
                ),
            ))

        # FLOW303 — fast effects the scalar side never performs.
        for effect in sorted(fast.effects):
            if effect in scalar.effects:
                continue
            if effect in covered_targets:
                continue
            if effect in contract.allow_fast_only:
                continue
            where = fast_loc.get(effect) or fast_loc.get("__def__")
            findings.append(Finding(
                path=where.path if where else str(anchor.path),
                line=where.line if where else 1,
                col=0,
                rule_id="FLOW303",
                message=(
                    f"fast-path-only effect `{effect}` is not declared "
                    f"in contract `{contract.name}`; the scalar "
                    f"reference never performs it — declare it "
                    f"allow_fast_only with a justification or remove it"
                ),
            ))

        # FLOW302 — signature divergence on both sides.
        for effect, canonical in sorted(contract.signatures.items()):
            for merged, loc in ((scalar, scalar_loc), (fast, fast_loc)):
                for signature, line in merged.signatures.get(effect, ()):
                    if signature == canonical:
                        continue
                    where = loc.get(effect) or loc.get("__def__")
                    findings.append(Finding(
                        path=where.path if where else str(anchor.path),
                        line=line,
                        col=0,
                        rule_id="FLOW302",
                        message=(
                            f"effect `{effect}` argument signature "
                            f"`{signature}` diverges from the "
                            f"contract's canonical `{canonical}` "
                            f"(contract `{contract.name}`)"
                        ),
                    ))
        return findings
