"""Intra-procedural control-flow graphs for simflow.

The flow analyses (FLOW1xx determinism taint, and anything else that
needs path sensitivity) run over a per-function CFG rather than a bare
AST walk: a taint introduced on one branch must survive the join below
an ``if``, die when every path reassigns the name, and circulate around
loop back-edges until the solver reaches a fixpoint.  The builder keeps
the graph deliberately simple — basic blocks of *statements*, edges for
control transfer — and errs on the side of **extra** edges: for a may-
analysis (union join) a superfluous edge can only make the result more
conservative, never unsound.

Modelling decisions (each exercised in ``tests/test_flow_cfg.py``):

* ``if``/``elif``/``else`` — branch blocks joining below.
* ``while``/``for`` with ``else`` — header block holding the test /
  iteration (the ``for`` target binding is recorded as a synthetic
  :class:`LoopBind` entry), back-edge from the body, ``else`` entered
  from the header's exhausted exit, ``break`` jumping past the ``else``.
* ``try``/``except``/``else``/``finally`` — every block of the ``try``
  body gets an exceptional edge to each handler entry (a raise can
  happen anywhere inside the body), handlers rejoin below; a
  ``finally`` block is interposed on the normal, exceptional *and*
  jump (``return``/``break``/``continue``) exits.
* ``with`` — treated like ``try``/``finally`` with an empty finalizer:
  body blocks get an unwinding edge to the join block, the item's
  ``as`` binding is an ordinary statement-level assignment.
* ``match`` — one arm block per ``case`` fanning out of the subject
  block and rejoining below; a fall-through edge covers the no-case-
  matched path.
* ``return``/``raise``/``break``/``continue`` — edge to the exit /
  handler / loop target, routed through any enclosing ``finally``.

Comprehensions (including nested ones) stay *inside* their statement:
they create no blocks — the taint transfer function handles their
dataflow expression-locally, which is exact because a comprehension
cannot contain statements.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Set, Tuple, Union

__all__ = ["LoopBind", "BasicBlock", "CFG", "build_cfg", "FunctionLike"]

FunctionLike = Union[ast.FunctionDef, ast.AsyncFunctionDef, ast.Module]


@dataclass(frozen=True)
class LoopBind:
    """Synthetic block entry: ``for target in iter`` binding.

    The transfer function treats it like ``target = <element of iter>``
    — the loop variable acquires the iterable's taints (plus an
    unordered-iteration taint when the iterable is a set).
    """

    target: ast.expr
    iter: ast.expr
    lineno: int


@dataclass
class BasicBlock:
    """A straight-line run of statements with outgoing edges."""

    index: int
    label: str = ""
    stmts: List[object] = field(default_factory=list)  # ast.stmt | LoopBind
    succs: List[int] = field(default_factory=list)

    def add_succ(self, target: int) -> None:
        if target not in self.succs:
            self.succs.append(target)


class CFG:
    """The control-flow graph of one function (or module) body."""

    def __init__(self, blocks: List[BasicBlock], entry: int, exit: int) -> None:
        self.blocks = blocks
        self.entry = entry
        self.exit = exit

    def block(self, index: int) -> BasicBlock:
        return self.blocks[index]

    def successors(self, index: int) -> List[int]:
        return self.blocks[index].succs

    def reachable(self) -> Set[int]:
        """Block indices reachable from the entry."""
        seen: Set[int] = set()
        stack = [self.entry]
        while stack:
            index = stack.pop()
            if index in seen:
                continue
            seen.add(index)
            stack.extend(self.blocks[index].succs)
        return seen

    def statements(self) -> List[object]:
        """Every placed statement, in block order (testing aid)."""
        out: List[object] = []
        for block in self.blocks:
            out.extend(block.stmts)
        return out


class _Builder:
    """Recursive-descent CFG construction with jump routing."""

    def __init__(self) -> None:
        self.blocks: List[BasicBlock] = []
        #: Stack of (continue_target, break_target) block indices.
        self._loops: List[Tuple[int, int]] = []
        #: Stack of active exception targets (handler entry blocks);
        #: each element is the list for one enclosing try.
        self._handlers: List[List[int]] = []
        #: Stack of enclosing ``finally`` entry blocks (innermost last).
        self._finals: List[int] = []

    # -- plumbing ------------------------------------------------------

    def new_block(self, label: str = "") -> int:
        block = BasicBlock(index=len(self.blocks), label=label)
        self.blocks.append(block)
        return block.index

    def edge(self, src: int, dst: int) -> None:
        self.blocks[src].add_succ(dst)

    def _route_jump(self, src: int, target: int) -> None:
        """Wire a jump from ``src`` to ``target`` through any finallys.

        With enclosing ``finally`` blocks the jump first enters the
        innermost one; the finally subgraph's exit then also flows to
        ``target``.  (One shared finally copy for all routed jumps — a
        sound over-approximation for may-analyses.)
        """
        if self._finals:
            inner = self._finals[-1]
            self.edge(src, inner)
            self._final_extra_targets[-1].add(target)
        else:
            self.edge(src, target)

    # -- statement sequences -------------------------------------------

    def build(self, body: Sequence[ast.stmt]) -> CFG:
        entry = self.new_block("entry")
        exit_index = self.new_block("exit")
        self._exit = exit_index
        self._final_extra_targets: List[Set[int]] = []
        last = self._sequence(body, entry)
        if last is not None:
            self.edge(last, exit_index)
        return CFG(self.blocks, entry, exit_index)

    def _sequence(
        self, body: Sequence[ast.stmt], current: Optional[int]
    ) -> Optional[int]:
        """Append ``body`` starting at block ``current``.

        Returns the block control falls out of, or ``None`` when every
        path ended in a jump (return/raise/break/continue).
        """
        for stmt in body:
            if current is None:
                # Dead code after a jump still gets a block so its
                # statements are placed (and analysable), just with no
                # incoming edge.
                current = self.new_block("dead")
            current = self._statement(stmt, current)
        return current

    # -- individual statements -----------------------------------------

    def _statement(self, stmt: ast.stmt, current: int) -> Optional[int]:
        if isinstance(stmt, ast.If):
            return self._if(stmt, current)
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            return self._loop(stmt, current)
        if isinstance(stmt, ast.Try):
            return self._try(stmt, current)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._with(stmt, current)
        if hasattr(ast, "Match") and isinstance(stmt, ast.Match):
            return self._match(stmt, current)
        if isinstance(stmt, ast.Return):
            self.blocks[current].stmts.append(stmt)
            self._route_jump(current, self._exit)
            return None
        if isinstance(stmt, ast.Raise):
            self.blocks[current].stmts.append(stmt)
            self._raise_edges(current)
            return None
        if isinstance(stmt, ast.Break):
            self.blocks[current].stmts.append(stmt)
            if self._loops:
                self._route_jump(current, self._loops[-1][1])
            return None
        if isinstance(stmt, ast.Continue):
            self.blocks[current].stmts.append(stmt)
            if self._loops:
                self._route_jump(current, self._loops[-1][0])
            return None
        # Nested function/class definitions bind a name; their bodies
        # get their own CFGs when the analysis recurses into them.
        self.blocks[current].stmts.append(stmt)
        return current

    def _raise_edges(self, src: int) -> None:
        """A raise goes to the active handlers (or out of the function)."""
        if self._handlers:
            for handler_entry in self._handlers[-1]:
                self.edge(src, handler_entry)
        else:
            self._route_jump(src, self._exit)

    # -- compound statements -------------------------------------------

    def _if(self, stmt: ast.If, current: int) -> Optional[int]:
        self.blocks[current].stmts.append(_expr_stmt(stmt.test))
        after = self.new_block("if-join")
        then_entry = self.new_block("then")
        self.edge(current, then_entry)
        then_exit = self._sequence(stmt.body, then_entry)
        if then_exit is not None:
            self.edge(then_exit, after)
        if stmt.orelse:
            else_entry = self.new_block("else")
            self.edge(current, else_entry)
            else_exit = self._sequence(stmt.orelse, else_entry)
            if else_exit is not None:
                self.edge(else_exit, after)
        else:
            self.edge(current, after)
        return after

    def _loop(
        self, stmt: Union[ast.While, ast.For, ast.AsyncFor], current: int
    ) -> Optional[int]:
        header = self.new_block("loop-header")
        self.edge(current, header)
        if isinstance(stmt, ast.While):
            self.blocks[header].stmts.append(_expr_stmt(stmt.test))
        else:
            self.blocks[header].stmts.append(
                LoopBind(target=stmt.target, iter=stmt.iter,
                         lineno=stmt.lineno)
            )
        after = self.new_block("loop-after")
        body_entry = self.new_block("loop-body")
        self.edge(header, body_entry)

        self._loops.append((header, after))
        body_exit = self._sequence(stmt.body, body_entry)
        self._loops.pop()
        if body_exit is not None:
            self.edge(body_exit, header)

        if stmt.orelse:
            else_entry = self.new_block("loop-else")
            self.edge(header, else_entry)
            else_exit = self._sequence(stmt.orelse, else_entry)
            if else_exit is not None:
                self.edge(else_exit, after)
        else:
            self.edge(header, after)
        return after

    def _try(self, stmt: ast.Try, current: int) -> Optional[int]:
        after = self.new_block("try-join")

        # The finally subgraph is built first so jump routing inside the
        # body can target its entry.
        final_entry: Optional[int] = None
        final_exit: Optional[int] = None
        if stmt.finalbody:
            final_entry = self.new_block("finally")
            self._final_extra_targets.append(set())
            final_exit = self._sequence(stmt.finalbody, final_entry)

        handler_entries: List[int] = []
        for handler in stmt.handlers:
            handler_entries.append(self.new_block("except"))

        # Body: every block created inside gets an exceptional edge to
        # each handler (and to finally when there is no handler).
        if stmt.finalbody:
            self._finals.append(final_entry)  # type: ignore[arg-type]
        self._handlers.append(
            handler_entries if handler_entries
            else ([final_entry] if final_entry is not None else [])
        )
        body_entry = self.new_block("try-body")
        self.edge(current, body_entry)
        first_body_block = len(self.blocks) - 1
        body_exit = self._sequence(stmt.body, body_entry)
        last_body_block = len(self.blocks)
        self._handlers.pop()

        exc_targets = handler_entries or (
            [final_entry] if final_entry is not None else []
        )
        for index in range(first_body_block, last_body_block):
            for target in exc_targets:
                self.edge(index, target)

        # else-clause runs when the body completed normally.
        if body_exit is not None and stmt.orelse:
            body_exit = self._sequence(stmt.orelse, body_exit)

        exits: List[Optional[int]] = [body_exit]
        for handler, entry in zip(stmt.handlers, handler_entries):
            if handler.name:
                self.blocks[entry].stmts.append(
                    _bind_stmt(handler.name, handler)
                )
            exits.append(self._sequence(handler.body, entry))
        if stmt.finalbody:
            self._finals.pop()

        if final_entry is not None:
            for exit_block in exits:
                if exit_block is not None:
                    self.edge(exit_block, final_entry)
            extra = self._final_extra_targets.pop()
            if final_exit is not None:
                self.edge(final_exit, after)
                for target in extra:
                    self.edge(final_exit, target)
                # An unhandled exception also transits the finally and
                # leaves the function.
                if not handler_entries:
                    self.edge(final_exit, self._exit)
            return after
        for exit_block in exits:
            if exit_block is not None:
                self.edge(exit_block, after)
        return after

    def _with(
        self, stmt: Union[ast.With, ast.AsyncWith], current: int
    ) -> Optional[int]:
        for item in stmt.items:
            if item.optional_vars is not None:
                self.blocks[current].stmts.append(
                    ast.copy_location(
                        ast.Assign(targets=[item.optional_vars],
                                   value=item.context_expr),
                        stmt,
                    )
                )
            else:
                self.blocks[current].stmts.append(
                    _expr_stmt(item.context_expr)
                )
        after = self.new_block("with-join")
        body_entry = self.new_block("with-body")
        self.edge(current, body_entry)
        first = len(self.blocks) - 1
        body_exit = self._sequence(stmt.body, body_entry)
        last = len(self.blocks)
        # Unwinding: __exit__ may suppress an exception raised anywhere
        # in the body, so every body block can reach the join directly.
        for index in range(first, last):
            self.edge(index, after)
        if body_exit is not None:
            self.edge(body_exit, after)
        return after

    def _match(self, stmt: "ast.Match", current: int) -> Optional[int]:
        self.blocks[current].stmts.append(_expr_stmt(stmt.subject))
        after = self.new_block("match-join")
        for case in stmt.cases:
            arm = self.new_block("case")
            self.edge(current, arm)
            for name in _pattern_names(case.pattern):
                self.blocks[arm].stmts.append(
                    _bind_match_stmt(name, stmt.subject, case)
                )
            if case.guard is not None:
                self.blocks[arm].stmts.append(_expr_stmt(case.guard))
            arm_exit = self._sequence(case.body, arm)
            if arm_exit is not None:
                self.edge(arm_exit, after)
        # No-case-matched fall-through (conservative even when a
        # wildcard arm exists).
        self.edge(current, after)
        return after


def _expr_stmt(expr: ast.expr) -> ast.Expr:
    return ast.copy_location(ast.Expr(value=expr), expr)


def _bind_stmt(name: str, loc: ast.AST) -> ast.Assign:
    """``name = <fresh>`` — an except-handler's exception binding."""
    target = ast.copy_location(ast.Name(id=name, ctx=ast.Store()), loc)
    value = ast.copy_location(ast.Constant(value=None), loc)
    return ast.copy_location(ast.Assign(targets=[target], value=value), loc)


def _bind_match_stmt(name: str, subject: ast.expr, loc: ast.AST) -> ast.Assign:
    """``name = <subject>`` — a match capture binds from the subject."""
    target = ast.copy_location(ast.Name(id=name, ctx=ast.Store()), loc)
    return ast.copy_location(ast.Assign(targets=[target], value=subject), loc)


def _pattern_names(pattern: "ast.pattern") -> List[str]:
    """Capture names bound by a match pattern (recursively)."""
    names: List[str] = []
    for node in ast.walk(pattern):
        capture = getattr(node, "name", None)
        if isinstance(node, (ast.MatchAs, ast.MatchStar)) and capture:
            names.append(capture)
        elif isinstance(node, ast.MatchMapping) and node.rest:
            names.append(node.rest)
    return names


def build_cfg(node: FunctionLike) -> CFG:
    """Build the CFG of a function's (or module's) body."""
    return _Builder().build(node.body)
