"""A forward may-analysis worklist solver over simflow CFGs.

The solver is deliberately small: state is a mapping ``name -> frozenset
of facts`` (taint tags, kinds — anything hashable), the join is key-wise
set union, and the transfer function is supplied by the client analysis.
Union-join plus a finite fact universe (facts are only ever *created* at
source sites, a finite set per function) gives monotone transfer
functions an ascending chain condition, so the fixpoint iteration
terminates.

Two-pass protocol
-----------------

Clients run :func:`solve_forward` once to fixpoint, then *replay* the
transfer function over each reachable block's statements starting from
the solved in-state (:func:`replay`).  Findings are emitted only during
the replay — by then every loop-carried fact has stabilised, so a sink
inside a loop sees taints introduced later in the same loop body.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Dict, FrozenSet, Hashable, Optional

from repro.analysis.flow.cfg import CFG

__all__ = ["State", "join", "solve_forward", "replay"]

#: Abstract state: variable (or dotted path) -> set of facts.
State = Dict[str, FrozenSet[Hashable]]

#: A transfer function: (statement, in-state) -> out-state.  It must be
#: pure w.r.t. the state argument (return a new dict, never mutate).
Transfer = Callable[[object, State], State]


def join(left: Optional[State], right: State) -> State:
    """Key-wise union of two states (``None`` = bottom)."""
    if left is None:
        return dict(right)
    merged = dict(left)
    for name, facts in right.items():
        have = merged.get(name)
        if have is None:
            merged[name] = facts
        elif not facts <= have:
            merged[name] = have | facts
    return merged


def solve_forward(
    cfg: CFG, transfer: Transfer, entry_state: Optional[State] = None
) -> Dict[int, State]:
    """Iterate to fixpoint; returns the in-state of every visited block."""
    states: Dict[int, State] = {cfg.entry: dict(entry_state or {})}
    worklist = deque([cfg.entry])
    on_list = {cfg.entry}
    while worklist:
        index = worklist.popleft()
        on_list.discard(index)
        state = states[index]
        for stmt in cfg.block(index).stmts:
            state = transfer(stmt, state)
        for succ in cfg.successors(index):
            merged = join(states.get(succ), state)
            if merged != states.get(succ):
                states[succ] = merged
                if succ not in on_list:
                    worklist.append(succ)
                    on_list.add(succ)
    return states


def replay(
    cfg: CFG, transfer: Transfer, states: Dict[int, State]
) -> None:
    """Re-run ``transfer`` over every solved block from its in-state.

    The client's transfer function is expected to emit findings on this
    pass (e.g. via a collector toggled on before calling).
    """
    for index in sorted(states):
        state = states[index]
        for stmt in cfg.block(index).stmts:
            state = transfer(stmt, state)
