"""simflow — CFG + dataflow analyses over the reproduction's source.

Three analysis families, all running on the per-function control-flow
graphs built by :mod:`repro.analysis.flow.cfg` or on cross-module
structure:

* **FLOW1xx** (:mod:`.taint`) — determinism taint: nondeterminism
  sources (wall clock, unseeded randomness, ``id()``, unsorted
  listings, set-order iteration) must not reach output sinks (stats
  tables, digests, journal/capture writes, ``derive_seed`` arguments,
  telemetry metrics).
* **FLOW2xx** (:mod:`.parallel`) — parallel safety: frozen specs stay
  frozen, worker-reachable module state stays immutable, closures stay
  out of the pickle boundary.
* **FLOW3xx** (:mod:`.effects`) — fastpath effect-set divergence:
  scalar and batched symbol paths must write the same device state,
  modulo the declared contracts in :mod:`repro.fastpath.contract`.

Run them with ``python -m repro.cli lint --flow``; accepted findings
live in ``lint-baseline.json`` (see :mod:`.baseline`).
"""

from __future__ import annotations

from repro.analysis.flow.baseline import (
    BaselineDelta,
    apply_baseline,
    baseline_key,
    find_baseline,
    load_baseline,
    write_baseline,
)
from repro.analysis.flow.cfg import CFG, BasicBlock, LoopBind, build_cfg
from repro.analysis.flow.dataflow import join, replay, solve_forward
from repro.analysis.flow.effects import (
    FastpathEffectContractRule,
    extract_effects,
    normalize_signature,
)
from repro.analysis.flow.parallel import (
    FrozenSpecMutationRule,
    PickleBoundaryClosureRule,
    WorkerSharedStateRule,
)
from repro.analysis.flow.taint import DeterminismTaintRule, Taint

__all__ = [
    "CFG",
    "BasicBlock",
    "LoopBind",
    "build_cfg",
    "join",
    "solve_forward",
    "replay",
    "Taint",
    "DeterminismTaintRule",
    "FrozenSpecMutationRule",
    "WorkerSharedStateRule",
    "PickleBoundaryClosureRule",
    "FastpathEffectContractRule",
    "extract_effects",
    "normalize_signature",
    "BaselineDelta",
    "baseline_key",
    "load_baseline",
    "write_baseline",
    "apply_baseline",
    "find_baseline",
    "FLOW_MODULE_RULES",
    "FLOW_PROJECT_RULES",
]

#: The simflow per-module rule pack.
FLOW_MODULE_RULES = (
    DeterminismTaintRule,
    FrozenSpecMutationRule,
    PickleBoundaryClosureRule,
)

#: The simflow cross-module rule pack.
FLOW_PROJECT_RULES = (
    WorkerSharedStateRule,
    FastpathEffectContractRule,
)
