"""Accepted-findings baseline for simlint/simflow.

A static-analysis gate on a living codebase needs a ratchet: *new*
findings fail CI, findings that were present when the gate landed are
accepted (warn-only) until someone burns them down, and baseline
entries whose finding disappeared are reported as stale so the file
shrinks monotonically.

Baseline keys are deliberately **line-free**: ``(rule, path, message)``
with the path normalised to its ``repro/``-rooted tail and source line
numbers inside messages wildcarded — so unrelated edits that shift code
downward do not churn the file, while a genuinely new finding (new
rule, new file, or new message) always counts as new.  Duplicate keys
are multiset-counted: introducing a *second* identical finding in the
same file is new, not matched.
"""

from __future__ import annotations

import json
import re
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

from repro.analysis.engine import Finding

__all__ = [
    "BaselineDelta",
    "baseline_key",
    "load_baseline",
    "write_baseline",
    "apply_baseline",
    "find_baseline",
]

BASELINE_NAME = "lint-baseline.json"
_VERSION = 1

#: ``(line 123)`` inside messages — wildcarded for stable keys.
_LINE_REF_RE = re.compile(r"\(line \d+\)")


def _normalize_path(path: str) -> str:
    """The ``repro/``-rooted tail of a finding path (stable across
    checkouts, virtualenvs and tmp trees)."""
    parts = Path(path).parts
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == "repro":
            return "/".join(parts[index:])
    return parts[-1] if parts else path


def _normalize_message(message: str) -> str:
    return _LINE_REF_RE.sub("(line *)", message)


def baseline_key(finding: Finding) -> Tuple[str, str, str]:
    return (
        finding.rule_id,
        _normalize_path(finding.path),
        _normalize_message(finding.message),
    )


def load_baseline(path: Path) -> List[Tuple[str, str, str]]:
    """Baseline keys (with multiplicity) from a baseline file."""
    data = json.loads(path.read_text(encoding="utf-8"))
    entries: List[Tuple[str, str, str]] = []
    for entry in data.get("findings", ()):
        entries.append(
            (entry["rule"], entry["path"], entry["message"])
        )
    return entries


def write_baseline(path: Path, findings: Sequence[Finding]) -> None:
    """Write the current findings as the accepted baseline."""
    entries = sorted(baseline_key(f) for f in findings)
    payload = {
        "version": _VERSION,
        "findings": [
            {"rule": rule, "path": norm_path, "message": message}
            for rule, norm_path, message in entries
        ],
    }
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )


@dataclass
class BaselineDelta:
    """The three-way split of findings against a baseline."""

    new: List[Finding] = field(default_factory=list)
    matched: List[Finding] = field(default_factory=list)
    stale: List[Tuple[str, str, str]] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """True when the gate passes: nothing new."""
        return not self.new


def apply_baseline(
    findings: Sequence[Finding],
    baseline: Sequence[Tuple[str, str, str]],
) -> BaselineDelta:
    """Split ``findings`` into new vs. baseline-matched (multiset)."""
    remaining = Counter(baseline)
    delta = BaselineDelta()
    for finding in findings:
        key = baseline_key(finding)
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
            delta.matched.append(finding)
        else:
            delta.new.append(finding)
    for key, count in sorted(remaining.items()):
        delta.stale.extend([key] * count)
    return delta


def find_baseline(start: Path) -> Optional[Path]:
    """Locate ``lint-baseline.json`` walking up from ``start``."""
    node = start if start.is_dir() else start.parent
    for candidate in (node, *node.parents):
        path = candidate / BASELINE_NAME
        if path.is_file():
            return path
    return None
