"""FLOW2xx — parallel-safety analysis.

The sharded campaign engine (PR 4) relies on three structural
properties that nothing checked statically until now:

* **FLOW201** — the spec dataclasses (``PlanSpec``/``ExperimentSpec``/
  ``CampaignSpec``/``ExperimentJob``) are frozen *by design*: one spec
  object is shared by every attempt of every worker, so any attribute
  assignment is a cross-process state leak waiting to happen (and a
  ``FrozenInstanceError`` at runtime — but only on the path that
  executes it).
* **FLOW202** — module-level mutable containers in modules imported by
  the worker entry path (``repro.runtime.worker``) are forked/spawned
  into every child; a worker mutating one silently diverges from its
  siblings and from the serial executor.  Only containers that are
  actually *mutated* from function bodies are flagged — module-level
  constant tables are fine.
* **FLOW203** — lambdas and locally-defined functions passed into spec
  constructors or process-pool entry points cross a pickle boundary;
  under the ``spawn`` start method they fail to serialise, and under
  ``fork`` they capture unpicklable live state that the declarative
  spec layer exists to exclude.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.engine import (
    Finding,
    ModuleInfo,
    ModuleRule,
    ProjectRule,
)

__all__ = [
    "FrozenSpecMutationRule",
    "WorkerSharedStateRule",
    "PickleBoundaryClosureRule",
]

#: Frozen spec classes the campaign layer shares across processes.
FROZEN_SPEC_CLASSES = (
    "PlanSpec", "ExperimentSpec", "CampaignSpec", "ExperimentJob",
)

#: Builtin / collections mutable-container constructors.
_MUTABLE_CTORS = {
    "list", "dict", "set", "defaultdict", "deque", "Counter",
    "OrderedDict", "bytearray",
}
#: Method names that mutate a builtin container in place.
_MUTATING_METHODS = {
    "append", "appendleft", "extend", "extendleft", "insert",
    "add", "update", "setdefault", "pop", "popitem", "popleft",
    "remove", "discard", "clear", "sort", "reverse",
}

#: Call names that move their callable arguments across a process
#: (pickle) boundary or into a frozen, shared spec.
_BOUNDARY_CALLS = set(FROZEN_SPEC_CLASSES) | {
    "PooledExecutor", "Process", "submit", "map_async", "apply_async",
}


def _dotted_last(expr: ast.expr) -> Optional[str]:
    """Last component of a Name/Attribute chain (``a.b.C`` -> ``C``)."""
    if isinstance(expr, ast.Attribute):
        return expr.attr
    if isinstance(expr, ast.Name):
        return expr.id
    return None


def _annotation_name(annotation: Optional[ast.expr]) -> Optional[str]:
    if annotation is None:
        return None
    if isinstance(annotation, ast.Constant) and isinstance(
        annotation.value, str
    ):
        return annotation.value.split(".")[-1].strip()
    return _dotted_last(annotation)


class FrozenSpecMutationRule(ModuleRule):
    """FLOW201: no attribute assignment on frozen spec instances."""

    rule_id = "FLOW201"
    title = "no attribute assignment to frozen spec instances"

    frozen_classes: Sequence[str] = FROZEN_SPEC_CLASSES

    def check(self, module: ModuleInfo) -> List[Finding]:
        if not module.in_package("repro"):
            return []
        findings: List[Finding] = []
        for scope in ast.walk(module.tree):
            if not isinstance(scope, (ast.FunctionDef,
                                      ast.AsyncFunctionDef)):
                continue
            spec_paths = self._spec_paths(scope)
            for node in ast.walk(scope):
                targets: List[ast.expr] = []
                if isinstance(node, ast.Assign):
                    targets = node.targets
                elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                    targets = [node.target]
                for target in targets:
                    finding = self._flag_target(
                        module, target, spec_paths
                    )
                    if finding is not None:
                        findings.append(finding)
        return findings

    def _spec_paths(
        self, scope: ast.AST
    ) -> Dict[str, str]:
        """Dotted paths known to hold frozen spec instances -> class."""
        paths: Dict[str, str] = {}
        if isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
            args = scope.args
            for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
                name = _annotation_name(arg.annotation)
                if name in self.frozen_classes:
                    paths[arg.arg] = name
        for node in ast.walk(scope):
            target: Optional[ast.expr] = None
            value: Optional[ast.expr] = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
            elif isinstance(node, ast.AnnAssign):
                target, value = node.target, node.value
                name = _annotation_name(node.annotation)
                if name in self.frozen_classes:
                    path = _store_path(target)
                    if path is not None:
                        paths[path] = name
            if value is None or not isinstance(value, ast.Call):
                continue
            ctor = _dotted_last(value.func)
            if ctor in self.frozen_classes:
                path = _store_path(target)
                if path is not None:
                    paths[path] = ctor
        return paths

    def _flag_target(
        self,
        module: ModuleInfo,
        target: ast.expr,
        spec_paths: Dict[str, str],
    ) -> Optional[Finding]:
        if not isinstance(target, ast.Attribute):
            return None
        base = target.value
        # Direct: ExperimentSpec(...).name = x
        if isinstance(base, ast.Call):
            ctor = _dotted_last(base.func)
            if ctor in self.frozen_classes:
                return self.finding(
                    module, target,
                    f"attribute assignment to frozen {ctor} instance "
                    f"(.{target.attr}); use dataclasses.replace()",
                )
            return None
        path = _store_path(base)
        if path is None:
            return None
        cls = spec_paths.get(path)
        if cls is None:
            return None
        return self.finding(
            module, target,
            f"attribute assignment to frozen {cls} instance "
            f"`{path}.{target.attr}`; specs are shared across "
            f"processes — use dataclasses.replace()",
        )


def _store_path(target: Optional[ast.expr]) -> Optional[str]:
    parts: List[str] = []
    node = target
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


class WorkerSharedStateRule(ProjectRule):
    """FLOW202: no mutated module-level containers on the worker path."""

    rule_id = "FLOW202"
    title = "no mutated module-level state reachable from workers"

    #: Import-reachability roots (the worker child entry point).
    roots: Sequence[str] = ("repro.runtime.worker",)

    def check_project(
        self, modules: Dict[str, ModuleInfo]
    ) -> List[Finding]:
        reachable = self._reachable(modules)
        findings: List[Finding] = []
        for name in sorted(reachable):
            info = modules.get(name)
            if info is None:
                continue
            mutable = self._module_level_mutables(info.tree)
            if not mutable:
                continue
            findings.extend(self._mutations(info, mutable))
        return findings

    def _reachable(self, modules: Dict[str, ModuleInfo]) -> Set[str]:
        edges: Dict[str, Set[str]] = {}
        for name, info in modules.items():
            targets: Set[str] = set()
            for node in ast.walk(info.tree):
                if isinstance(node, ast.Import):
                    for alias in node.names:
                        targets.add(alias.name)
                elif isinstance(node, ast.ImportFrom) and node.module:
                    targets.add(node.module)
                    for alias in node.names:
                        targets.add(f"{node.module}.{alias.name}")
            edges[name] = {t for t in targets if t in modules}
        seen: Set[str] = set()
        stack = [r for r in self.roots if r in modules]
        while stack:
            name = stack.pop()
            if name in seen:
                continue
            seen.add(name)
            stack.extend(edges.get(name, ()))
        return seen

    def _module_level_mutables(self, tree: ast.Module) -> Set[str]:
        names: Set[str] = set()
        for stmt in tree.body:
            targets: List[ast.expr] = []
            value: Optional[ast.expr] = None
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            if value is None:
                continue
            is_mutable = isinstance(
                value, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                        ast.DictComp, ast.SetComp)
            )
            if not is_mutable and isinstance(value, ast.Call):
                ctor = _dotted_last(value.func)
                is_mutable = ctor in _MUTABLE_CTORS
            if not is_mutable:
                continue
            for target in targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        names.discard("__all__")
        return names

    def _mutations(
        self, info: ModuleInfo, mutable: Set[str]
    ) -> List[Finding]:
        findings: List[Finding] = []
        for scope in ast.walk(info.tree):
            if not isinstance(scope, (ast.FunctionDef,
                                      ast.AsyncFunctionDef)):
                continue
            shadowed = self._locally_bound(scope)
            for node in ast.walk(scope):
                hit: Optional[Tuple[ast.AST, str, str]] = None
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and isinstance(node.func.value, ast.Name)
                    and node.func.attr in _MUTATING_METHODS
                ):
                    name = node.func.value.id
                    if name in mutable and name not in shadowed:
                        hit = (node, name, f".{node.func.attr}()")
                elif isinstance(node, (ast.Assign, ast.AugAssign)):
                    targets = (
                        node.targets if isinstance(node, ast.Assign)
                        else [node.target]
                    )
                    for target in targets:
                        if (
                            isinstance(target, ast.Subscript)
                            and isinstance(target.value, ast.Name)
                        ):
                            name = target.value.id
                            if name in mutable and name not in shadowed:
                                hit = (node, name, "item assignment")
                if hit is not None:
                    node_, name, how = hit
                    findings.append(Finding(
                        path=str(info.path),
                        line=getattr(node_, "lineno", 1),
                        col=getattr(node_, "col_offset", 0),
                        rule_id=self.rule_id,
                        message=(
                            f"module-level mutable `{name}` mutated via "
                            f"{how} in worker-reachable module "
                            f"{info.module}; workers each own a copy — "
                            f"mutations diverge silently"
                        ),
                    ))
        return findings

    def _locally_bound(self, scope: ast.AST) -> Set[str]:
        """Names assigned or received as parameters inside ``scope``
        (they shadow the module-level container)."""
        bound: Set[str] = set()
        if isinstance(scope, (ast.FunctionDef, ast.AsyncFunctionDef)):
            args = scope.args
            for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
                bound.add(arg.arg)
            if args.vararg:
                bound.add(args.vararg.arg)
            if args.kwarg:
                bound.add(args.kwarg.arg)
        globals_: Set[str] = set()
        for node in ast.walk(scope):
            if isinstance(node, ast.Global):
                globals_.update(node.names)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        bound.add(target.id)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                if isinstance(node.target, ast.Name):
                    bound.add(node.target.id)
        return bound - globals_


class PickleBoundaryClosureRule(ModuleRule):
    """FLOW203: no closures/lambdas across the executor pickle boundary."""

    rule_id = "FLOW203"
    title = "no closures crossing the process/spec pickle boundary"

    boundary_calls: Set[str] = _BOUNDARY_CALLS

    def check(self, module: ModuleInfo) -> List[Finding]:
        if not module.in_package("repro"):
            return []
        findings: List[Finding] = []
        for scope in ast.walk(module.tree):
            if not isinstance(scope, (ast.FunctionDef,
                                      ast.AsyncFunctionDef)):
                continue
            local_defs = {
                node.name
                for node in ast.walk(scope)
                if isinstance(node, (ast.FunctionDef,
                                     ast.AsyncFunctionDef))
                and node is not scope
            }
            for node in ast.walk(scope):
                if not isinstance(node, ast.Call):
                    continue
                callee = _dotted_last(node.func)
                if callee not in self.boundary_calls:
                    continue
                values = list(node.args) + [
                    kw.value for kw in node.keywords
                ]
                for value in values:
                    if isinstance(value, ast.Lambda):
                        findings.append(self.finding(
                            module, value,
                            f"lambda passed into {callee}() crosses a "
                            f"pickle boundary; pass a module-level "
                            f"function instead",
                        ))
                    elif (
                        isinstance(value, ast.Name)
                        and value.id in local_defs
                    ):
                        findings.append(self.finding(
                            module, value,
                            f"locally-defined function `{value.id}` "
                            f"passed into {callee}() crosses a pickle "
                            f"boundary; move it to module level",
                        ))
        return findings
