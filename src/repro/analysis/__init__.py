"""Static analysis and runtime sanitizers for the reproduction.

The paper's hardware is checked at synthesis time (§3.3, Table 1): FSM
exhaustiveness, register widths and clock-phase discipline are
elaborated before a bitstream exists.  This package is the software
equivalent:

* **simlint** (:mod:`repro.analysis.engine` + the rule packs) — an
  AST-based lint engine with simulation-correctness rules, run as
  ``python -m repro.cli lint``;
* **determinism sanitizer** (:mod:`repro.analysis.sanitize`) — replays
  an identical-seed campaign and proves the event streams digest
  equal, run as ``python -m repro.cli sanitize``;
* **simflow** (:mod:`repro.analysis.flow`) — a CFG + dataflow
  framework with path-sensitive determinism-taint, parallel-safety and
  fastpath effect-divergence rules, run as
  ``python -m repro.cli lint --flow``.

Rule pack
---------

=======  =============================================================
SIM001   no wall-clock time in simulation code
SIM002   no bare ``random`` module use (route through ``repro.sim.rng``)
SIM003   no float arithmetic on the integer picosecond clock
SIM004   no unordered (set) iteration feeding event scheduling
FSM001   FSM enum states must be exhaustively dispatched
REG001   command grammar must agree with the injector register file
ERR001   no silent ``except: pass``
FLOW1xx  determinism taint: nondeterminism sources must not reach sinks
FLOW2xx  parallel safety: frozen specs, worker state, pickle closures
FLOW3xx  fastpath effect-set divergence against declared contracts
=======  =============================================================

The FLOW rules run only with ``flow=True`` (CLI ``--flow``): they are
deeper, cost more, and gate against the committed
``lint-baseline.json`` rather than requiring an absolutely clean tree.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional

from repro.analysis.engine import (
    Finding,
    LintEngine,
    ModuleInfo,
    ModuleRule,
    ProjectRule,
    parse_module,
)
from repro.analysis.flow import (
    FLOW_MODULE_RULES,
    FLOW_PROJECT_RULES,
)
from repro.analysis.rules_err import NoSilentExceptRule
from repro.analysis.rules_fsm import FsmExhaustivenessRule
from repro.analysis.rules_reg import RegisterGrammarRule
from repro.analysis.rules_sim import (
    NoBareRandomRule,
    NoFloatTimeRule,
    NoUnorderedIterationRule,
    NoWallClockRule,
)

__all__ = [
    "Finding",
    "LintEngine",
    "ModuleInfo",
    "ModuleRule",
    "ProjectRule",
    "parse_module",
    "default_engine",
    "run_lint",
    "rule_table",
    "MODULE_RULES",
    "PROJECT_RULES",
    "FLOW_MODULE_RULES",
    "FLOW_PROJECT_RULES",
]

#: The default per-module rule pack, in rule-ID order.
MODULE_RULES = (
    NoWallClockRule,
    NoBareRandomRule,
    NoFloatTimeRule,
    NoUnorderedIterationRule,
    FsmExhaustivenessRule,
    NoSilentExceptRule,
)

#: The default cross-module rule pack.
PROJECT_RULES = (RegisterGrammarRule,)


def default_engine(flow: bool = False) -> LintEngine:
    """A :class:`LintEngine` loaded with the default rule pack.

    ``flow=True`` adds the simflow FLOW1xx/2xx/3xx rules on top.
    """
    module_rules = [rule() for rule in MODULE_RULES]
    project_rules = [rule() for rule in PROJECT_RULES]
    if flow:
        module_rules.extend(rule() for rule in FLOW_MODULE_RULES)
        project_rules.extend(rule() for rule in FLOW_PROJECT_RULES)
    return LintEngine(
        module_rules=module_rules,
        project_rules=project_rules,
    )


def run_lint(
    root: Optional[Path] = None,
    scan_root: Optional[Path] = None,
    flow: bool = False,
) -> List[Finding]:
    """Lint the ``repro`` package (or any tree) with the default rules.

    Without arguments the package's own installed source tree is
    scanned, so ``run_lint()`` works from any working directory.
    """
    if root is None:
        root = Path(__file__).resolve().parent.parent  # src/repro
    return default_engine(flow=flow).run(root, scan_root)


def rule_table(flow: bool = False) -> Dict[str, str]:
    """Rule ID -> one-line title, for ``lint --list`` and the docs.

    The default table holds the always-on simlint rules; ``flow=True``
    appends the simflow rule families (classes that report several IDs
    expose them via a ``rule_table`` class attribute).
    """
    table: Dict[str, str] = {}
    rule_classes = list(MODULE_RULES) + list(PROJECT_RULES)
    if flow:
        rule_classes += list(FLOW_MODULE_RULES) + list(FLOW_PROJECT_RULES)
    for rule_class in rule_classes:
        multi = getattr(rule_class, "rule_table", None)
        if multi:
            table.update(multi)
        else:
            table[rule_class.rule_id] = rule_class.title
    return dict(sorted(table.items()))
