"""ERR001 — no silent exception swallowing in simulation code.

A hot-path ``except: pass`` hides the first symptom of a broken
invariant (a misrouted frame, a cancelled event firing twice, a FIFO
phase slip).  The hardware has no equivalent of silently ignoring a
comparator fault — errors surface as ``ER`` responses on the serial
link (paper §3.3's output generator).  Software must do the same:
either handle the exception meaningfully, count it, or re-raise.
"""

from __future__ import annotations

import ast
from typing import List

from repro.analysis.engine import Finding, ModuleInfo, ModuleRule

__all__ = ["NoSilentExceptRule"]


def _is_silent(body: List[ast.stmt]) -> bool:
    """True when a handler body does nothing observable."""
    for stmt in body:
        if isinstance(stmt, ast.Pass):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            continue  # docstring / Ellipsis
        return False
    return True


class NoSilentExceptRule(ModuleRule):
    """ERR001: `except ...: pass` silently swallows failures."""

    rule_id = "ERR001"
    title = "no silent except-pass"

    def check(self, module: ModuleInfo) -> List[Finding]:
        if not module.in_package("repro"):
            return []
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if not _is_silent(node.body):
                continue
            if isinstance(node.type, ast.Name):
                what = f"except {node.type.id}"
            elif node.type is None:
                what = "bare except"
            else:
                what = "except ..."
            # Report at the first body statement so a justification
            # comment sits next to the `pass` it excuses.
            at = node.body[0] if node.body else node
            findings.append(self.finding(
                module, at,
                f"silent `{what}: pass` swallows a failure; handle it, "
                "count it, or re-raise",
            ))
        return findings
