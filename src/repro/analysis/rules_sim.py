"""Simulation-determinism rules (SIM001–SIM004).

These rules guard the invariants that make campaigns replay bit-for-bit
(the software analogue of the paper's synthesis-time checks, §3.3):

* **SIM001** — no wall-clock time sources anywhere in ``repro``, except
  the sanctioned :mod:`repro.telemetry` observation boundary and the
  :mod:`repro.runtime` host-side worker-orchestration boundary;
* **SIM002** — no bare ``random`` module use (route through
  :mod:`repro.sim.rng`);
* **SIM003** — no float arithmetic flowing into the integer picosecond
  clock (``schedule``/``schedule_at``/``run_for``/``run_until``/``every``);
* **SIM004** — no iteration over ``set`` values feeding side-effectful
  calls (set iteration order is hash-dependent; event scheduling driven
  by it is nondeterministic across interpreters).
"""

from __future__ import annotations

import ast
from typing import List, Optional, Set

from repro.analysis.engine import Finding, ModuleInfo, ModuleRule

__all__ = [
    "NoWallClockRule",
    "NoBareRandomRule",
    "NoFloatTimeRule",
    "NoUnorderedIterationRule",
]

#: Packages whose code runs *inside* simulated time.
SIM_PACKAGES = ("repro.sim", "repro.hw", "repro.myrinet")

#: Wall-clock attribute calls that must never appear in sim code.
_WALL_CLOCK_TIME_ATTRS = {
    "time",
    "time_ns",
    "perf_counter",
    "perf_counter_ns",
    "monotonic",
    "monotonic_ns",
    "process_time",
    "clock",
}
_WALL_CLOCK_DATETIME_ATTRS = {"now", "utcnow", "today"}

#: Scheduling entry points whose time arguments must stay integral.
_SCHEDULE_METHODS = {
    "schedule": (0,),
    "schedule_at": (0,),
    "run_for": (0,),
    "run_until": (0,),
    "every": (0,),
}


class NoWallClockRule(ModuleRule):
    """SIM001: wall-clock reads poison determinism inside the simulator.

    The rule covers the *whole* ``repro`` tree, not just the packages
    that run inside simulated time: any layer may end up called from a
    simulated callback.  The sanctioned wall-clock boundaries
    (:mod:`repro.telemetry` observes; :mod:`repro.runtime` times and
    kills host-side worker processes) are **scoped allowances applied
    by the engine** — see ``DEFAULT_SCOPED_ALLOWANCES`` in
    :mod:`repro.analysis.engine` and the
    ``[tool.simlint.scoped-allowances]`` table in ``pyproject.toml``;
    the rule itself flags every occurrence.
    """

    rule_id = "SIM001"
    title = "no wall-clock time in simulation code"

    def check(self, module: ModuleInfo) -> List[Finding]:
        if not module.in_package("repro"):
            return []
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Attribute):
                continue
            base = node.value
            if not isinstance(base, ast.Name):
                continue
            if base.id == "time" and node.attr in _WALL_CLOCK_TIME_ATTRS:
                findings.append(self.finding(
                    module, node,
                    f"wall-clock call time.{node.attr} in simulation code; "
                    "use the integer picosecond Simulator clock",
                ))
            elif base.id == "datetime" and node.attr in _WALL_CLOCK_DATETIME_ATTRS:
                findings.append(self.finding(
                    module, node,
                    f"wall-clock call datetime.{node.attr} in simulation "
                    "code; use the integer picosecond Simulator clock",
                ))
        return findings


class NoBareRandomRule(ModuleRule):
    """SIM002: all randomness must route through repro.sim.rng.

    The sanctioned wrapper (:mod:`repro.sim.rng`) is exempted by the
    engine's scoped-allowance table, not by this rule.
    """

    rule_id = "SIM002"
    title = "no bare `random` module use"

    def check(self, module: ModuleInfo) -> List[Finding]:
        if not module.in_package("repro"):
            return []
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith("random."):
                        findings.append(self.finding(
                            module, node,
                            "bare `import random`; draw from a "
                            "repro.sim.rng.DeterministicRng stream instead",
                        ))
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random" and node.level == 0:
                    findings.append(self.finding(
                        module, node,
                        "`from random import ...`; draw from a "
                        "repro.sim.rng.DeterministicRng stream instead",
                    ))
        return findings


def _contains_float_taint(node: ast.AST) -> Optional[ast.AST]:
    """First sub-node that introduces a float into a time expression.

    Taints: float literals, true division, ``float(...)`` calls, and
    known float-returning time converters (``to_ns``/``to_us``/...).
    """
    float_converters = {"float", "to_ns", "to_us", "to_ms", "to_s"}
    for sub in ast.walk(node):
        if isinstance(sub, ast.Constant) and isinstance(sub.value, float):
            return sub
        if isinstance(sub, ast.BinOp) and isinstance(sub.op, ast.Div):
            return sub
        if isinstance(sub, ast.Call):
            func = sub.func
            name = None
            if isinstance(func, ast.Name):
                name = func.id
            elif isinstance(func, ast.Attribute):
                name = func.attr
            if name in float_converters:
                return sub
    return None


class NoFloatTimeRule(ModuleRule):
    """SIM003: the picosecond clock is integral; floats drift."""

    rule_id = "SIM003"
    title = "no float arithmetic on the picosecond clock"

    def check(self, module: ModuleInfo) -> List[Finding]:
        if not module.in_package("repro"):
            return []
        findings: List[Finding] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            arg_indexes = _SCHEDULE_METHODS.get(func.attr)
            if arg_indexes is None:
                continue
            for index in arg_indexes:
                if index >= len(node.args):
                    continue
                taint = _contains_float_taint(node.args[index])
                if taint is not None:
                    findings.append(self.finding(
                        module, taint,
                        f"float-tainted time argument to {func.attr}(); "
                        "the picosecond clock is integer-only — use "
                        "integer arithmetic or repro.sim.timebase.from_* "
                        "(which round to int)",
                    ))
        return findings


def _set_typed_names(func: ast.AST) -> Set[str]:
    """Names bound to set values within one function body."""
    names: Set[str] = set()
    for node in ast.walk(func):
        target: Optional[ast.expr] = None
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target, value = node.targets[0], node.value
        elif isinstance(node, ast.AnnAssign):
            target = node.target
            value = node.value
            annotation = node.annotation
            if isinstance(annotation, ast.Name) and annotation.id in (
                "set", "Set", "frozenset", "FrozenSet",
            ) and isinstance(target, ast.Name):
                names.add(target.id)
        if target is None or not isinstance(target, ast.Name):
            continue
        if isinstance(value, (ast.Set, ast.SetComp)):
            names.add(target.id)
        elif isinstance(value, ast.Call):
            callee = value.func
            if isinstance(callee, ast.Name) and callee.id in ("set", "frozenset"):
                names.add(target.id)
    # Parameters annotated as sets participate too.
    if isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
        for arg in list(func.args.args) + list(func.args.kwonlyargs):
            annotation = arg.annotation
            if isinstance(annotation, ast.Name) and annotation.id in (
                "set", "Set", "frozenset", "FrozenSet",
            ):
                names.add(arg.arg)
    return names


def _is_set_expression(node: ast.expr, set_names: Set[str]) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        func = node.func
        return isinstance(func, ast.Name) and func.id in ("set", "frozenset")
    if isinstance(node, ast.Name):
        return node.id in set_names
    return False


def _body_has_method_call(body: List[ast.stmt]) -> Optional[ast.Call]:
    """First method call (``obj.method(...)``) inside a loop body."""
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                return node
    return None


class NoUnorderedIterationRule(ModuleRule):
    """SIM004: iterating a set to drive side effects is order-unstable."""

    rule_id = "SIM004"
    title = "no unordered iteration feeding event scheduling"

    def check(self, module: ModuleInfo) -> List[Finding]:
        if not module.in_package(*SIM_PACKAGES):
            return []
        findings: List[Finding] = []
        functions = [
            node for node in ast.walk(module.tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        scopes: List[ast.AST] = functions if functions else [module.tree]
        seen: Set[int] = set()
        for scope in scopes:
            set_names = _set_typed_names(scope)
            for node in ast.walk(scope):
                if not isinstance(node, (ast.For, ast.AsyncFor)):
                    continue
                if id(node) in seen:
                    continue
                if not _is_set_expression(node.iter, set_names):
                    continue
                call = _body_has_method_call(node.body)
                if call is None:
                    continue
                seen.add(id(node))
                findings.append(self.finding(
                    module, node,
                    "iteration over a set drives side-effectful calls; "
                    "set order is hash-dependent — iterate sorted(...) so "
                    "event scheduling stays deterministic",
                ))
        return findings
