"""SARIF 2.1.0 export for simlint/simflow findings.

SARIF (Static Analysis Results Interchange Format) is what code-
scanning UIs ingest: uploading the report from CI annotates pull
requests with each finding at its source location.  The exporter is
deliberately minimal — one run, one driver, one result per finding —
and deterministic: rules and results are emitted in sorted order so the
artifact diffs cleanly between runs.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Mapping, Optional, Sequence

from repro.analysis.engine import Finding

__all__ = ["to_sarif", "dump_sarif"]

_SARIF_VERSION = "2.1.0"
_SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)
_TOOL_NAME = "simlint"
_INFO_URI = "docs/static-analysis.md"


def to_sarif(
    findings: Sequence[Finding],
    rule_titles: Optional[Mapping[str, str]] = None,
    base_dir: Optional[Path] = None,
) -> Dict:
    """Render findings as a SARIF ``log`` dict.

    ``rule_titles`` populates the driver's rule metadata;
    ``base_dir`` relativises result paths (code-scanning wants paths
    relative to the repository root).
    """
    rule_titles = dict(rule_titles or {})
    seen_rules = sorted(
        {f.rule_id for f in findings} | set(rule_titles)
    )
    rules = [
        {
            "id": rule_id,
            "name": rule_id,
            "shortDescription": {
                "text": rule_titles.get(rule_id, rule_id)
            },
            "helpUri": _INFO_URI,
        }
        for rule_id in seen_rules
    ]
    rule_index = {rule_id: i for i, rule_id in enumerate(seen_rules)}

    results = []
    for finding in sorted(
        findings, key=lambda f: (f.path, f.line, f.col, f.rule_id)
    ):
        path = finding.path
        if base_dir is not None:
            resolved = Path(path).resolve()
            base = base_dir.resolve()
            if resolved.is_relative_to(base):
                path = str(resolved.relative_to(base))
        results.append({
            "ruleId": finding.rule_id,
            "ruleIndex": rule_index[finding.rule_id],
            "level": "error",
            "message": {"text": finding.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": path.replace("\\", "/"),
                    },
                    "region": {
                        "startLine": max(1, finding.line),
                        "startColumn": max(1, finding.col + 1),
                    },
                },
            }],
        })

    return {
        "$schema": _SARIF_SCHEMA,
        "version": _SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": _TOOL_NAME,
                    "informationUri": _INFO_URI,
                    "rules": rules,
                },
            },
            "results": results,
        }],
    }


def dump_sarif(
    findings: Sequence[Finding],
    out_path: Path,
    rule_titles: Optional[Mapping[str, str]] = None,
    base_dir: Optional[Path] = None,
) -> None:
    """Write the SARIF report to ``out_path``."""
    log = to_sarif(findings, rule_titles=rule_titles, base_dir=base_dir)
    out_path.write_text(
        json.dumps(log, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
