"""REG001 — command grammar ⟷ register file cross-check (paper §3.3).

In the hardware, the command decoder FSM and the injector register file
are elaborated together at synthesis: a command that writes a register
that does not exist, or writes more bits than the register holds,
simply does not synthesize.  The software keeps the grammar
(:mod:`repro.hw.decoder`) and the register file
(:mod:`repro.hw.registers`) in separate modules, so nothing but this
rule stops them drifting apart.

Statically elaborated checks:

* every ``_HANDLERS`` opcode is exactly two uppercase letters and maps
  to a ``_cmd_*`` method defined on the decoder class;
* every ``_cmd_*`` method is registered (no orphan commands);
* every ``_hex_command(tokens, "<field>", <width>)`` call names a real
  ``InjectorConfig`` field, and ``4 * width`` equals that field's
  register width (``SEGMENT_BITS`` for datapath registers,
  ``SEGMENT_LANES`` for control-lane registers — the widths are read
  from the register file's own ``__post_init__`` range checks, not
  hardcoded here);
* every ``config.copy(field=...)`` keyword names a real field.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set

from repro.analysis.engine import Finding, ModuleInfo, ProjectRule

__all__ = ["RegisterGrammarRule"]


def _find_class(tree: ast.Module, name: str) -> Optional[ast.ClassDef]:
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and node.name == name:
            return node
    return None


def _module_constants(tree: ast.Module) -> Dict[str, int]:
    """Top-level ``NAME = <int literal>`` bindings."""
    constants: Dict[str, int] = {}
    for stmt in tree.body:
        if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1:
            continue
        target = stmt.targets[0]
        if not isinstance(target, ast.Name):
            continue
        if isinstance(stmt.value, ast.Constant) and isinstance(stmt.value.value, int):
            constants[target.id] = stmt.value.value
    return constants


def _mask_widths(tree: ast.Module, constants: Dict[str, int]) -> Dict[str, int]:
    """Mask name -> bit width, from ``_MASKx = (1 << WIDTH) - 1`` forms."""
    widths: Dict[str, int] = {}
    for stmt in tree.body:
        if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1:
            continue
        target = stmt.targets[0]
        if not isinstance(target, ast.Name) or not target.id.startswith("_MASK"):
            continue
        for sub in ast.walk(stmt.value):
            if isinstance(sub, ast.Name) and sub.id in constants:
                widths[target.id] = constants[sub.id]
                break
    return widths


def _field_widths(
    config_class: ast.ClassDef, mask_widths: Dict[str, int]
) -> Dict[str, int]:
    """Register field -> bit width, read from ``__post_init__`` checks.

    The register file validates each field group in a loop::

        for name in ("compare_data", ...):
            ... 0 <= value <= _MASK32 ...

    so the loop's name tuple plus the mask it compares against gives
    the authoritative width of every checked field.
    """
    widths: Dict[str, int] = {}
    post_init = None
    for stmt in config_class.body:
        if isinstance(stmt, ast.FunctionDef) and stmt.name == "__post_init__":
            post_init = stmt
            break
    if post_init is None:
        return widths
    for node in ast.walk(post_init):
        if not isinstance(node, ast.For):
            continue
        if not isinstance(node.iter, (ast.Tuple, ast.List)):
            continue
        names = [
            element.value
            for element in node.iter.elts
            if isinstance(element, ast.Constant) and isinstance(element.value, str)
        ]
        mask_bits: Optional[int] = None
        for sub in ast.walk(node):
            if isinstance(sub, ast.Name) and sub.id in mask_widths:
                mask_bits = mask_widths[sub.id]
                break
        if mask_bits is None:
            continue
        for name in names:
            widths[name] = mask_bits
    return widths


def _config_fields(config_class: ast.ClassDef) -> Set[str]:
    fields: Set[str] = set()
    for stmt in config_class.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            fields.add(stmt.target.id)
    return fields


class RegisterGrammarRule(ProjectRule):
    """REG001: the serial grammar and the register file must agree."""

    rule_id = "REG001"
    title = "command grammar / register map cross-check"

    def __init__(
        self,
        decoder_module: str = "repro.hw.decoder",
        registers_module: str = "repro.hw.registers",
        decoder_class: str = "CommandDecoder",
        config_class: str = "InjectorConfig",
        handlers_name: str = "_HANDLERS",
    ) -> None:
        self.decoder_module = decoder_module
        self.registers_module = registers_module
        self.decoder_class = decoder_class
        self.config_class = config_class
        self.handlers_name = handlers_name

    def check_project(self, modules: Dict[str, ModuleInfo]) -> List[Finding]:
        decoder = modules.get(self.decoder_module)
        registers = modules.get(self.registers_module)
        if decoder is None or registers is None:
            return []  # nothing to cross-check in this tree
        findings: List[Finding] = []

        config = _find_class(registers.tree, self.config_class)
        fields = _config_fields(config) if config is not None else set()
        constants = _module_constants(registers.tree)
        masks = _mask_widths(registers.tree, constants)
        widths = _field_widths(config, masks) if config is not None else {}

        decoder_class = _find_class(decoder.tree, self.decoder_class)
        methods: Set[str] = set()
        if decoder_class is not None:
            methods = {
                stmt.name
                for stmt in decoder_class.body
                if isinstance(stmt, ast.FunctionDef)
            }

        findings.extend(self._check_handlers(decoder, methods))
        findings.extend(self._check_hex_commands(decoder, fields, widths))
        findings.extend(self._check_copy_keywords(decoder, fields))
        findings.sort(key=lambda f: (f.path, f.line, f.col))
        return findings

    # ------------------------------------------------------------------

    def _finding(self, module: ModuleInfo, node: ast.AST, message: str) -> Finding:
        return Finding(
            path=str(module.path),
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule_id=self.rule_id,
            message=message,
        )

    def _handlers_dict(self, decoder: ModuleInfo) -> Optional[ast.Dict]:
        for stmt in decoder.tree.body:
            if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1:
                continue
            target = stmt.targets[0]
            if isinstance(target, ast.Name) and target.id == self.handlers_name:
                if isinstance(stmt.value, ast.Dict):
                    return stmt.value
        return None

    def _check_handlers(
        self, decoder: ModuleInfo, methods: Set[str]
    ) -> List[Finding]:
        findings: List[Finding] = []
        handlers = self._handlers_dict(decoder)
        if handlers is None:
            return findings
        registered: Set[str] = set()
        for key, value in zip(handlers.keys, handlers.values):
            if key is None or not isinstance(key, ast.Constant):
                continue
            opcode = key.value
            if not (
                isinstance(opcode, str)
                and len(opcode) == 2
                and opcode.isalpha()
                and opcode.isupper()
            ):
                findings.append(self._finding(
                    decoder, key,
                    f"opcode {opcode!r} is not two uppercase letters; the "
                    "serial grammar encodes commands as two-letter opcodes",
                ))
            handler_name: Optional[str] = None
            if isinstance(value, ast.Attribute):
                handler_name = value.attr
            elif isinstance(value, ast.Name):
                handler_name = value.id
            if handler_name is not None:
                registered.add(handler_name)
                if methods and handler_name not in methods:
                    findings.append(self._finding(
                        decoder, value,
                        f"opcode {opcode!r} maps to undefined handler "
                        f"{handler_name}; no such method on "
                        f"{self.decoder_class}",
                    ))
        for method in sorted(methods):
            if method.startswith("_cmd_") and method not in registered:
                findings.append(self._finding(
                    decoder, handlers,
                    f"handler {method} is defined but not registered in "
                    f"{self.handlers_name}; the opcode is unreachable",
                ))
        return findings

    def _check_hex_commands(
        self,
        decoder: ModuleInfo,
        fields: Set[str],
        widths: Dict[str, int],
    ) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(decoder.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (isinstance(func, ast.Attribute) and func.attr == "_hex_command"):
                continue
            if len(node.args) < 3:
                continue
            attr_node, width_node = node.args[1], node.args[2]
            if not (
                isinstance(attr_node, ast.Constant)
                and isinstance(attr_node.value, str)
            ):
                continue
            attribute = attr_node.value
            if fields and attribute not in fields:
                findings.append(self._finding(
                    decoder, attr_node,
                    f"hex command writes unknown register field "
                    f"{attribute!r}; not a field of {self.config_class}",
                ))
                continue
            if not (
                isinstance(width_node, ast.Constant)
                and isinstance(width_node.value, int)
            ):
                continue
            declared_bits = widths.get(attribute)
            if declared_bits is not None and 4 * width_node.value != declared_bits:
                findings.append(self._finding(
                    decoder, width_node,
                    f"hex width {width_node.value} nibbles "
                    f"({4 * width_node.value} bits) for field "
                    f"{attribute!r} disagrees with the register file's "
                    f"{declared_bits}-bit range check",
                ))
        return findings

    def _check_copy_keywords(
        self, decoder: ModuleInfo, fields: Set[str]
    ) -> List[Finding]:
        if not fields:
            return []
        findings: List[Finding] = []
        for node in ast.walk(decoder.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (isinstance(func, ast.Attribute) and func.attr == "copy"):
                continue
            base = func.value
            if not (isinstance(base, ast.Attribute) and base.attr == "config"):
                continue
            for keyword in node.keywords:
                if keyword.arg is not None and keyword.arg not in fields:
                    findings.append(self._finding(
                        decoder, node,
                        f"config.copy() writes unknown register field "
                        f"{keyword.arg!r}; not a field of {self.config_class}",
                    ))
        return findings
