"""FSM001 — enum-state exhaustiveness (paper §3.3 FSM discipline).

The command decoder and the injector clocking are "large finite-state
machines" in the hardware; synthesis rejects an FSM with an unhandled
state.  The software models keep their states in :class:`enum.Enum`
subclasses (``_State`` in the decoder, ``ClockPhase`` in the two-phase
clock) and dispatch with ``is``/``==`` comparisons — nothing stops a new
member from being added without a dispatch arm.

This rule finds every Enum class whose name marks it as an FSM state
space (``*State``/``*Phase`` with dispatch usage) and checks
that **every member is referenced** somewhere in the defining module
outside the class body.  A member that is declared but never dispatched
on is the software analogue of an unreachable/unhandled synthesis state.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Set, Tuple

from repro.analysis.engine import Finding, ModuleInfo, ModuleRule

__all__ = ["FsmExhaustivenessRule"]

#: Enum class-name suffixes treated as FSM state spaces.
_STATE_SUFFIXES = ("State", "Phase")


def _is_enum_class(node: ast.ClassDef) -> bool:
    for base in node.bases:
        if isinstance(base, ast.Name) and base.id in ("Enum", "IntEnum", "Flag"):
            return True
        if isinstance(base, ast.Attribute) and base.attr in (
            "Enum", "IntEnum", "Flag",
        ):
            return True
    return False


def _enum_members(node: ast.ClassDef) -> Dict[str, int]:
    """Member name -> declaration line for a parsed Enum class."""
    members: Dict[str, int] = {}
    for stmt in node.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name) and not target.id.startswith("_"):
                    members[target.id] = stmt.lineno
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            target = stmt.target
            if isinstance(target, ast.Name) and not target.id.startswith("_"):
                members[target.id] = stmt.lineno
    return members


class FsmExhaustivenessRule(ModuleRule):
    """FSM001: every declared FSM state must be handled somewhere."""

    rule_id = "FSM001"
    title = "FSM enum states must be exhaustively dispatched"

    def check(self, module: ModuleInfo) -> List[Finding]:
        if not module.in_package("repro"):
            return []
        findings: List[Finding] = []
        enums: List[Tuple[ast.ClassDef, Dict[str, int]]] = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if not _is_enum_class(node):
                continue
            name = node.name.lstrip("_")
            if not name.endswith(_STATE_SUFFIXES):
                continue
            members = _enum_members(node)
            if members:
                enums.append((node, members))
        if not enums:
            return []

        for class_node, members in enums:
            class_lines = set(
                range(class_node.lineno, (class_node.end_lineno or class_node.lineno) + 1)
            )
            referenced: Set[str] = set()
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Attribute):
                    continue
                if node.lineno in class_lines:
                    continue  # the declaration itself does not count
                base = node.value
                if isinstance(base, ast.Name) and base.id == class_node.name:
                    referenced.add(node.attr)
            if not referenced:
                # The enum is data-only in this module (e.g. a value class
                # consumed elsewhere); exhaustiveness is not a local
                # property, so stay quiet rather than guess.
                continue
            for member, lineno in sorted(members.items()):
                if member not in referenced:
                    findings.append(Finding(
                        path=str(module.path),
                        line=lineno,
                        col=0,
                        rule_id=self.rule_id,
                        message=(
                            f"FSM state {class_node.name}.{member} is "
                            "declared but never dispatched in this module; "
                            "handle it or remove it (synthesis would "
                            "reject an unhandled state)"
                        ),
                    ))
        return findings
