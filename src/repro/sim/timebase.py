"""Simulation time base.

All simulation timestamps are integers in **picoseconds**.  An integer
base avoids the drift that accumulates when summing millions of
floating-point character periods (a Myrinet character period is 12.5 ns,
which is not representable exactly in nanoseconds but is exactly
12_500 ps).
"""

from __future__ import annotations

#: One picosecond — the base unit of simulated time.
PS = 1
#: One nanosecond in picoseconds.
NS = 1_000
#: One microsecond in picoseconds.
US = 1_000_000
#: One millisecond in picoseconds.
MS = 1_000_000_000
#: One second in picoseconds.
SECOND = 1_000_000_000_000


def from_ns(value: float) -> int:
    """Convert nanoseconds to integer picoseconds (rounded to nearest)."""
    return round(value * NS)


def from_us(value: float) -> int:
    """Convert microseconds to integer picoseconds (rounded to nearest)."""
    return round(value * US)


def from_ms(value: float) -> int:
    """Convert milliseconds to integer picoseconds (rounded to nearest)."""
    return round(value * MS)


def from_s(value: float) -> int:
    """Convert seconds to integer picoseconds (rounded to nearest)."""
    return round(value * SECOND)


def to_ns(value: int) -> float:
    """Convert picoseconds to nanoseconds."""
    return value / NS


def to_us(value: int) -> float:
    """Convert picoseconds to microseconds."""
    return value / US


def to_ms(value: int) -> float:
    """Convert picoseconds to milliseconds."""
    return value / MS


def to_s(value: int) -> float:
    """Convert picoseconds to seconds."""
    return value / SECOND


def format_time(value: int) -> str:
    """Render a picosecond timestamp with a human-scale unit.

    >>> format_time(12_500)
    '12.500ns'
    >>> format_time(3_000_000_000)
    '3.000ms'
    """
    if value < NS:
        return f"{value}ps"
    if value < US:
        return f"{value / NS:.3f}ns"
    if value < MS:
        return f"{value / US:.3f}us"
    if value < SECOND:
        return f"{value / MS:.3f}ms"
    return f"{value / SECOND:.3f}s"
