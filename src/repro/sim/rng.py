"""Deterministic random sources.

Every stochastic component (host interrupt jitter, payload generators,
random fault selection) draws from a :class:`DeterministicRng` derived from
a single campaign seed, so whole experiments replay bit-for-bit.
"""

from __future__ import annotations

import hashlib
import random
from typing import List, Sequence, TypeVar

T = TypeVar("T")


class DeterministicRng:
    """A seeded random source with named, independent substreams.

    ``fork(name)`` derives a child stream whose sequence depends only on
    the parent seed and the name — adding a new consumer does not disturb
    the draws seen by existing consumers, which keeps regression baselines
    stable as the library grows.
    """

    def __init__(self, seed: int = 0) -> None:
        self._seed = seed
        self._random = random.Random(seed)

    @property
    def seed(self) -> int:
        return self._seed

    def fork(self, name: str) -> "DeterministicRng":
        """Derive an independent substream identified by ``name``.

        Uses a stable hash (not Python's salted ``hash()``), so the same
        seed and name produce the same substream in *every* process —
        campaigns replay identically across invocations.
        """
        digest = hashlib.blake2b(
            f"{self._seed}:{name}".encode("utf-8"), digest_size=8
        ).digest()
        child_seed = int.from_bytes(digest, "big") & 0x7FFF_FFFF_FFFF_FFFF
        return DeterministicRng(child_seed)

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in ``[low, high]`` inclusive."""
        return self._random.randint(low, high)

    def random(self) -> float:
        """Uniform float in ``[0, 1)``."""
        return self._random.random()

    def uniform(self, low: float, high: float) -> float:
        """Uniform float in ``[low, high]``."""
        return self._random.uniform(low, high)

    def expovariate(self, rate: float) -> float:
        """Exponential variate with the given rate (1/mean)."""
        return self._random.expovariate(rate)

    def gauss(self, mu: float, sigma: float) -> float:
        """Normal variate."""
        return self._random.gauss(mu, sigma)

    def choice(self, items: Sequence[T]) -> T:
        """Uniform choice from a non-empty sequence."""
        return self._random.choice(items)

    def shuffle(self, items: List[T]) -> None:
        """In-place Fisher-Yates shuffle."""
        self._random.shuffle(items)

    def bytes(self, count: int) -> bytes:
        """``count`` random bytes."""
        return bytes(self._random.getrandbits(8) for _ in range(count))

    def byte(self) -> int:
        """One random byte value (0..255)."""
        return self._random.getrandbits(8)

    def bit_index(self, width: int) -> int:
        """Random bit position in a ``width``-bit word."""
        return self._random.randrange(width)
