"""Generator-based simulation processes.

The event-callback style used by the library internals is efficient but
awkward for writing *new* experiment logic.  A :class:`Process` wraps a
Python generator: the body ``yield``\\ s what it wants to wait for and
resumes when it happens.

Yieldable values:

* an ``int`` — sleep that many picoseconds;
* a :class:`Signal` — wait until someone calls :meth:`Signal.fire`
  (the fired value is returned by the ``yield``);
* another :class:`Process` — wait for it to finish (its return value is
  returned by the ``yield``).

Example::

    def pinger(sim, stack, dest):
        for seq in range(10):
            stack.send_udp(dest, 7, b"ping %d" % seq)
            yield 100 * US        # pace
    Process.spawn(sim, pinger(sim, stack, dest))
"""

from __future__ import annotations

from typing import Any, Callable, Generator, List, Optional

from repro.errors import SimulationError
from repro.sim.kernel import Simulator


class Signal:
    """A one-shot or repeating wake-up source for processes."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._waiters: List[Callable[[Any], None]] = []
        self.fires = 0

    def wait(self, callback: Callable[[Any], None]) -> None:
        """Register a single wake-up callback (used by Process)."""
        self._waiters.append(callback)

    def fire(self, value: Any = None) -> int:
        """Wake every current waiter; returns how many were woken."""
        self.fires += 1
        waiters, self._waiters = self._waiters, []
        for callback in waiters:
            callback(value)
        return len(waiters)


class Process:
    """A running generator coupled to the simulator."""

    def __init__(self, sim: Simulator,
                 body: Generator[Any, Any, Any],
                 name: str = "process") -> None:
        self._sim = sim
        self._body = body
        self.name = name
        self.finished = False
        self.result: Any = None
        self.error: Optional[BaseException] = None
        self._done_signal = Signal(f"{name}:done")

    @classmethod
    def spawn(cls, sim: Simulator, body: Generator[Any, Any, Any],
              name: str = "process", delay: int = 0) -> "Process":
        """Create a process and schedule its first step."""
        process = cls(sim, body, name)
        sim.schedule(delay, lambda: process._step(None), label=f"{name}:start")
        return process

    def join(self, callback: Callable[[Any], None]) -> None:
        """Invoke ``callback(result)`` when the process finishes.

        Fires immediately if it already finished.
        """
        if self.finished:
            callback(self.result)
        else:
            self._done_signal.wait(callback)

    # ------------------------------------------------------------------

    def _step(self, sent_value: Any) -> None:
        if self.finished:
            return
        try:
            wanted = self._body.send(sent_value)
        except StopIteration as stop:
            self._finish(stop.value)
            return
        except BaseException as error:  # noqa: BLE001 - surfaced to caller
            self.error = error
            self._finish(None)
            raise
        self._wait_on(wanted)

    def _wait_on(self, wanted: Any) -> None:
        if isinstance(wanted, int):
            if wanted < 0:
                raise SimulationError(
                    f"{self.name}: cannot sleep a negative duration"
                )
            self._sim.schedule(wanted, lambda: self._step(None),
                               label=f"{self.name}:sleep")
        elif isinstance(wanted, Signal):
            wanted.wait(self._step)
        elif isinstance(wanted, Process):
            wanted.join(self._step)
        else:
            raise SimulationError(
                f"{self.name}: cannot wait on {type(wanted).__name__}; "
                f"yield an int delay, a Signal, or a Process"
            )

    def _finish(self, result: Any) -> None:
        self.finished = True
        self.result = result
        self._done_signal.fire(result)
