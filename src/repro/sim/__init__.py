"""Discrete-event simulation kernel.

The kernel is deliberately small: an integer picosecond clock, a binary-heap
scheduler with deterministic tie-breaking, seeded random sources, and a
trace recorder.  Every higher layer (Myrinet, Fibre Channel, the FPGA
injector, host protocol stacks) is built on these primitives.
"""

from repro.sim.kernel import Event, Simulator
from repro.sim.process import Process, Signal
from repro.sim.rng import DeterministicRng
from repro.sim.timebase import (
    MS,
    NS,
    PS,
    US,
    SECOND,
    format_time,
    from_ms,
    from_ns,
    from_s,
    from_us,
    to_ms,
    to_ns,
    to_s,
    to_us,
)
from repro.sim.trace import TraceEvent, TraceRecorder

__all__ = [
    "Event",
    "Simulator",
    "Process",
    "Signal",
    "DeterministicRng",
    "TraceEvent",
    "TraceRecorder",
    "PS",
    "NS",
    "US",
    "MS",
    "SECOND",
    "from_ns",
    "from_us",
    "from_ms",
    "from_s",
    "to_ns",
    "to_us",
    "to_ms",
    "to_s",
    "format_time",
]
