"""The discrete-event simulation kernel.

A :class:`Simulator` owns an integer picosecond clock and a binary-heap
event queue.  Events scheduled for the same instant fire in the order they
were scheduled (a monotonically increasing sequence number breaks ties), so
simulations are fully deterministic for a given seed.
"""

from __future__ import annotations

import heapq
import os
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.errors import SimulationError
from repro.sim.timebase import format_time
from repro.telemetry import instrument as _telemetry
from repro.telemetry.state import STATE as _TELEMETRY_STATE


def sanitize_enabled() -> bool:
    """True when ``REPRO_SANITIZE=1`` asks for kernel invariant checks.

    The determinism sanitizer (:mod:`repro.analysis.sanitize`) sets this
    to turn on per-event assertions: integral timestamps, monotonic
    ``(time, seq)`` pop order, and callable callbacks.  The checks cost
    a few percent, so they stay off in normal runs.
    """
    return os.environ.get("REPRO_SANITIZE", "") == "1"


@dataclass
class Event:
    """A scheduled callback.

    The heap stores ``(time, seq, event)`` tuples, so events pop in
    deterministic order without ever comparing Event objects.
    ``cancelled`` events stay in the heap but are skipped when popped;
    this makes cancellation O(1).
    """

    time: int
    seq: int
    callback: Callable[[], None]
    label: str = ""
    cancelled: bool = False

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        self.cancelled = True


class Simulator:
    """Deterministic discrete-event scheduler with a picosecond clock."""

    def __init__(self) -> None:
        self._now = 0
        self._seq = 0
        self._queue: List[tuple] = []
        self._fired = 0
        self._running = False
        self._tracer: Optional[Callable[[Event], None]] = None
        self._sanitize = sanitize_enabled()
        self._last_fired: Tuple[int, int] = (-1, -1)

    def attach_tracer(self, tracer: Optional[Callable[[Event], None]]) -> None:
        """Install a per-event hook called as each event fires.

        The determinism sanitizer uses this to fold every fired event
        into a digest; ``None`` detaches.  The hook fires *before* the
        event's callback so divergence is pinned to the first
        out-of-order event, not its consequences.
        """
        self._tracer = tracer

    @property
    def now(self) -> int:
        """Current simulation time in picoseconds."""
        return self._now

    @property
    def events_fired(self) -> int:
        """Number of events executed so far (cancelled events excluded)."""
        return self._fired

    @property
    def pending(self) -> int:
        """Number of events still in the queue (including cancelled ones)."""
        return len(self._queue)

    def schedule(
        self, delay: int, callback: Callable[[], None], label: str = ""
    ) -> Event:
        """Schedule ``callback`` to run ``delay`` picoseconds from now.

        Returns the :class:`Event`, which the caller may ``cancel()``.
        A negative delay is an error; a zero delay fires on the next
        scheduler step, after all previously scheduled same-time events.
        """
        if delay < 0:
            raise SimulationError(
                f"cannot schedule event {delay}ps in the past at "
                f"t={format_time(self._now)}"
            )
        return self.schedule_at(self._now + delay, callback, label)

    def schedule_at(
        self, time: int, callback: Callable[[], None], label: str = ""
    ) -> Event:
        """Schedule ``callback`` at an absolute simulation time."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at t={format_time(time)}, "
                f"already at t={format_time(self._now)}"
            )
        if self._sanitize:
            if isinstance(time, bool) or not isinstance(time, int):
                raise SimulationError(
                    f"sanitize: non-integer event time {time!r}; the "
                    "picosecond clock is integer-only (see SIM003)"
                )
            if not callable(callback):
                raise SimulationError(
                    f"sanitize: event callback {callback!r} is not callable"
                )
        event = Event(time=time, seq=self._seq, callback=callback, label=label)
        self._seq += 1
        heapq.heappush(self._queue, (time, event.seq, event))
        return event

    def step(self) -> bool:
        """Execute the next pending event.

        Returns ``True`` if an event fired, ``False`` if the queue was
        empty (cancelled events are discarded silently and do not count).
        """
        while self._queue:
            _time, _seq, event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            if self._sanitize:
                self._check_pop_invariants(event)
            self._now = event.time
            self._fired += 1
            if self._tracer is not None:
                self._tracer(event)
            event.callback()
            return True
        return False

    def _check_pop_invariants(self, event: Event) -> None:
        """Event-queue invariants enforced under ``REPRO_SANITIZE=1``."""
        if event.time < self._now:
            raise SimulationError(
                f"sanitize: event '{event.label}' fires at "
                f"t={format_time(event.time)}, before the clock at "
                f"t={format_time(self._now)} — heap order violated"
            )
        key = (event.time, event.seq)
        if key <= self._last_fired:
            raise SimulationError(
                f"sanitize: event '{event.label}' pops out of order: "
                f"(time, seq)={key} after {self._last_fired}"
            )
        self._last_fired = key

    def batch_advance(
        self,
        deadline: Optional[int] = None,
        max_events: Optional[int] = None,
    ) -> int:
        """Fire queued events in one inlined drain loop.

        The batch-advance primitive behind :meth:`run` and
        :meth:`run_until`: identical pop order, sanitize invariants and
        tracer placement as per-event :meth:`step` calls, but without a
        Python method call per event — the heap pop, clock advance and
        callback dispatch are fused into a single frame.  ``deadline``
        (inclusive) bounds simulated time and advances the clock to it;
        ``max_events`` bounds the number of events fired.

        Returns the number of events executed by this call.
        """
        queue = self._queue
        heappop = heapq.heappop
        sanitize = self._sanitize
        fired = 0
        while queue:
            if max_events is not None and fired >= max_events:
                break
            time, _seq, event = queue[0]
            if event.cancelled:
                heappop(queue)
                continue
            if deadline is not None and time > deadline:
                break
            heappop(queue)
            if sanitize:
                self._check_pop_invariants(event)
            self._now = time
            self._fired += 1
            tracer = self._tracer
            if tracer is not None:
                tracer(event)
            event.callback()
            fired += 1
        if deadline is not None and deadline > self._now:
            self._now = deadline
        # Telemetry accounting happens per *batch*, never per event, so
        # the kernel's hot loop stays untouched; one slot read when off.
        if _TELEMETRY_STATE.active:
            _telemetry.kernel_run(self, fired)
        return fired

    def run(self, max_events: Optional[int] = None) -> int:
        """Run until the queue drains (or ``max_events`` fire).

        Returns the number of events executed by this call.
        """
        return self.batch_advance(max_events=max_events)

    def run_until(self, deadline: int) -> int:
        """Run all events with ``time <= deadline``; advance clock to it.

        Events scheduled beyond the deadline remain queued.  Returns the
        number of events executed.
        """
        if deadline < self._now:
            raise SimulationError(
                f"deadline t={format_time(deadline)} is before "
                f"t={format_time(self._now)}"
            )
        return self.batch_advance(deadline=deadline)

    def run_for(self, duration: int) -> int:
        """Run events for ``duration`` picoseconds of simulated time."""
        return self.run_until(self._now + duration)

    def _peek(self) -> Optional[Event]:
        """Return the next live event without popping it."""
        while self._queue:
            head = self._queue[0][2]
            if head.cancelled:
                heapq.heappop(self._queue)
                continue
            return head
        return None

    def next_event_time(self) -> Optional[int]:
        """Time of the next live event, or ``None`` if the queue is empty."""
        head = self._peek()
        return None if head is None else head.time

    def every(
        self,
        period: int,
        callback: Callable[[], None],
        label: str = "",
        start_delay: Optional[int] = None,
    ) -> "PeriodicTask":
        """Run ``callback`` every ``period`` picoseconds until stopped.

        ``start_delay`` defaults to one full period.
        """
        if period <= 0:
            raise SimulationError(f"periodic task needs period > 0, got {period}")
        task = PeriodicTask(self, period, callback, label)
        task.start(period if start_delay is None else start_delay)
        return task


class PeriodicTask:
    """A repeating event created by :meth:`Simulator.every`."""

    def __init__(
        self,
        sim: Simulator,
        period: int,
        callback: Callable[[], None],
        label: str = "",
    ) -> None:
        self._sim = sim
        self._period = period
        self._callback = callback
        self._label = label
        self._event: Optional[Event] = None
        self._stopped = False
        self.fire_count = 0

    def start(self, delay: int) -> None:
        """(Re)arm the task to first fire ``delay`` picoseconds from now."""
        self._stopped = False
        self._event = self._sim.schedule(delay, self._fire, self._label)

    def stop(self) -> None:
        """Stop the task; the pending occurrence is cancelled."""
        self._stopped = True
        if self._event is not None:
            self._event.cancel()
            self._event = None

    @property
    def stopped(self) -> bool:
        return self._stopped

    def _fire(self) -> None:
        if self._stopped:
            return
        self.fire_count += 1
        self._callback()
        if not self._stopped:
            self._event = self._sim.schedule(self._period, self._fire, self._label)
