"""Structured trace recording.

Components emit :class:`TraceEvent` records into a shared
:class:`TraceRecorder`.  Traces are the raw material for the monitoring
reports and for debugging campaigns; recording can be filtered by category
to keep long campaigns cheap.
"""

from __future__ import annotations

import hashlib
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, Iterable, List, Optional, Set

from repro.sim.timebase import format_time


@dataclass
class TraceEvent:
    """One timestamped trace record."""

    time: int
    category: str
    source: str
    message: str
    data: Dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        return f"[{format_time(self.time)}] {self.category}/{self.source}: {self.message}"


class TraceRecorder:
    """Collects trace events, optionally filtered by category.

    If ``categories`` is None every event is kept; otherwise only events
    whose category is in the set are stored.  ``max_events`` bounds memory
    for long campaigns (oldest events are dropped first).
    """

    def __init__(
        self,
        categories: Optional[Iterable[str]] = None,
        max_events: int = 1_000_000,
    ) -> None:
        self._categories: Optional[Set[str]] = (
            None if categories is None else set(categories)
        )
        self._max_events = max_events
        # A maxlen deque makes window eviction O(1); the old list-based
        # buffer paid an O(n) pop(0) per drop once the window filled.
        self._events: Deque[TraceEvent] = deque(maxlen=max_events)
        self.dropped = 0
        self._digest = hashlib.blake2b(digest_size=16)
        self._digested = 0

    def record(
        self,
        time: int,
        category: str,
        source: str,
        message: str,
        **data: Any,
    ) -> None:
        """Store one event if its category passes the filter."""
        if self._categories is not None and category not in self._categories:
            return
        if len(self._events) >= self._max_events:
            # The deque's maxlen evicts the oldest entry on append;
            # count the drop so monitoring sees the window saturate.
            self.dropped += 1
        event = TraceEvent(time, category, source, message, data)
        self._fold(event)
        self._events.append(event)

    def events(self, category: Optional[str] = None) -> List[TraceEvent]:
        """All stored events, optionally restricted to one category."""
        if category is None:
            return list(self._events)
        return [e for e in self._events if e.category == category]

    def clear(self) -> None:
        """Discard all stored events."""
        self._events.clear()
        self.dropped = 0
        self._digest = hashlib.blake2b(digest_size=16)
        self._digested = 0

    def digest(self) -> str:
        """Stable hex digest over every event *recorded* so far.

        The digest folds in events as they arrive (including any later
        dropped by the ``max_events`` window), so two recorders attached
        to two runs of the same seeded campaign produce equal digests
        iff the runs traced identically — the determinism sanitizer's
        ground truth.  Event ``data`` is folded in sorted-key order so
        dict construction order cannot perturb the hash.
        """
        return self._digest.hexdigest()

    @property
    def digested(self) -> int:
        """Number of events folded into the digest (drops included)."""
        return self._digested

    def _fold(self, event: TraceEvent) -> None:
        parts = [str(event.time), event.category, event.source, event.message]
        for key in sorted(event.data):
            parts.append(f"{key}={event.data[key]!r}")
        self._digest.update("\x1f".join(parts).encode("utf-8") + b"\x1e")
        self._digested += 1

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self):
        return iter(self._events)
