"""repro.api — the stable public surface of the reproduction.

Import from here, not from the implementation packages: the names in
``__all__`` are the ones guaranteed across minor versions, whatever
internal layering changes underneath.  :data:`API_VERSION` names the
surface contract — it bumps only when a name in the **stable** tier of
``docs/api.md`` changes meaning or disappears; additions are free.  One
import serves the ways of using the repository:

* **drive the device directly** — :class:`Simulator`,
  :class:`FaultInjectorDevice`, :class:`InjectorSession`,
  :func:`build_paper_testbed`, and the fault-model helpers
  (:func:`replace_bytes`, :func:`control_symbol_swap`);
* **describe what to run declaratively** — write a scenario document
  (topology + traffic + fault plans; see docs/scenarios.md) and
  :func:`compile_scenario` it into a :class:`CampaignSpec`; the
  built-in library is reachable through :func:`list_scenarios` /
  :func:`load_scenario`, and documents round-trip as JSON via
  :func:`scenario_to_json` / :func:`scenario_from_json`;
* **run campaigns** — describe experiments as data with
  :class:`ExperimentSpec` / :class:`PlanSpec`, collect them in a
  :class:`CampaignSpec`, and execute through
  :meth:`Campaign.run <repro.nftape.campaign.Campaign.run>` with a
  :class:`SerialExecutor`, a sharded :class:`PooledExecutor`, or the
  distributed :class:`FabricExecutor` — pull-queue workers pushing
  into a queryable sqlite :class:`ResultStore`, with crashed/hung
  workers re-issued by lease (bit-identical results at any worker
  count — see docs/runtime.md);
* **regenerate the paper** — the ``table*``/``sec*`` entry points, one
  per table/figure of the evaluation, each taking the same
  ``seed: int = 0`` base seed (per-experiment seeds derive from it via
  :func:`derive_seed`);
* **analyze what ran** — feed a campaign's artifact directory to
  :func:`analyze_artifacts` for a ranked-root-cause
  :class:`IncidentReport`, and archive/query reports through
  :class:`InsightStore` (see docs/insight.md);
* **watch it live** — subscribe to executor lifecycle events through
  :class:`EventBus` / :class:`EventBusSession`, or run the whole thing
  as a service: :class:`MonitorServer` accepts CampaignSpec JSON
  (:func:`spec_to_json` / :func:`spec_from_json`) or scenario documents
  over HTTP and streams events as NDJSON/SSE (see docs/server.md).

Example::

    from repro.api import (
        Campaign, CampaignSpec, ExperimentSpec, PlanSpec,
        PooledExecutor, control_symbol_swap, MatchMode,
    )

    from repro.api import compile_scenario, load_scenario
    table = Campaign.from_spec(
        compile_scenario(load_scenario("paper-sec35"))).run()
"""

from __future__ import annotations

from typing import Any

#: The public-surface contract version ("v<major>"); see docs/api.md.
API_VERSION = "v1"

from repro.capture import CaptureSession
from repro.core import FaultInjectorDevice, InjectorSession
from repro.core.faults import control_symbol_swap, replace_bytes
from repro.fastpath import (
    PIPELINES,
    pipeline_override,
    resolve_pipeline,
    set_default_pipeline,
)
from repro.hw.registers import CorruptMode, InjectorConfig, MatchMode
from repro.insight import IncidentReport, InsightStore, analyze_artifacts
from repro.myrinet import build_paper_testbed
from repro.myrinet.mapping import paper_oracle
from repro.nftape.campaign import Campaign, default_row
from repro.nftape.classify import classify_result
from repro.nftape.experiment import Experiment, Testbed, TestbedOptions
from repro.nftape.paper import (
    sec35_passthrough,
    sec431_throughput,
    sec432_packet_types,
    sec433_addresses,
    sec434_udp_checksum,
    table2_latency,
    table4_control_symbols,
    table4_spec,
)
from repro.nftape.results import ExperimentResult, ResultTable
from repro.nftape.workload import WorkloadConfig
from repro.runtime import (
    CampaignSpec,
    EventBus,
    EventBusSession,
    ExperimentSpec,
    FabricExecutor,
    PlanSpec,
    PooledExecutor,
    ResultStore,
    SerialExecutor,
    derive_seed,
    spec_digest,
    spec_from_json,
    spec_to_json,
)
from repro.scenario import (
    FaultSpec,
    ScenarioDoc,
    ScenarioExperiment,
    SweepSpec,
    TopologySpec,
    TrafficSpec,
    compile_scenario,
    list_scenarios,
    load_scenario,
    scenario_from_json,
    scenario_to_json,
)
from repro.server import MonitorServer
from repro.sim import DeterministicRng, Simulator
from repro.telemetry import TelemetrySession

__all__ = [
    # surface contract
    "API_VERSION",
    # simulation substrate
    "Simulator",
    "DeterministicRng",
    # the device and its host-side session
    "FaultInjectorDevice",
    "InjectorSession",
    "InjectorConfig",
    "MatchMode",
    "CorruptMode",
    "replace_bytes",
    "control_symbol_swap",
    "build_paper_testbed",
    # data-path pipeline selection (scalar reference vs batched fast path)
    "PIPELINES",
    "pipeline_override",
    "resolve_pipeline",
    "set_default_pipeline",
    # test beds and experiments
    "Testbed",
    "TestbedOptions",
    "build_testbed",
    "Experiment",
    "WorkloadConfig",
    "ExperimentResult",
    "ResultTable",
    "classify_result",
    # declarative scenarios (docs/scenarios.md)
    "ScenarioDoc",
    "ScenarioExperiment",
    "TopologySpec",
    "TrafficSpec",
    "FaultSpec",
    "SweepSpec",
    "compile_scenario",
    "scenario_to_json",
    "scenario_from_json",
    "list_scenarios",
    "load_scenario",
    # declarative campaigns and executors
    "Campaign",
    "default_row",
    "CampaignSpec",
    "ExperimentSpec",
    "PlanSpec",
    "SerialExecutor",
    "PooledExecutor",
    "FabricExecutor",
    "ResultStore",
    "derive_seed",
    "spec_digest",
    "spec_to_json",
    "spec_from_json",
    # observation sessions and the live event bus
    "TelemetrySession",
    "CaptureSession",
    "EventBus",
    "EventBusSession",
    # monitoring-as-a-service (docs/server.md)
    "MonitorServer",
    # offline incident correlation (docs/insight.md)
    "analyze_artifacts",
    "IncidentReport",
    "InsightStore",
    "paper_oracle",
    # the paper's evaluation, one entry point per table/figure
    "table2_latency",
    "table4_spec",
    "table4_control_symbols",
    "sec35_passthrough",
    "sec431_throughput",
    "sec432_packet_types",
    "sec433_addresses",
    "sec434_udp_checksum",
]


def build_testbed(**options: Any) -> Testbed:
    """A fresh known-good-state test bed from keyword options.

    Thin convenience over ``Testbed(TestbedOptions(**options))`` — the
    keywords are exactly the
    :class:`~repro.nftape.experiment.TestbedOptions` fields (``seed``,
    ``with_device``, ``host_kwargs``, …)::

        testbed = build_testbed(seed=7, with_device=True)
        testbed.settle()
    """
    return Testbed(TestbedOptions(**options))
