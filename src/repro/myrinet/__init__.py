"""Myrinet network substrate.

A symbol-level simulation of the Myrinet SAN/LAN fabric the paper's fault
injector was demonstrated on: 9-bit symbols (a data/control bit plus eight
data bits), GAP/GO/STOP control symbols, CRC-8 protected source-routed
packets, slack-buffer flow control with short and long timeouts, cut-through
switches, and LANai-style host interfaces running a Myrinet Control Program
(MCP) that maps the network once per second.
"""

from repro.myrinet.addresses import MacAddress, McpAddress
from repro.myrinet.crc8 import crc8, crc8_update
from repro.myrinet.link import Channel, Link
from repro.myrinet.packet import (
    PACKET_TYPE_DATA,
    PACKET_TYPE_MAPPING,
    TYPE_FIELD_LEN,
    MyrinetPacket,
    route_byte,
)
from repro.myrinet.symbols import (
    GAP,
    GO,
    IDLE,
    STOP,
    Symbol,
    control_symbol,
    data_symbol,
    decode_control,
    is_control,
    is_data,
)
from repro.myrinet.interface import HostInterface
from repro.myrinet.network import MyrinetNetwork, build_paper_testbed
from repro.myrinet.switch import MyrinetSwitch

__all__ = [
    "MacAddress",
    "McpAddress",
    "crc8",
    "crc8_update",
    "Channel",
    "Link",
    "MyrinetPacket",
    "route_byte",
    "PACKET_TYPE_DATA",
    "PACKET_TYPE_MAPPING",
    "TYPE_FIELD_LEN",
    "Symbol",
    "GAP",
    "GO",
    "STOP",
    "IDLE",
    "data_symbol",
    "control_symbol",
    "decode_control",
    "is_control",
    "is_data",
    "HostInterface",
    "MyrinetSwitch",
    "MyrinetNetwork",
    "build_paper_testbed",
]
