"""Myrinet host interface (the LANai-style NIC of paper Figure 7).

The interface owns one link to the fabric.  On transmit it serializes
queued packets as data-symbol bursts terminated by a GAP, gated by the
link's STOP/GO flow state; a packet stuck at the head of the queue longer
than the long-period timeout is terminated and consumed (paper §4.3.1).
On receive it models the slack buffer and the finite drain rate into host
memory, reassembles frames, checks the leading-byte MSB rule and the
trailing CRC-8, filters data packets by 48-bit destination address, and
dispatches mapping packets to the MCP.

Every drop reason the paper's campaigns observe has its own counter:
CRC errors, misaddressed packets, unknown packet types, MSB consume
errors, missing routes, transmit timeouts, and slack overflows.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple

from repro.capture import instrument as _capture
from repro.capture.state import CAPTURE as _CAPTURE
from repro.errors import ConfigurationError, CrcError, ProtocolError
from repro.myrinet.addresses import MacAddress, McpAddress
from repro.myrinet.flow import LONG_TIMEOUT_PERIODS, PortFlowControl, long_timeout_ps
from repro.myrinet.frames import DEFAULT_MAX_FRAME, FrameAssembler
from repro.myrinet.link import Channel, Link
from repro.myrinet.packet import (
    PACKET_TYPE_DATA,
    PACKET_TYPE_MAPPING,
    MyrinetPacket,
    is_route_byte,
)
from repro.myrinet.slack import (
    DEFAULT_CAPACITY,
    DEFAULT_HIGH_WATER,
    DEFAULT_LOW_WATER,
    RateDrainedSlackBuffer,
)
from repro.myrinet.symbols import Symbol
from repro.fastpath.buffer import SymbolBuffer
from repro.sim.kernel import Simulator

#: Length of the address header inside a data packet's payload:
#: 6 bytes destination MAC + 6 bytes source MAC.
DATA_HEADER_LEN = 12

#: Default transmit queue depth in packets.
DEFAULT_TX_QUEUE = 256


class HostInterface:
    """A Myrinet host interface card."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        mac: MacAddress,
        mcp_address: McpAddress,
        tx_queue_depth: int = DEFAULT_TX_QUEUE,
        rx_drain_factor: float = 1.25,
        slack_capacity: int = DEFAULT_CAPACITY,
        high_water: int = DEFAULT_HIGH_WATER,
        low_water: int = DEFAULT_LOW_WATER,
        max_frame: int = DEFAULT_MAX_FRAME,
        long_timeout_periods: int = LONG_TIMEOUT_PERIODS,
    ) -> None:
        self._sim = sim
        self.name = name
        self.mac = mac
        self.mcp_address = mcp_address
        self._tx_queue_depth = tx_queue_depth
        self._rx_drain_factor = rx_drain_factor
        self._slack_capacity = slack_capacity
        self._high_water = high_water
        self._low_water = low_water
        self._max_frame = max_frame
        self._long_timeout_periods = long_timeout_periods

        self._link: Optional[Link] = None
        self._tx_channel: Optional[Channel] = None
        self._flow: Optional[PortFlowControl] = None
        self._rx_slack: Optional[RateDrainedSlackBuffer] = None
        self._assembler = FrameAssembler(
            self._on_frame, self._on_control, max_frame
        )
        self._tx_queue: Deque[Tuple[bytes, int]] = deque()
        self._pump_scheduled = False

        self.routing_table: Dict[MacAddress, List[int]] = {}
        self._data_handler: Optional[Callable[[MacAddress, bytes], None]] = None
        self._mapping_handler: Optional[Callable[[bytes], None]] = None

        # counters -------------------------------------------------------
        self.packets_sent = 0
        self.packets_received = 0
        self.frames_received = 0
        self.crc_errors = 0
        self.consume_errors = 0
        self.misaddressed_drops = 0
        self.unknown_type_drops = 0
        self.truncated_frames = 0
        self.no_route_drops = 0
        self.tx_timeout_drops = 0
        self.tx_queue_rejects = 0

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------

    def attach_link(self, link: Link, side: str,
                    flow_transport: str = "direct") -> None:
        """Connect this interface to its fabric link."""
        if self._link is not None:
            raise ConfigurationError(f"{self.name} already attached to a link")
        if side == "a":
            self._tx_channel = link.attach_a(self)
        elif side == "b":
            self._tx_channel = link.attach_b(self)
        else:
            raise ConfigurationError(f"link side must be 'a' or 'b', got {side!r}")
        self._link = link
        self._flow = PortFlowControl(
            self._sim,
            self._tx_channel,
            transport=flow_transport,
            remote_tx_state_getter=lambda lnk=link, s=side: lnk.peer_tx_state(s),
        )
        link.register_tx_state(side, self._flow.tx_state)
        self._flow.tx_state.notify_unblocked(self._schedule_pump)
        drain_period = int(link.char_period_ps * self._rx_drain_factor)
        self._rx_slack = RateDrainedSlackBuffer(
            self._sim,
            drain_period_ps=drain_period,
            capacity=self._slack_capacity,
            high_water=self._high_water,
            low_water=self._low_water,
            on_backpressure=self._on_rx_backpressure,
        )

    @property
    def attached(self) -> bool:
        return self._link is not None

    @property
    def flow(self) -> PortFlowControl:
        if self._flow is None:
            raise ConfigurationError(f"{self.name} is not attached to a link")
        return self._flow

    @property
    def rx_slack(self) -> RateDrainedSlackBuffer:
        if self._rx_slack is None:
            raise ConfigurationError(f"{self.name} is not attached to a link")
        return self._rx_slack

    @property
    def long_timeout_ps(self) -> int:
        if self._link is None:
            return long_timeout_ps(12_500, self._long_timeout_periods)
        return long_timeout_ps(self._link.char_period_ps,
                               self._long_timeout_periods)

    def set_data_handler(
        self, handler: Callable[[MacAddress, bytes], None]
    ) -> None:
        """Install the callback for delivered data payloads."""
        self._data_handler = handler

    def set_mapping_handler(self, handler: Callable[[bytes], None]) -> None:
        """Install the callback for mapping-packet payloads (the MCP)."""
        self._mapping_handler = handler

    # ------------------------------------------------------------------
    # transmit path
    # ------------------------------------------------------------------

    def send_packet(self, packet: MyrinetPacket) -> bool:
        """Queue a fully-routed packet.  Returns False if the queue is full."""
        if len(self._tx_queue) >= self._tx_queue_depth:
            self.tx_queue_rejects += 1
            return False
        self._tx_queue.append((packet.to_bytes(), self._sim.now))
        if _CAPTURE.active:
            # Correlation id assigned at transmit-queue entry; the
            # fingerprint lets the far end recognise this packet again.
            _capture.host_send(self._sim.now, self.name, packet)
        self._schedule_pump()
        return True

    def send_to(self, dest: MacAddress, payload: bytes) -> bool:
        """Send a data packet to ``dest`` using the installed routing table.

        The payload is prefixed with the 12-byte address header.  Returns
        False when no route is known (the paper's "node removed from the
        network" condition) or when the transmit queue is full.
        """
        route = self.routing_table.get(dest)
        if route is None:
            self.no_route_drops += 1
            return False
        packet = MyrinetPacket.for_route(
            route,
            PACKET_TYPE_DATA,
            dest.to_bytes() + self.mac.to_bytes() + payload,
        )
        return self.send_packet(packet)

    def send_mapping(self, route: Sequence[int], payload: bytes) -> bool:
        """Send a mapping packet along an explicit route."""
        packet = MyrinetPacket.for_route(route, PACKET_TYPE_MAPPING, payload)
        return self.send_packet(packet)

    @property
    def tx_queue_length(self) -> int:
        return len(self._tx_queue)

    def _schedule_pump(self) -> None:
        if self._pump_scheduled or not self._tx_queue:
            return
        self._pump_scheduled = True
        self._sim.schedule(0, self._pump, label=f"{self.name}:tx-pump")

    def _pump(self) -> None:
        self._pump_scheduled = False
        if self._tx_channel is None or self._flow is None:
            return
        now = self._sim.now
        timeout = self.long_timeout_ps
        while self._tx_queue and now - self._tx_queue[0][1] > timeout:
            # Long-period timeout: terminate the packet and consume the
            # remainder (paper §4.3.1).
            self._tx_queue.popleft()
            self.tx_timeout_drops += 1
        if not self._tx_queue:
            return
        if self._flow.tx_state.blocked():
            resume = self._flow.tx_state.earliest_resume()
            if resume is not None and resume > now:
                self._pump_scheduled = True
                self._sim.schedule_at(resume, self._unpump,
                                      label=f"{self.name}:tx-resume")
            # Direct holds wake us through the unblock callback.
            return
        free_at = self._tx_channel.free_at()
        if free_at > now:
            self._pump_scheduled = True
            self._sim.schedule_at(free_at, self._unpump,
                                  label=f"{self.name}:tx-wait")
            return
        raw, _enqueued = self._tx_queue.popleft()
        # Build the burst as a SymbolBuffer seeded straight from the raw
        # packet bytes: an in-path device's fast pipeline then gets its
        # value/flag planes for free (see repro.fastpath.buffer).
        burst = SymbolBuffer.from_frame(raw)
        self._tx_channel.send(burst)
        self.packets_sent += 1
        if self._tx_queue:
            self._pump_scheduled = True
            self._sim.schedule_at(
                self._tx_channel.busy_until,
                self._unpump,
                label=f"{self.name}:tx-next",
            )

    def _unpump(self) -> None:
        self._pump_scheduled = False
        self._pump()

    # ------------------------------------------------------------------
    # receive path
    # ------------------------------------------------------------------

    def on_burst(self, burst: List[Symbol], channel: Channel) -> None:
        """Deliver symbols arriving from the fabric."""
        assert self._rx_slack is not None
        if self._flow is not None:
            # Any received symbol re-arms the short-timeout counter.
            self._flow.tx_state.note_activity()
        accepted = self._rx_slack.push_burst(len(burst))
        if accepted < len(burst):
            # Overflow drops the tail of the burst — data and GAP symbols
            # alike, which is how overload corrupts packet framing.
            burst = burst[:accepted]
            self.truncated_frames += 1
        self._assembler.push_burst(burst)

    def _on_control(self, symbol: Symbol) -> None:
        assert self._flow is not None
        self._flow.on_control_symbol(symbol)

    def _on_rx_backpressure(self, active: bool) -> None:
        assert self._flow is not None
        self._flow.set_backpressure(active)

    def _on_frame(self, frame: bytes) -> None:
        self.frames_received += 1
        if is_route_byte(frame[0]):
            # Source route not exhausted: "consumed and handled as an
            # error" (paper §4.3.2).
            self.consume_errors += 1
            if _CAPTURE.active:
                _capture.host_frame_drop(
                    self._sim.now, self.name, "consume_error", len(frame)
                )
            return
        try:
            packet = MyrinetPacket.from_bytes(frame, route_len=0)
        except CrcError:
            self.crc_errors += 1
            if _CAPTURE.active:
                # No fingerprint survives a CRC failure — the drop is
                # deliberately provenance-less.
                _capture.host_frame_drop(
                    self._sim.now, self.name, "crc_error", len(frame)
                )
            return
        except ProtocolError:
            self.truncated_frames += 1
            if _CAPTURE.active:
                _capture.host_frame_drop(
                    self._sim.now, self.name, "truncated", len(frame)
                )
            return
        self._dispatch(packet)

    def _dispatch(self, packet: MyrinetPacket) -> None:
        if packet.packet_type == PACKET_TYPE_MAPPING:
            if _CAPTURE.active:
                _capture.packet_deliver(self._sim.now, self.name, packet)
            if self._mapping_handler is not None:
                self._mapping_handler(packet.payload)
            return
        if packet.packet_type != PACKET_TYPE_DATA:
            # Unrecognized packet type: dropped; internal structures such
            # as the routing table are unaffected (paper §4.3.2).
            self.unknown_type_drops += 1
            if _CAPTURE.active:
                _capture.packet_drop(
                    self._sim.now, self.name, "unknown_type", packet
                )
            return
        if len(packet.payload) < DATA_HEADER_LEN:
            self.truncated_frames += 1
            if _CAPTURE.active:
                _capture.packet_drop(
                    self._sim.now, self.name, "truncated_payload", packet
                )
            return
        dest = MacAddress.from_bytes(packet.payload[:6])
        src = MacAddress.from_bytes(packet.payload[6:12])
        if dest != self.mac and dest != MacAddress.broadcast():
            # "the node drops incoming packets that are misaddressed"
            # (paper §4.3.3).
            self.misaddressed_drops += 1
            if _CAPTURE.active:
                _capture.packet_drop(
                    self._sim.now, self.name, "misaddressed", packet
                )
            return
        self.packets_received += 1
        if _CAPTURE.active:
            _capture.packet_deliver(self._sim.now, self.name, packet)
        if self._data_handler is not None:
            self._data_handler(src, packet.payload[DATA_HEADER_LEN:])

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    @property
    def stats(self) -> Dict[str, int]:
        """Snapshot of every counter, for campaign result collection."""
        return {
            "packets_sent": self.packets_sent,
            "packets_received": self.packets_received,
            "frames_received": self.frames_received,
            "crc_errors": self.crc_errors,
            "consume_errors": self.consume_errors,
            "misaddressed_drops": self.misaddressed_drops,
            "unknown_type_drops": self.unknown_type_drops,
            "truncated_frames": self.truncated_frames,
            "no_route_drops": self.no_route_drops,
            "tx_timeout_drops": self.tx_timeout_drops,
            "tx_queue_rejects": self.tx_queue_rejects,
            "oversize_frames": self._assembler.oversize_frames,
            "undecodable_controls": self._assembler.undecodable_controls,
        }
