"""Cut-through Myrinet switch.

Each input port runs a small state machine:

* ``idle`` — waiting for the first data symbol of a frame (the route byte);
* ``forwarding`` — the frame has claimed its output port and symbols are
  streamed through as they arrive (cut-through);
* ``waiting`` — the target output is claimed by another input, so the
  frame buffers in the input slack buffer (head-of-line blocking, as in
  real Myrinet);
* ``discarding`` — the remainder of a frame is being consumed (bad route
  byte, or a long-timeout teardown).

Routing is source-routed: the switch consumes the leading route byte,
selects the output port from its low bits, and *incrementally updates*
the trailing CRC-8 so that the CRC contribution of the stripped byte is
removed while any corruption syndrome already present in the packet is
preserved (a switch must not launder upstream corruption into a valid
CRC — the paper's §4.3.3 destination-corruption experiment depends on the
bad CRC surviving to the destination).

A claimed path that never sees its terminating GAP (the paper's lost-GAP
scenario, §4.3.1) is torn down by the long-period timeout: the switch
emits a GAP downstream to terminate the partial packet, discards the rest
of the inbound frame, and releases the output port to any waiters.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional

from repro.capture import instrument as _capture
from repro.capture.state import CAPTURE as _CAPTURE
from repro.errors import ConfigurationError
from repro.sim.kernel import Event, Simulator
from repro.myrinet.crc8 import _TABLE as _FULL_CRC_TABLE
from repro.myrinet.crc8 import crc8_update
from repro.myrinet.flow import (
    LONG_TIMEOUT_PERIODS,
    PortFlowControl,
    long_timeout_ps,
)
from repro.myrinet.link import Channel, Link
from repro.myrinet.packet import ROUTE_PORT_MASK
from repro.myrinet.slack import DEFAULT_CAPACITY, DEFAULT_HIGH_WATER, DEFAULT_LOW_WATER
from repro.myrinet.symbols import (
    GAP,
    IDLE,
    Symbol,
    data_symbol,
    decode_control,
)

# Folding a zero byte into a running CRC-8 is a plain table lookup.
_CRC_TABLE = _FULL_CRC_TABLE

#: Largest symbol burst an output port puts on the wire in one piece.
FLUSH_QUANTUM = 128

_MODE_IDLE = "idle"
_MODE_FORWARDING = "forwarding"
_MODE_WAITING = "waiting"
_MODE_DRAINING = "draining"
_MODE_DISCARDING = "discarding"


class _Port:
    """Per-port state: input FSM, output claim/outbox, and flow control."""

    def __init__(self, index: int) -> None:
        self.index = index
        self.link: Optional[Link] = None
        self.tx_channel: Optional[Channel] = None
        self.flow: Optional[PortFlowControl] = None
        # --- input (RX) side -------------------------------------------
        self.mode = _MODE_IDLE
        self.claim_output: Optional[int] = None
        self.claim_id = 0
        self.held: Optional[int] = None
        self.contrib = 0
        self.buffer: Deque[Symbol] = deque()
        self.wait_output: Optional[int] = None
        self.pending_route = 0
        self.timeout_event: Optional[Event] = None
        self.pressured = False
        # --- output (TX) side ------------------------------------------
        self.claimed_by: Optional[int] = None
        self.waiters: Deque[int] = deque()
        self.outbox: List[Symbol] = []
        self.retry_event: Optional[Event] = None
        # --- counters ---------------------------------------------------
        self.frames_forwarded = 0
        self.routing_errors = 0
        self.long_timeouts = 0
        self.wait_timeouts = 0
        self.symbols_dropped = 0
        self.outbox_drops = 0
        self.waitbuf_drops = 0
        self.discard_drops = 0
        self.undecodable_controls = 0

    @property
    def attached(self) -> bool:
        return self.link is not None

    def occupancy(self, ports: List["_Port"]) -> int:
        """Symbols held on behalf of this input (buffer + claimed outbox).

        A draining claim's outbox still counts against its input: the
        path stays occupied — and the upstream sender stays throttled —
        until the frame tail has actually left on the wire (wormhole
        semantics; the mechanism behind the paper's path-blocking
        results).
        """
        total = len(self.buffer)
        if (
            self.mode in (_MODE_FORWARDING, _MODE_DRAINING)
            and self.claim_output is not None
        ):
            total += len(ports[self.claim_output].outbox)
        return total


class MyrinetSwitch:
    """An N-port cut-through Myrinet crossbar switch."""

    def __init__(
        self,
        sim: Simulator,
        name: str = "switch",
        num_ports: int = 8,
        slack_capacity: int = DEFAULT_CAPACITY,
        high_water: int = DEFAULT_HIGH_WATER,
        low_water: int = DEFAULT_LOW_WATER,
        outbox_capacity: Optional[int] = None,
        long_timeout_periods: int = LONG_TIMEOUT_PERIODS,
    ) -> None:
        if num_ports < 2:
            raise ConfigurationError("a switch needs at least 2 ports")
        if num_ports > ROUTE_PORT_MASK + 1:
            raise ConfigurationError(
                f"route bytes can address at most {ROUTE_PORT_MASK + 1} ports"
            )
        self._sim = sim
        self.name = name
        self.num_ports = num_ports
        self._slack_capacity = slack_capacity
        self._high_water = high_water
        self._low_water = low_water
        # An output's outbox can legitimately hold a granted waiter's
        # whole replayed slack on top of an earlier claim's backlog, so
        # it is sized above the per-input slack (backpressure, driven by
        # the claiming input's occupancy, bounds it long before this).
        self._outbox_capacity = (
            outbox_capacity if outbox_capacity is not None
            else 4 * slack_capacity
        )
        self._long_timeout_periods = long_timeout_periods
        self._ports = [_Port(i) for i in range(num_ports)]
        self._channel_to_port: Dict[int, int] = {}
        self._grant_queue: Deque[int] = deque()

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------

    def attach_link(self, port: int, link: Link, side: str,
                    flow_transport: str = "direct") -> None:
        """Connect ``link`` (its ``side`` endpoint: 'a' or 'b') to ``port``.

        ``flow_transport`` selects how this port signals backpressure to
        the remote sender (see :mod:`repro.myrinet.flow`).
        """
        state = self._ports[port]
        if state.attached:
            raise ConfigurationError(f"{self.name} port {port} already attached")
        if side == "a":
            tx = link.attach_a(self)
        elif side == "b":
            tx = link.attach_b(self)
        else:
            raise ConfigurationError(f"link side must be 'a' or 'b', got {side!r}")
        state.link = link
        state.tx_channel = tx
        state.flow = PortFlowControl(
            self._sim,
            tx,
            transport=flow_transport,
            remote_tx_state_getter=lambda lnk=link, s=side: lnk.peer_tx_state(s),
        )
        link.register_tx_state(side, state.flow.tx_state)
        state.flow.tx_state.notify_unblocked(
            lambda p=port: self._flush_output(p)
        )
        self._channel_to_port[id(link.a_to_b if side == "b" else link.b_to_a)] = port

    def port_flow(self, port: int) -> PortFlowControl:
        """The flow-control endpoint of ``port`` (for tests/monitoring)."""
        flow = self._ports[port].flow
        if flow is None:
            raise ConfigurationError(f"{self.name} port {port} not attached")
        return flow

    @property
    def long_timeout_ps(self) -> int:
        char = self._char_period()
        return long_timeout_ps(char, self._long_timeout_periods)

    def _char_period(self) -> int:
        for port in self._ports:
            if port.link is not None:
                return port.link.char_period_ps
        return 12_500

    # ------------------------------------------------------------------
    # symbol reception
    # ------------------------------------------------------------------

    def on_burst(self, burst: List[Symbol], channel: Channel) -> None:
        """Deliver a burst arriving on one of our input ports."""
        port = self._channel_to_port.get(id(channel))
        if port is None:
            raise ConfigurationError(
                f"{self.name} received burst on unknown channel {channel.name}"
            )
        touched: set = set()
        state = self._ports[port]
        if state.flow is not None:
            # Any received symbol re-arms the short-timeout counter.
            state.flow.tx_state.note_activity()
        data_cache = Symbol._data_cache
        table = _CRC_TABLE
        index = 0
        length = len(burst)
        while index < length:
            symbol = burst[index]
            # Fast path: a run of data symbols streaming through an
            # established claim — the dominant case under load.
            if symbol.is_data and state.mode == _MODE_FORWARDING:
                out = state.claim_output
                outbox = self._ports[out].outbox
                held = state.held
                contrib = state.contrib
                dropped = 0
                outbox_cap = self._outbox_capacity
                while index < length:
                    symbol = burst[index]
                    if not symbol.is_data:
                        break
                    if held is not None:
                        if len(outbox) >= outbox_cap:
                            dropped += 1
                        else:
                            outbox.append(data_cache[held])
                        contrib = table[contrib]
                    held = symbol.value
                    index += 1
                state.held = held
                state.contrib = contrib
                state.symbols_dropped += dropped
                state.outbox_drops += dropped
                touched.add(out)
                continue
            self._process_symbol(port, symbol, touched)
            index += 1
        self._drain_grants(touched)
        for out in sorted(touched):
            self._flush_output(out)
        self._update_backpressure(port)

    # ------------------------------------------------------------------
    # per-symbol state machine
    # ------------------------------------------------------------------

    def _process_symbol(self, i: int, symbol: Symbol, touched: set) -> None:
        state = self._ports[i]
        if not symbol.is_data:
            decoded = decode_control(symbol.value)
            if decoded is None:
                state.undecodable_controls += 1
                return
            if decoded is GAP:
                self._on_gap(i, touched)
            elif decoded is IDLE:
                return
            else:
                assert state.flow is not None
                state.flow.on_control_symbol(decoded)
            return

        if state.mode == _MODE_IDLE:
            self._on_route_byte(i, symbol.value, touched)
        elif state.mode == _MODE_FORWARDING:
            self._forward_data(i, symbol.value, touched)
        elif state.mode in (_MODE_WAITING, _MODE_DRAINING):
            self._buffer_symbol(i, symbol)
        else:  # discarding
            state.symbols_dropped += 1
            state.discard_drops += 1

    def _on_route_byte(self, i: int, byte: int, touched: set) -> None:
        state = self._ports[i]
        out = byte & ROUTE_PORT_MASK
        if out >= self.num_ports or out == i or not self._ports[out].attached:
            state.routing_errors += 1
            state.mode = _MODE_DISCARDING
            return
        state.pending_route = byte
        output = self._ports[out]
        if output.claimed_by is None:
            self._grant(i, out)
        else:
            state.mode = _MODE_WAITING
            state.wait_output = out
            output.waiters.append(i)
            self._arm_timeout(i, waiting=True)

    def _grant(self, i: int, out: int) -> None:
        """Give input ``i`` the claim on output ``out``."""
        state = self._ports[i]
        output = self._ports[out]
        output.claimed_by = i
        state.mode = _MODE_FORWARDING
        state.claim_output = out
        state.wait_output = None
        state.held = None
        state.contrib = crc8_update(0, state.pending_route)
        state.claim_id += 1
        self._arm_timeout(i, waiting=False)

    def _forward_data(self, i: int, byte: int, touched: set) -> None:
        state = self._ports[i]
        out = state.claim_output
        assert out is not None
        output = self._ports[out]
        if state.held is not None:
            if len(output.outbox) >= self._outbox_capacity:
                state.symbols_dropped += 1
                state.outbox_drops += 1
            else:
                output.outbox.append(data_symbol(state.held))
            state.contrib = crc8_update(state.contrib, 0)
            touched.add(out)
        state.held = byte

    def _buffer_symbol(self, i: int, symbol: Symbol) -> None:
        state = self._ports[i]
        if len(state.buffer) >= self._slack_capacity:
            state.symbols_dropped += 1
            state.waitbuf_drops += 1
            return
        state.buffer.append(symbol)

    def _on_gap(self, i: int, touched: set) -> None:
        state = self._ports[i]
        if state.mode == _MODE_FORWARDING:
            out = state.claim_output
            assert out is not None
            output = self._ports[out]
            if state.held is not None:
                # The held-back byte is the frame's CRC: patch out the
                # contribution of the stripped route byte.
                output.outbox.append(data_symbol(state.held ^ state.contrib))
            output.outbox.append(GAP)
            touched.add(out)
            state.frames_forwarded += 1
            if _CAPTURE.active:
                # Cut-through: the switch never holds a whole packet, so
                # the hop event is frame-scoped (ports), not corr-scoped.
                _capture.switch_hop(self._sim.now, self.name, i, out)
            state.held = None
            # The path stays claimed until the tail drains onto the wire
            # (wormhole semantics); new arrivals buffer meanwhile.
            state.mode = _MODE_DRAINING
            if not output.outbox:
                self._release_claim(i)
        elif state.mode in (_MODE_WAITING, _MODE_DRAINING):
            self._buffer_symbol(i, GAP)
        elif state.mode == _MODE_DISCARDING:
            state.mode = _MODE_IDLE
        # idle: inter-packet gap, nothing to do

    # ------------------------------------------------------------------
    # claims, grants, timeouts
    # ------------------------------------------------------------------

    def _release_claim(self, i: int) -> None:
        state = self._ports[i]
        out = state.claim_output
        state.mode = _MODE_IDLE
        state.claim_output = None
        state.held = None
        self._cancel_timeout(i)
        if out is not None:
            self._ports[out].claimed_by = None
            if self._ports[out].waiters:
                self._grant_queue.append(out)

    def _drain_grants(self, touched: set) -> None:
        while self._grant_queue:
            out = self._grant_queue.popleft()
            output = self._ports[out]
            if output.claimed_by is not None:
                continue
            while output.waiters:
                j = output.waiters.popleft()
                waiter = self._ports[j]
                if waiter.mode == _MODE_WAITING and waiter.wait_output == out:
                    self._cancel_timeout(j)
                    self._grant(j, out)
                    self._replay_buffer(j, touched)
                    break

    def _replay_buffer(self, j: int, touched: set) -> None:
        """Push a formerly-waiting input's buffered symbols through the FSM."""
        state = self._ports[j]
        while state.buffer and state.mode not in (_MODE_WAITING,
                                                  _MODE_DRAINING):
            symbol = state.buffer.popleft()
            self._process_symbol(j, symbol, touched)
        self._update_backpressure(j)

    def _arm_timeout(self, i: int, waiting: bool) -> None:
        state = self._ports[i]
        self._cancel_timeout(i)
        state.timeout_event = self._sim.schedule(
            self.long_timeout_ps,
            lambda: self._on_long_timeout(i, waiting),
            label=f"{self.name}:p{i}:long-timeout",
        )

    def _cancel_timeout(self, i: int) -> None:
        state = self._ports[i]
        if state.timeout_event is not None:
            state.timeout_event.cancel()
            state.timeout_event = None

    def _on_long_timeout(self, i: int, waiting: bool) -> None:
        state = self._ports[i]
        state.timeout_event = None
        touched: set = set()
        if waiting:
            if state.mode != _MODE_WAITING:
                return
            state.wait_timeouts += 1
            out = state.wait_output
            if out is not None and i in self._ports[out].waiters:
                self._ports[out].waiters.remove(i)
            self._drop_buffered_head_frame(i, touched)
        else:
            if state.mode == _MODE_DRAINING:
                # The tail never drained (downstream stopped for the
                # whole long-timeout period): abandon it.
                state.long_timeouts += 1
                out = state.claim_output
                assert out is not None
                output = self._ports[out]
                state.symbols_dropped += len(output.outbox)
                state.outbox_drops += len(output.outbox)
                output.outbox = []
                self._release_claim(i)
                self._replay_buffer(i, touched)
            elif state.mode == _MODE_FORWARDING:
                state.long_timeouts += 1
                out = state.claim_output
                assert out is not None
                # Terminate the partial packet downstream, free the path.
                self._ports[out].outbox.append(GAP)
                touched.add(out)
                self._release_claim(i)
                state.mode = _MODE_DISCARDING
            else:
                return
        self._drain_grants(touched)
        for out_port in sorted(touched):
            self._flush_output(out_port)
        self._update_backpressure(i)

    def _drop_buffered_head_frame(self, i: int, touched: set) -> None:
        """Drop the head frame of a timed-out waiting input, then resume."""
        state = self._ports[i]
        state.wait_output = None
        dropped_gap = False
        while state.buffer:
            symbol = state.buffer.popleft()
            state.symbols_dropped += 1
            if not symbol.is_data and decode_control(symbol.value) is GAP:
                dropped_gap = True
                break
        if dropped_gap:
            state.mode = _MODE_IDLE
            self._replay_buffer(i, touched)
        else:
            # Frame tail has not arrived yet: consume it as it comes.
            state.mode = _MODE_DISCARDING

    # ------------------------------------------------------------------
    # output flushing and backpressure
    # ------------------------------------------------------------------

    def _flush_output(self, out: int) -> None:
        output = self._ports[out]
        if not output.outbox or output.tx_channel is None:
            return
        assert output.flow is not None
        now = self._sim.now
        if output.flow.tx_state.blocked():
            # Downstream STOP: hold symbols in the outbox (slack) and
            # retry when the state decays; direct holds wake us through
            # the unblock callback installed at attach time.
            resume = output.flow.tx_state.earliest_resume()
            if resume is not None:
                self._schedule_retry(out, max(resume, now), "flush-retry")
            return
        free_at = output.tx_channel.free_at()
        if free_at > now:
            # Wire still serializing the previous burst: keep the symbols
            # in the outbox so occupancy (and hence backpressure) reflects
            # the congestion, instead of hiding it inside the channel.
            self._schedule_retry(out, free_at, "flush-wait")
            return
        # Bound each wire burst so a receiver's STOP can take effect
        # between quanta — flushing an arbitrarily deep outbox in one
        # delivery would overrun the remote slack buffer before flow
        # control had any chance to act.
        if len(output.outbox) > FLUSH_QUANTUM:
            burst = output.outbox[:FLUSH_QUANTUM]
            output.outbox = output.outbox[FLUSH_QUANTUM:]
            output.tx_channel.send(burst)
            self._schedule_retry(out, output.tx_channel.busy_until,
                                 "flush-quantum")
        else:
            burst = output.outbox
            output.outbox = []
            output.tx_channel.send(burst)
        holder = output.claimed_by
        if holder is not None:
            self._update_backpressure(holder)
            holder_state = self._ports[holder]
            if (
                not output.outbox
                and holder_state.mode == _MODE_DRAINING
                and holder_state.claim_output == out
            ):
                touched: set = set()
                self._release_claim(holder)
                # Waiters queued on this output go first; the released
                # input replays its own backlog afterwards.
                self._drain_grants(touched)
                self._replay_buffer(holder, touched)
                self._drain_grants(touched)
                for other in sorted(touched):
                    self._flush_output(other)

    def _schedule_retry(self, out: int, at: int, label: str) -> None:
        """Arm the single retry slot for an output port.

        Exactly one live retry event may exist per port: replacing a
        boolean flag with the Event itself prevents same-timestamp event
        cohorts from self-perpetuating (each firing would clear a flag
        and reschedule, keeping every duplicate alive forever).
        """
        output = self._ports[out]
        if output.retry_event is not None and not output.retry_event.cancelled:
            return
        output.retry_event = self._sim.schedule_at(
            at,
            lambda: self._retry_output(out),
            label=f"{self.name}:p{out}:{label}",
        )

    def _retry_output(self, out: int) -> None:
        self._ports[out].retry_event = None
        self._flush_output(out)

    def _update_backpressure(self, i: int) -> None:
        state = self._ports[i]
        if state.flow is None:
            return
        occupancy = state.occupancy(self._ports)
        if not state.pressured and occupancy >= self._high_water:
            state.pressured = True
            state.flow.set_backpressure(True)
        elif state.pressured and occupancy <= self._low_water:
            state.pressured = False
            state.flow.set_backpressure(False)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------

    @property
    def stats(self) -> Dict[str, int]:
        """Aggregate counters across all ports."""
        totals = {
            "frames_forwarded": 0,
            "routing_errors": 0,
            "long_timeouts": 0,
            "wait_timeouts": 0,
            "symbols_dropped": 0,
            "undecodable_controls": 0,
        }
        for port in self._ports:
            totals["frames_forwarded"] += port.frames_forwarded
            totals["routing_errors"] += port.routing_errors
            totals["long_timeouts"] += port.long_timeouts
            totals["wait_timeouts"] += port.wait_timeouts
            totals["symbols_dropped"] += port.symbols_dropped
            totals["undecodable_controls"] += port.undecodable_controls
        return totals

    def port_stats(self, port: int) -> Dict[str, int]:
        """Counters for a single port."""
        state = self._ports[port]
        return {
            "frames_forwarded": state.frames_forwarded,
            "routing_errors": state.routing_errors,
            "long_timeouts": state.long_timeouts,
            "wait_timeouts": state.wait_timeouts,
            "symbols_dropped": state.symbols_dropped,
            "outbox_drops": state.outbox_drops,
            "waitbuf_drops": state.waitbuf_drops,
            "discard_drops": state.discard_drops,
            "undecodable_controls": state.undecodable_controls,
        }
