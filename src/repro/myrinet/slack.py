"""Slack buffers (paper Figure 9).

A slack buffer absorbs the symbols that are in flight between the moment a
receiver signals STOP and the moment the sender actually stops.  Crossing
the high-water mark raises backpressure; draining below the low-water mark
releases it; exceeding capacity *drops symbols*, which is the mechanical
origin of the buffer-overflow packet losses in the paper's control-symbol
campaign (§4.3.1).

Two drain models are provided:

* :class:`QueueSlackBuffer` — the consumer explicitly pops symbols
  (switch input ports, where the drain rate is set by the output link);
* :class:`RateDrainedSlackBuffer` — occupancy decays continuously at a
  fixed drain rate (host interfaces, where the drain is the I/O bus DMA).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, List, Optional

from repro.errors import ConfigurationError
from repro.sim.kernel import Event, Simulator
from repro.myrinet.symbols import Symbol

#: Default slack capacity in symbols.  Real Myrinet slack buffers are
#: sized to cover twice the round trip of the longest cable; the chunked
#: link transport (symbols arrive in bursts of up to a flush quantum)
#: needs several quanta of headroom above the high-water mark so that
#: bursts already committed to the wire never overrun the buffer before
#: a STOP can take effect.
DEFAULT_CAPACITY = 1024
#: Default high-water mark.
DEFAULT_HIGH_WATER = 512
#: Default low-water mark.
DEFAULT_LOW_WATER = 192


class _WatermarkMixin:
    """Shared watermark bookkeeping and backpressure callback plumbing."""

    def _init_watermarks(
        self,
        capacity: int,
        high_water: int,
        low_water: int,
        on_backpressure: Optional[Callable[[bool], None]],
    ) -> None:
        if not 0 < low_water < high_water <= capacity:
            raise ConfigurationError(
                f"need 0 < low({low_water}) < high({high_water}) <= "
                f"capacity({capacity})"
            )
        self.capacity = capacity
        self.high_water = high_water
        self.low_water = low_water
        self._on_backpressure = on_backpressure
        self._pressured = False
        self.symbols_dropped = 0
        self.overflow_events = 0
        self.stop_crossings = 0
        self.go_crossings = 0

    def _check_watermarks(self, occupancy: int) -> None:
        if not self._pressured and occupancy >= self.high_water:
            self._pressured = True
            self.stop_crossings += 1
            if self._on_backpressure is not None:
                self._on_backpressure(True)
        elif self._pressured and occupancy <= self.low_water:
            self._pressured = False
            self.go_crossings += 1
            if self._on_backpressure is not None:
                self._on_backpressure(False)

    @property
    def pressured(self) -> bool:
        """True while the buffer is asserting backpressure."""
        return self._pressured


class QueueSlackBuffer(_WatermarkMixin):
    """A slack buffer drained explicitly by its consumer."""

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        high_water: int = DEFAULT_HIGH_WATER,
        low_water: int = DEFAULT_LOW_WATER,
        on_backpressure: Optional[Callable[[bool], None]] = None,
    ) -> None:
        self._init_watermarks(capacity, high_water, low_water, on_backpressure)
        self._queue: Deque[Symbol] = deque()

    def push(self, symbol: Symbol) -> bool:
        """Buffer one symbol.  Returns False (and drops it) on overflow."""
        if len(self._queue) >= self.capacity:
            self.symbols_dropped += 1
            self.overflow_events += 1
            return False
        self._queue.append(symbol)
        self._check_watermarks(len(self._queue))
        return True

    def pop(self) -> Symbol:
        """Remove and return the oldest symbol."""
        symbol = self._queue.popleft()
        self._check_watermarks(len(self._queue))
        return symbol

    def pop_all(self) -> List[Symbol]:
        """Drain the whole buffer at once."""
        drained = list(self._queue)
        self._queue.clear()
        self._check_watermarks(0)
        return drained

    @property
    def occupancy(self) -> int:
        return len(self._queue)

    def __len__(self) -> int:
        return len(self._queue)


class RateDrainedSlackBuffer(_WatermarkMixin):
    """A slack buffer whose occupancy decays at a constant drain rate.

    The drain is evaluated lazily: occupancy is brought up to date
    whenever symbols arrive, and a release event is scheduled to clear
    backpressure once the drain is projected to cross the low-water mark.
    Overflowing pushes report how many symbols had to be dropped; the
    caller decides *which* symbols those are (dropping from the tail of
    an arriving burst loses data and GAP symbols alike, which is what
    corrupts frames during overload).
    """

    def __init__(
        self,
        sim: Simulator,
        drain_period_ps: int,
        capacity: int = DEFAULT_CAPACITY,
        high_water: int = DEFAULT_HIGH_WATER,
        low_water: int = DEFAULT_LOW_WATER,
        on_backpressure: Optional[Callable[[bool], None]] = None,
    ) -> None:
        if drain_period_ps <= 0:
            raise ConfigurationError("drain period must be positive")
        self._init_watermarks(capacity, high_water, low_water, on_backpressure)
        self._sim = sim
        self._drain_period_ps = drain_period_ps
        self._occupancy = 0.0
        self._last_update = 0
        self._release_event: Optional[Event] = None

    @property
    def drain_period_ps(self) -> int:
        """Picoseconds to drain one symbol."""
        return self._drain_period_ps

    def _settle(self) -> None:
        now = self._sim.now
        elapsed = now - self._last_update
        if elapsed > 0:
            self._occupancy = max(
                0.0, self._occupancy - elapsed / self._drain_period_ps
            )
            self._last_update = now

    def push_burst(self, count: int) -> int:
        """Account for ``count`` arriving symbols; return how many fit.

        The return value may be less than ``count`` when the buffer
        overflows; the caller must drop the excess symbols.
        """
        self._settle()
        room = self.capacity - self._occupancy
        accepted = min(count, max(0, int(room)))
        dropped = count - accepted
        self._occupancy += accepted
        if dropped:
            self.symbols_dropped += dropped
            self.overflow_events += 1
        self._check_watermarks(int(self._occupancy))
        if self._pressured:
            self._schedule_release()
        return accepted

    @property
    def occupancy(self) -> float:
        self._settle()
        return self._occupancy

    def _schedule_release(self) -> None:
        if self._release_event is not None:
            self._release_event.cancel()
        surplus = self._occupancy - self.low_water
        if surplus <= 0:
            return
        delay = int(surplus * self._drain_period_ps) + 1
        self._release_event = self._sim.schedule(
            delay, self._release_check, label="slack-release"
        )

    def _release_check(self) -> None:
        self._release_event = None
        self._settle()
        self._check_watermarks(int(self._occupancy))
        if self._pressured:
            self._schedule_release()
