"""CRC-8 as used by Myrinet packets.

Myrinet protects each packet with a trailing CRC-8 that is recomputed at
every switch hop after the leading route byte is stripped (paper §4.1).
The generator polynomial is x⁸ + x² + x + 1 (0x07, the ATM HEC
polynomial), applied MSB-first with a zero initial value.
"""

from __future__ import annotations

from typing import Iterable, List

#: Generator polynomial x^8 + x^2 + x + 1, MSB-first representation.
POLYNOMIAL = 0x07


def _build_table(poly: int) -> List[int]:
    table = []
    for byte in range(256):
        crc = byte
        for _ in range(8):
            if crc & 0x80:
                crc = ((crc << 1) ^ poly) & 0xFF
            else:
                crc = (crc << 1) & 0xFF
        table.append(crc)
    return table


_TABLE = _build_table(POLYNOMIAL)


def crc8_update(crc: int, byte: int) -> int:
    """Fold one byte into a running CRC value."""
    return _TABLE[(crc ^ byte) & 0xFF]


def crc8(data: Iterable[int], initial: int = 0x00) -> int:
    """CRC-8 of a byte sequence.

    >>> crc8(b"")
    0
    >>> crc8(b"123456789")
    244
    """
    crc = initial
    table = _TABLE
    for byte in data:
        crc = table[(crc ^ byte) & 0xFF]
    return crc


def verify(data: Iterable[int]) -> bool:
    """True if ``data`` (message followed by its CRC byte) checks out.

    Appending a correct CRC makes the CRC of the whole sequence zero —
    the standard residue property of an unreflected CRC with no final
    XOR.
    """
    return crc8(data) == 0
