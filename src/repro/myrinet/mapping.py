"""Network-map data structures and the topology oracle.

The mapper MCP builds a :class:`NetworkMap` from scout replies each round
(paper §4.1): which hosts answered, at which topological position, with
which 48-bit and 64-bit addresses.  Successive maps are kept so campaigns
can diff "before" and "after" states (paper Figure 11).

:class:`TopologyOracle` stands in for the part of Myrinet's mapping
algorithm we do not reproduce: deriving *return routes* for scouts by
incremental self-probing.  The oracle answers "what forward/reply routes
reach each host port" from the builder's wiring records; host **liveness
and addresses are still discovered by real scout/reply packets over the
simulated network**, so every corruption experiment behaves as in the
paper (see DESIGN.md, substitution table).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigurationError, RoutingError
from repro.myrinet.addresses import MacAddress, McpAddress


@dataclass(frozen=True)
class Probe:
    """One scout destination: a host position and the routes to/from it."""

    position: str
    forward_route: Tuple[int, ...]
    reply_route: Tuple[int, ...]


@dataclass
class MapEntry:
    """One discovered host in a network map."""

    position: str
    mac: MacAddress
    mcp: McpAddress
    route: Tuple[int, ...]


@dataclass
class NetworkMap:
    """The mapper's view of the network after one mapping round."""

    round_index: int
    completed_at: int
    entries: Dict[str, MapEntry] = field(default_factory=dict)
    conflict: bool = False

    @property
    def live_positions(self) -> List[str]:
        return sorted(self.entries)

    def macs(self) -> List[MacAddress]:
        return [entry.mac for entry in self.entries.values()]

    def entry_by_mac(self, mac: MacAddress) -> Optional[MapEntry]:
        for entry in self.entries.values():
            if entry.mac == mac:
                return entry
        return None

    def clone(self) -> "NetworkMap":
        """An isolated copy: mutating the clone (or the original) never
        affects the other.

        ``copy.deepcopy`` cannot be used here because the address types
        are immutable (``__setattr__`` raises), so the mutable shells —
        the map itself, its ``entries`` dict, and each :class:`MapEntry`
        — are rebuilt while the immutable leaves (addresses, route
        tuples) are shared.
        """
        return NetworkMap(
            round_index=self.round_index,
            completed_at=self.completed_at,
            entries={
                position: replace(entry)
                for position, entry in self.entries.items()
            },
            conflict=self.conflict,
        )

    def consistent_with(self, other: "NetworkMap") -> bool:
        """True if both maps agree on positions, addresses, and routes."""
        if set(self.entries) != set(other.entries):
            return False
        for position, entry in self.entries.items():
            peer = other.entries[position]
            if (entry.mac, entry.mcp, entry.route) != (
                peer.mac,
                peer.mcp,
                peer.route,
            ):
                return False
        return True

    def render(self) -> str:
        """Human-readable map, in the spirit of the paper's Figure 11."""
        lines = [f"map round {self.round_index}"
                 f"{' (CONFLICT)' if self.conflict else ''}:"]
        if not self.entries:
            lines.append("  <empty>")
        for position in sorted(self.entries):
            entry = self.entries[position]
            route = ",".join(str(p) for p in entry.route)
            lines.append(
                f"  {position:<10} mac={entry.mac} mcp={entry.mcp} "
                f"route=[{route}]"
            )
        return "\n".join(lines)


class TopologyOracle:
    """Physical-wiring knowledge used to compute scout routes.

    The graph has two node kinds: host positions (strings) and switches
    (``('sw', name)`` tuples).  Edges remember the switch port they use,
    so a breadth-first search yields the output-port sequence a source
    route needs.
    """

    def __init__(self) -> None:
        self._adjacency: Dict[object, List[Tuple[object, Optional[int]]]] = {}
        self._hosts: List[str] = []

    def add_host(self, name: str) -> None:
        if name in self._adjacency:
            raise ConfigurationError(f"duplicate topology node {name!r}")
        self._adjacency[name] = []
        self._hosts.append(name)

    def add_switch(self, name: str) -> None:
        key = ("sw", name)
        if key in self._adjacency:
            raise ConfigurationError(f"duplicate switch {name!r}")
        self._adjacency[key] = []

    def connect_host(self, host: str, switch: str, port: int) -> None:
        """Record host<->switch wiring (the host hangs off ``port``)."""
        key = ("sw", switch)
        self._adjacency[host].append((key, None))
        self._adjacency[key].append((host, port))

    def connect_switches(
        self, switch_a: str, port_a: int, switch_b: str, port_b: int
    ) -> None:
        """Record switch<->switch wiring."""
        key_a = ("sw", switch_a)
        key_b = ("sw", switch_b)
        self._adjacency[key_a].append((key_b, port_a))
        self._adjacency[key_b].append((key_a, port_b))

    @property
    def hosts(self) -> List[str]:
        return list(self._hosts)

    def route(self, source: str, target: str) -> List[int]:
        """Output-port sequence for a packet from ``source`` to ``target``.

        Breadth-first search over the wiring graph; hosts may only appear
        at the endpoints (a route never passes *through* a host).
        """
        if source == target:
            return []
        parents = self._search(source, target)
        return self._unwind(parents, source, target)

    def _search(
        self, source: str, target: str
    ) -> Dict[object, Tuple[object, Optional[int]]]:
        """BFS parent map from ``source`` until ``target`` is reached."""
        parents: Dict[object, Tuple[object, Optional[int]]] = {source: (source, None)}
        frontier = deque([source])
        while frontier:
            node = frontier.popleft()
            for neighbor, port in self._adjacency.get(node, []):
                if neighbor in parents:
                    continue
                if isinstance(neighbor, str) and neighbor != target:
                    continue  # never route through a host
                parents[neighbor] = (node, port)
                if neighbor == target:
                    return parents
                frontier.append(neighbor)
        raise RoutingError(f"no route from {source!r} to {target!r}")

    def _unwind(
        self,
        parents: Dict[object, Tuple[object, Optional[int]]],
        source: str,
        target: str,
    ) -> List[int]:
        ports: List[int] = []
        node: object = target
        while node != source:
            parent, port = parents[node]
            if port is not None:
                ports.append(port)
            node = parent
        ports.reverse()
        return ports

    def node_path(self, source: str, target: str) -> List[object]:
        """The node sequence a packet traverses from ``source`` to
        ``target``, endpoints included.

        Nodes are host names (strings) or ``('sw', name)`` tuples, same
        as the wiring graph; a trivial ``source == target`` path is the
        single node.
        """
        if source == target:
            return [source]
        parents = self._search(source, target)
        nodes: List[object] = []
        node: object = target
        while node != source:
            nodes.append(node)
            node = parents[node][0]
        nodes.append(source)
        nodes.reverse()
        return nodes

    def edge_path(
        self, source: str, target: str
    ) -> List[Tuple[object, object]]:
        """The *directed* edges of :meth:`node_path`, in travel order."""
        nodes = self.node_path(source, target)
        return list(zip(nodes, nodes[1:]))

    def pairs_crossing(
        self, edge: Tuple[object, object]
    ) -> List[Tuple[str, str]]:
        """Ordered host pairs whose route traverses the directed ``edge``.

        This is the blast-radius primitive: given the corrupted segment
        as a directed ``(from_node, to_node)`` edge, it answers "which
        source->destination host conversations cross that wire in that
        direction".  Pairs come back sorted for deterministic reports.
        """
        pairs: List[Tuple[str, str]] = []
        for source in self._hosts:
            for target in self._hosts:
                if source == target:
                    continue
                try:
                    path = self.edge_path(source, target)
                except RoutingError:
                    continue
                if edge in path:
                    pairs.append((source, target))
        pairs.sort()
        return pairs

    def probes_from(self, source: str) -> List[Probe]:
        """One probe per *other* host position, with both route directions."""
        probes = []
        for host in self._hosts:
            if host == source:
                continue
            probes.append(
                Probe(
                    position=host,
                    forward_route=tuple(self.route(source, host)),
                    reply_route=tuple(self.route(host, source)),
                )
            )
        return probes


def paper_oracle(instrumented_host: str = "pc") -> TopologyOracle:
    """The Figure 10 test-bed wiring as a :class:`TopologyOracle`.

    Mirrors :func:`repro.myrinet.network.build_paper_testbed`: hosts
    ``pc``/``sparc1``/``sparc2`` on ports 0/1/2 of one 8-port switch
    named ``switch``.  ``instrumented_host`` is accepted (and validated)
    so offline analyzers can assert the host named in a campaign spec
    actually exists in this topology.
    """
    hosts = ("pc", "sparc1", "sparc2")
    if instrumented_host not in hosts:
        raise ConfigurationError(
            f"instrumented host {instrumented_host!r} is not part of the "
            f"paper test bed {hosts}"
        )
    oracle = TopologyOracle()
    oracle.add_switch("switch")
    for port, name in enumerate(hosts):
        oracle.add_host(name)
        oracle.connect_host(name, "switch", port)
    return oracle
