"""``mmon``-style network monitoring.

The paper's campaigns watched "the status of the network and the
associated information (like routing tables and control registers) ...
with the Myrinet monitoring program mmon" (§4.2).  :class:`Mmon`
provides the equivalent view over a simulated network: per-host counters
and routing tables, per-switch counters, the mapper's latest network
map, and a known-good-state check used by the campaign framework to
re-establish the paper's precondition that "each campaign began with the
network in a known good state".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.myrinet.mapping import NetworkMap
from repro.myrinet.network import MyrinetNetwork


@dataclass
class NetworkSnapshot:
    """A point-in-time capture of the whole network's state."""

    time_ps: int
    host_stats: Dict[str, Dict[str, int]]
    switch_stats: Dict[str, Dict[str, int]]
    routing_tables: Dict[str, Dict[str, str]]
    network_map: Optional[NetworkMap]

    def total(self, counter: str) -> int:
        """Sum one host counter across all hosts."""
        return sum(stats.get(counter, 0) for stats in self.host_stats.values())


class Mmon:
    """Monitoring view over a :class:`MyrinetNetwork`."""

    def __init__(self, network: MyrinetNetwork) -> None:
        self._network = network

    def snapshot(self) -> NetworkSnapshot:
        """Capture counters, routing tables, and the current map.

        The snapshot owns every structure it returns: counter dicts are
        copied and the network map is cloned, so neither advancing
        the simulation nor mutating the snapshot can make the two views
        bleed into each other.  (Historically ``network_map`` aliased
        the MCP's live ``current_map`` object — a consumer clearing its
        entries would silently corrupt the mapper's history.)
        """
        host_stats = {
            name: dict(host.interface.stats)
            for name, host in self._network.hosts.items()
        }
        switch_stats = {
            name: dict(switch.stats)
            for name, switch in self._network.switches.items()
        }
        routing_tables = {}
        for name, host in self._network.hosts.items():
            routing_tables[name] = {
                str(mac): ",".join(str(p) for p in route)
                for mac, route in host.interface.routing_table.items()
            }
        mapper = self._network.mapper()
        live_map = mapper.mcp.current_map
        return NetworkSnapshot(
            time_ps=self._network.sim.now,
            host_stats=host_stats,
            switch_stats=switch_stats,
            routing_tables=routing_tables,
            network_map=live_map.clone() if live_map is not None else None,
        )

    def all_nodes_in_network(self) -> bool:
        """True if the latest map contains every host and every host has
        a route to every other host — the paper's "known good state"."""
        mapper = self._network.mapper()
        network_map = mapper.mcp.current_map
        if network_map is None:
            return False
        expected = set(self._network.hosts) - {mapper.name}
        if set(network_map.entries) != expected:
            return False
        macs = {
            host.interface.mac for host in self._network.hosts.values()
        }
        for name, host in self._network.hosts.items():
            others = macs - {host.interface.mac}
            if not others.issubset(set(host.interface.routing_table)):
                return False
        return True

    def render(self) -> str:
        """Human-readable status report."""
        snap = self.snapshot()
        lines = [f"mmon @ {snap.time_ps}ps"]
        for name in sorted(snap.host_stats):
            stats = snap.host_stats[name]
            lines.append(
                f"  host {name}: sent={stats['packets_sent']} "
                f"recv={stats['packets_received']} crc={stats['crc_errors']} "
                f"misaddr={stats['misaddressed_drops']}"
            )
            for mac, route in sorted(snap.routing_tables[name].items()):
                lines.append(f"    route {mac} -> [{route}]")
        for name in sorted(snap.switch_stats):
            stats = snap.switch_stats[name]
            lines.append(
                f"  switch {name}: fwd={stats['frames_forwarded']} "
                f"routing_errors={stats['routing_errors']} "
                f"long_timeouts={stats['long_timeouts']}"
            )
        if snap.network_map is not None:
            lines.append(snap.network_map.render())
        return "\n".join(lines)
