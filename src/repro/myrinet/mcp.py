"""The Myrinet Control Program (MCP).

Each host interface runs an MCP with a unique 64-bit address; the MCP with
the highest address is responsible for mapping the network, which it does
once per second (paper §4.1): it sends **scout** mapping packets to every
host position, collects **replies** (each carrying the responder's 48-bit
physical address and 64-bit MCP address), assembles a
:class:`~repro.myrinet.mapping.NetworkMap`, and distributes per-node
routing tables in **routes** packets.

Failure behaviours exercised by the paper's campaigns all emerge here:

* a corrupted scout or reply removes the node from the map — and hence
  from everyone's routing tables — until the next round (§4.3.2);
* a reply whose physical address is corrupted to the *controller's*
  address makes the mapper see "another controller"; map entries keyed by
  address collide and the published maps flap from round to round
  (§4.3.3, Figure 11);
* a reply corrupted to a non-existent address simply replaces the node
  with an unknown one, as if a machine had been swapped (§4.3.3).

All mapping traffic travels as real packets through the simulated fabric,
so an in-path injector can observe and corrupt it.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.myrinet.addresses import MacAddress, McpAddress
from repro.myrinet.interface import HostInterface
from repro.myrinet.mapping import MapEntry, NetworkMap, Probe, TopologyOracle
from repro.sim.kernel import Event, Simulator
from repro.sim.rng import DeterministicRng
from repro.sim.timebase import MS, SECOND, US

#: Mapping-packet payload subtypes.
SUBTYPE_SCOUT = 0x01
SUBTYPE_REPLY = 0x02
SUBTYPE_ROUTES = 0x03

#: Paper §4.1: the network is mapped once every second.
DEFAULT_MAP_INTERVAL_PS = SECOND
#: How long the mapper waits for scout replies before closing a round.
DEFAULT_REPLY_TIMEOUT_PS = 500 * US
#: Delay before the very first round (lets links and hosts settle).
DEFAULT_INITIAL_DELAY_PS = 1 * MS
#: Rounds of silence after which a deferring node reclaims mapping duty.
MAPPER_SILENCE_ROUNDS = 3

#: Bound on retained map history.
MAP_HISTORY_LIMIT = 64


class McpController:
    """One host's Myrinet Control Program."""

    def __init__(
        self,
        sim: Simulator,
        interface: HostInterface,
        oracle: TopologyOracle,
        position: str,
        rng: Optional[DeterministicRng] = None,
        map_interval_ps: int = DEFAULT_MAP_INTERVAL_PS,
        reply_timeout_ps: int = DEFAULT_REPLY_TIMEOUT_PS,
        initial_delay_ps: int = DEFAULT_INITIAL_DELAY_PS,
    ) -> None:
        self._sim = sim
        self.interface = interface
        self._oracle = oracle
        self.position = position
        self._rng = rng or DeterministicRng(interface.mcp_address.value & 0xFFFF)
        self._map_interval_ps = map_interval_ps
        self._reply_timeout_ps = reply_timeout_ps
        self._initial_delay_ps = initial_delay_ps

        interface.set_mapping_handler(self._on_mapping_payload)

        self.highest_known_mcp: McpAddress = interface.mcp_address
        self._last_mapping_heard = 0
        self._round_open = False
        self._round_index = 0
        self._probe_targets: Dict[int, Probe] = {}
        self._replies: List[Tuple[Probe, MacAddress, McpAddress]] = []
        self._round_conflict = False
        self._finalize_event: Optional[Event] = None
        self._probe_seq = 0

        self.map_history: List[NetworkMap] = []
        self.in_network = True

        # counters -------------------------------------------------------
        self.rounds_run = 0
        self.scouts_sent = 0
        self.replies_sent = 0
        self.routes_installed = 0
        self.conflicts_detected = 0
        self.malformed_mapping = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Begin the periodic mapping schedule."""
        stagger = self._rng.randint(0, 100) * US
        self._sim.schedule(
            self._initial_delay_ps + stagger,
            self._tick,
            label=f"mcp:{self.position}:tick",
        )

    def _tick(self) -> None:
        if self.should_map():
            self.run_round()
        self._sim.schedule(
            self._map_interval_ps, self._tick, label=f"mcp:{self.position}:tick"
        )

    def should_map(self) -> bool:
        """True if this MCP currently believes it is the mapper.

        A node defers to any higher address it has heard of, but reclaims
        mapping duty if the presumed mapper has been silent for
        :data:`MAPPER_SILENCE_ROUNDS` intervals (mapper-death recovery).
        """
        if self.interface.mcp_address >= self.highest_known_mcp:
            return True
        silence = self._sim.now - self._last_mapping_heard
        if silence > MAPPER_SILENCE_ROUNDS * self._map_interval_ps:
            self.highest_known_mcp = self.interface.mcp_address
            return True
        return False

    @property
    def is_mapper(self) -> bool:
        return self.interface.mcp_address >= self.highest_known_mcp

    @property
    def current_map(self) -> Optional[NetworkMap]:
        return self.map_history[-1] if self.map_history else None

    # ------------------------------------------------------------------
    # mapping rounds (mapper side)
    # ------------------------------------------------------------------

    def run_round(self) -> None:
        """Scout every host position and schedule round finalization."""
        if self._round_open:
            return
        self._round_open = True
        self._round_index += 1
        self.rounds_run += 1
        self._probe_targets.clear()
        self._replies = []
        self._round_conflict = False
        probes = self._oracle.probes_from(self.position)
        # Reply arrival order is timing-dependent on real hardware; the
        # shuffled probe order models that nondeterminism and is what
        # makes address-collision maps differ from round to round.
        self._rng.shuffle(probes)
        for probe in probes:
            self._probe_seq = (self._probe_seq + 1) & 0xFFFF
            self._probe_targets[self._probe_seq] = probe
            payload = self._encode_scout(self._probe_seq, probe)
            self.interface.send_mapping(list(probe.forward_route), payload)
            self.scouts_sent += 1
        self._finalize_event = self._sim.schedule(
            self._reply_timeout_ps,
            self._finalize_round,
            label=f"mcp:{self.position}:finalize",
        )

    def _encode_scout(self, probe_id: int, probe: Probe) -> bytes:
        reply_route = bytes(probe.reply_route)
        return bytes(
            [SUBTYPE_SCOUT, probe_id >> 8, probe_id & 0xFF, len(reply_route)]
        ) + reply_route + self.interface.mcp_address.to_bytes() + self.interface.mac.to_bytes()

    def _finalize_round(self) -> None:
        self._finalize_event = None
        self._round_open = False
        network_map = NetworkMap(
            round_index=self._round_index,
            completed_at=self._sim.now,
            conflict=self._round_conflict,
        )
        for probe, mac, mcp in self._replies:
            network_map.entries[probe.position] = MapEntry(
                position=probe.position,
                mac=mac,
                mcp=mcp,
                route=probe.forward_route,
            )
        self.map_history.append(network_map)
        if len(self.map_history) > MAP_HISTORY_LIMIT:
            self.map_history.pop(0)
        self._distribute_routes(network_map)

    def _distribute_routes(self, network_map: NetworkMap) -> None:
        """Compute per-node routing tables and push them to live nodes.

        Tables are keyed by 48-bit physical address; if two positions
        report the same address the later entry overwrites the earlier
        (the mechanical origin of the Figure 11 routing-table damage).
        """
        live: List[Tuple[str, MacAddress, McpAddress]] = [
            (self.position, self.interface.mac, self.interface.mcp_address)
        ]
        for probe, mac, mcp in self._replies:
            live.append((probe.position, mac, mcp))

        for target_position, _mac, _mcp in live:
            table: Dict[MacAddress, List[int]] = {}
            for other_position, other_mac, _other_mcp in live:
                if other_position == target_position:
                    continue
                table[other_mac] = self._oracle.route(
                    target_position, other_position
                )
            if target_position == self.position:
                self.interface.routing_table = table
                self.routes_installed += 1
                continue
            payload = self._encode_routes(table)
            self.interface.send_mapping(
                self._oracle.route(self.position, target_position), payload
            )

    def _encode_routes(self, table: Dict[MacAddress, List[int]]) -> bytes:
        parts = [bytes([SUBTYPE_ROUTES])]
        parts.append(self.interface.mcp_address.to_bytes())
        parts.append(bytes([len(table)]))
        for mac, route in table.items():
            parts.append(mac.to_bytes())
            parts.append(bytes([len(route)]))
            parts.append(bytes(route))
        return b"".join(parts)

    # ------------------------------------------------------------------
    # mapping-packet reception (all nodes)
    # ------------------------------------------------------------------

    def _on_mapping_payload(self, payload: bytes) -> None:
        if not payload:
            self.malformed_mapping += 1
            return
        subtype = payload[0]
        if subtype == SUBTYPE_SCOUT:
            self._on_scout(payload)
        elif subtype == SUBTYPE_REPLY:
            self._on_reply(payload)
        elif subtype == SUBTYPE_ROUTES:
            self._on_routes(payload)
        else:
            # A corrupted subtype is simply not understood: the node does
            # not respond, which is exactly how the paper's corrupted
            # mapping packets remove nodes from the network (§4.3.2).
            self.malformed_mapping += 1

    def _on_scout(self, payload: bytes) -> None:
        if len(payload) < 4:
            self.malformed_mapping += 1
            return
        probe_id = (payload[1] << 8) | payload[2]
        route_len = payload[3]
        expected = 4 + route_len + 8 + 6
        if len(payload) < expected:
            self.malformed_mapping += 1
            return
        reply_route = list(payload[4:4 + route_len])
        mapper_mcp = McpAddress.from_bytes(payload[4 + route_len:4 + route_len + 8])
        mapper_mac = MacAddress.from_bytes(
            payload[4 + route_len + 8:4 + route_len + 14]
        )
        self._note_mapper(mapper_mcp)
        if (
            mapper_mcp < self.interface.mcp_address
            and self.highest_known_mcp > self.interface.mcp_address
        ):
            # A lower-addressed MCP is mapping: it believes nothing
            # higher is alive, so the presumed mapper must be dead —
            # take over (we outrank the scouting node).
            self.highest_known_mcp = self.interface.mcp_address
        if (
            mapper_mcp == self.interface.mcp_address
            and mapper_mac != self.interface.mac
        ):
            self.conflicts_detected += 1
        reply = (
            bytes([SUBTYPE_REPLY, probe_id >> 8, probe_id & 0xFF])
            + self.interface.mcp_address.to_bytes()
            + self.interface.mac.to_bytes()
        )
        self.interface.send_mapping(reply_route, reply)
        self.replies_sent += 1

    def _on_reply(self, payload: bytes) -> None:
        if len(payload) < 3 + 8 + 6:
            self.malformed_mapping += 1
            return
        probe_id = (payload[1] << 8) | payload[2]
        mcp = McpAddress.from_bytes(payload[3:11])
        mac = MacAddress.from_bytes(payload[11:17])
        probe = self._probe_targets.get(probe_id)
        if probe is None or not self._round_open:
            return
        del self._probe_targets[probe_id]
        if mcp > self.interface.mcp_address:
            self._note_mapper(mcp)
        if mcp == self.interface.mcp_address or mac == self.interface.mac:
            # "The controller is confused by the appearance of what it
            # believes is another controller" (paper §4.3.3).
            self._round_conflict = True
            self.conflicts_detected += 1
        self._replies.append((probe, mac, mcp))
        if not self._probe_targets and self._finalize_event is not None:
            self._finalize_event.cancel()
            self._finalize_event = None
            self._finalize_round()

    def _on_routes(self, payload: bytes) -> None:
        if len(payload) < 10:
            self.malformed_mapping += 1
            return
        mapper_mcp = McpAddress.from_bytes(payload[1:9])
        self._note_mapper(mapper_mcp)
        count = payload[9]
        table: Dict[MacAddress, List[int]] = {}
        offset = 10
        for _ in range(count):
            if offset + 7 > len(payload):
                self.malformed_mapping += 1
                return
            mac = MacAddress.from_bytes(payload[offset:offset + 6])
            route_len = payload[offset + 6]
            offset += 7
            if offset + route_len > len(payload):
                self.malformed_mapping += 1
                return
            table[mac] = list(payload[offset:offset + route_len])
            offset += route_len
        self.interface.routing_table = table
        self.routes_installed += 1
        self.in_network = True

    def _note_mapper(self, mcp: McpAddress) -> None:
        self._last_mapping_heard = self._sim.now
        if mcp > self.highest_known_mcp:
            self.highest_known_mcp = mcp
