"""Myrinet symbols.

A Myrinet channel carries 9-bit symbols: a data/control (D/C) bit plus
eight bits of payload.  The D/C bit is 1 for data and 0 for control
symbols (paper §4.1).  Control symbols perform link "maintenance": GAP
separates packets, STOP/GO implement slack-buffer flow control, and IDLE
fills an otherwise silent channel.

The encodings keep a pairwise Hamming distance of at least two
(STOP=0x0F, GO=0x03, GAP=0x0C — paper §4.3.1); we add IDLE=0x00, which
preserves the property.  Symbols suffering a single 1→0 fault decode to
their unique parent control symbol; see :func:`decode_control` for the
paper-erratum discussion.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

#: Control symbol encodings (8-bit value carried with D/C = 0).
STOP_VALUE = 0x0F
GO_VALUE = 0x03
GAP_VALUE = 0x0C
IDLE_VALUE = 0x00

_CONTROL_NAMES: Dict[int, str] = {
    STOP_VALUE: "STOP",
    GO_VALUE: "GO",
    GAP_VALUE: "GAP",
    IDLE_VALUE: "IDLE",
}


class Symbol:
    """One 9-bit Myrinet symbol: a D/C bit plus an 8-bit value.

    Instances are immutable and interned: the 256 data symbols and every
    control symbol are created once and shared, which keeps the symbol
    streams of long campaigns allocation-free.
    """

    __slots__ = ("is_data", "value", "pair")

    _data_cache: List["Symbol"] = []
    _control_cache: Dict[int, "Symbol"] = {}

    def __init__(self, is_data: bool, value: int) -> None:
        if not 0 <= value <= 0xFF:
            raise ValueError(f"symbol value {value!r} out of byte range")
        object.__setattr__(self, "is_data", is_data)
        object.__setattr__(self, "value", value)
        # Precomputed (D/C flag, value) byte pair.  The fast path builds
        # whole-buffer value/flag planes by joining these pairs and
        # slicing — a single C-level pass instead of per-symbol Python
        # attribute reads (see repro.fastpath.buffer.SymbolBuffer).
        object.__setattr__(self, "pair", bytes((1 if is_data else 0, value)))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Symbol instances are immutable")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Symbol):
            return NotImplemented
        return self.is_data == other.is_data and self.value == other.value

    def __hash__(self) -> int:
        return hash((self.is_data, self.value))

    def __repr__(self) -> str:
        if self.is_data:
            return f"D({self.value:#04x})"
        name = _CONTROL_NAMES.get(self.value)
        return f"C({name})" if name else f"C({self.value:#04x})"

    @property
    def name(self) -> str:
        """Symbolic name for control symbols, hex for everything else."""
        if not self.is_data and self.value in _CONTROL_NAMES:
            return _CONTROL_NAMES[self.value]
        return f"{self.value:#04x}"


#: Control-symbol display name for every byte value (the fast path's
#: batched statistics use this table instead of Symbol.name lookups).
CONTROL_NAME_BY_VALUE: Tuple[str, ...] = tuple(
    _CONTROL_NAMES.get(v, f"{v:#04x}") for v in range(256)
)


def data_symbol(value: int) -> Symbol:
    """The interned data symbol carrying ``value``."""
    return Symbol._data_cache[value]


def control_symbol(value: int) -> Symbol:
    """The interned control symbol carrying ``value``."""
    cached = Symbol._control_cache.get(value)
    if cached is None:
        cached = Symbol(False, value)
        Symbol._control_cache[value] = cached
    return cached


Symbol._data_cache = [Symbol(True, v) for v in range(256)]

#: The four interned control symbols.
STOP = control_symbol(STOP_VALUE)
GO = control_symbol(GO_VALUE)
GAP = control_symbol(GAP_VALUE)
IDLE = control_symbol(IDLE_VALUE)


def is_data(symbol: Symbol) -> bool:
    """True if ``symbol`` carries packet data (D/C bit set)."""
    return symbol.is_data


def is_control(symbol: Symbol) -> bool:
    """True if ``symbol`` is a control symbol (D/C bit clear)."""
    return not symbol.is_data


def data_symbols(payload: Iterable[int]) -> List[Symbol]:
    """Interned data symbols for a byte sequence."""
    cache = Symbol._data_cache
    return [cache[b] for b in payload]


def symbol_bytes(symbols: Iterable[Symbol]) -> bytes:
    """Extract the byte values of the *data* symbols in a stream."""
    return bytes(s.value for s in symbols if s.is_data)


def decode_control(value: int) -> Optional[Symbol]:
    """Decode a received control-symbol value, tolerating 1→0 bit faults.

    Exact encodings decode directly.  A value that can be produced from
    exactly one control symbol by a single 1→0 bit fault decodes to that
    symbol (paper §4.3.1: "symbols that suffer single 1 to 0 faults will
    still be detected correctly").  Anything else — including values
    reachable from more than one parent — is undecodable and returns
    ``None`` (the receiver discards it).

    .. note::
       The paper gives "0x08 will still be recognized as STOP" as an
       example, but 0x08 is a single 1→0 fault of GAP (0x0C → 0x08), and
       is three bit-flips away from STOP (0x0F).  We treat the example as
       an erratum and implement the principled rule: 0x08 decodes to GAP,
       0x02 decodes to GO (matching the paper's second example).
    """
    exact = _CONTROL_NAMES.get(value)
    if exact is not None:
        return control_symbol(value)
    parents = _SINGLE_FAULT_PARENTS.get(value)
    if parents is not None and len(parents) == 1:
        return control_symbol(parents[0])
    return None


def _build_single_fault_table() -> Dict[int, Tuple[int, ...]]:
    """Map each single-1→0-faulted value to its possible parent symbols."""
    table: Dict[int, List[int]] = {}
    for parent in _CONTROL_NAMES:
        for bit in range(8):
            if parent & (1 << bit):
                faulted = parent & ~(1 << bit)
                if faulted in _CONTROL_NAMES:
                    continue
                table.setdefault(faulted, []).append(parent)
    return {value: tuple(parents) for value, parents in table.items()}


_SINGLE_FAULT_PARENTS = _build_single_fault_table()


def hamming_distance(a: int, b: int) -> int:
    """Number of differing bits between two byte values."""
    return bin((a ^ b) & 0xFF).count("1")


def min_control_distance() -> int:
    """Minimum pairwise Hamming distance among the control encodings."""
    values = list(_CONTROL_NAMES)
    return min(
        hamming_distance(a, b)
        for i, a in enumerate(values)
        for b in values[i + 1 :]
    )
