"""Symbol-stream framing.

A :class:`FrameAssembler` splits an incoming symbol stream into frames on
GAP boundaries (paper Figure 8): data symbols accumulate into the current
frame, GAP closes it, STOP/GO are passed to a control-symbol handler
*without* breaking the frame (control symbols are interleaved with data on
a Myrinet channel), IDLE is discarded, and undecodable control values are
dropped and counted.

Frames that exceed ``max_frame`` — e.g. the unbounded merge created when a
packet-terminating GAP is corrupted — are discarded as errors, mirroring a
real interface's maximum-packet guard.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.myrinet.symbols import GAP, IDLE, Symbol, decode_control

#: Default maximum frame size in bytes (route + type + payload + CRC).
DEFAULT_MAX_FRAME = 4096


class FrameAssembler:
    """Reassembles frames from a symbol stream."""

    def __init__(
        self,
        on_frame: Callable[[bytes], None],
        on_control: Optional[Callable[[Symbol], None]] = None,
        max_frame: int = DEFAULT_MAX_FRAME,
    ) -> None:
        self._on_frame = on_frame
        self._on_control = on_control
        self._max_frame = max_frame
        self._current: List[int] = []
        self._overflowed = False
        self.frames_emitted = 0
        self.oversize_frames = 0
        self.undecodable_controls = 0

    def push(self, symbol: Symbol) -> None:
        """Feed one symbol into the assembler."""
        if symbol.is_data:
            if self._overflowed:
                return
            if len(self._current) >= self._max_frame:
                self._overflowed = True
                self.oversize_frames += 1
                self._current.clear()
                return
            self._current.append(symbol.value)
            return
        decoded = decode_control(symbol.value)
        if decoded is None:
            self.undecodable_controls += 1
            return
        if decoded is GAP:
            self._close_frame()
        elif decoded is IDLE:
            return
        elif self._on_control is not None:
            self._on_control(decoded)

    def push_burst(self, burst: List[Symbol]) -> None:
        """Feed a burst of symbols (fused loop over data runs)."""
        current = self._current
        max_frame = self._max_frame
        append = current.append
        for symbol in burst:
            if symbol.is_data:
                if self._overflowed:
                    continue
                if len(current) >= max_frame:
                    self._overflowed = True
                    self.oversize_frames += 1
                    current.clear()
                    continue
                append(symbol.value)
                continue
            self.push(symbol)

    def _close_frame(self) -> None:
        if self._overflowed:
            self._overflowed = False
            return
        if self._current:
            frame = bytes(self._current)
            self._current.clear()
            self.frames_emitted += 1
            self._on_frame(frame)

    @property
    def partial_length(self) -> int:
        """Bytes accumulated in the currently open frame."""
        return len(self._current)

    def reset(self) -> None:
        """Drop any partial frame (e.g. on link reinitialization)."""
        self._current.clear()
        self._overflowed = False
