"""Symbol-stream framing.

A :class:`FrameAssembler` splits an incoming symbol stream into frames on
GAP boundaries (paper Figure 8): data symbols accumulate into the current
frame, GAP closes it, STOP/GO are passed to a control-symbol handler
*without* breaking the frame (control symbols are interleaved with data on
a Myrinet channel), IDLE is discarded, and undecodable control values are
dropped and counted.

Frames that exceed ``max_frame`` — e.g. the unbounded merge created when a
packet-terminating GAP is corrupted — are discarded as errors, mirroring a
real interface's maximum-packet guard.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.myrinet.symbols import GAP, IDLE, Symbol, decode_control

#: Default maximum frame size in bytes (route + type + payload + CRC).
DEFAULT_MAX_FRAME = 4096


class FrameAssembler:
    """Reassembles frames from a symbol stream."""

    def __init__(
        self,
        on_frame: Callable[[bytes], None],
        on_control: Optional[Callable[[Symbol], None]] = None,
        max_frame: int = DEFAULT_MAX_FRAME,
    ) -> None:
        self._on_frame = on_frame
        self._on_control = on_control
        self._max_frame = max_frame
        self._current: List[int] = []
        self._overflowed = False
        self.frames_emitted = 0
        self.oversize_frames = 0
        self.undecodable_controls = 0

    def push(self, symbol: Symbol) -> None:
        """Feed one symbol into the assembler."""
        if symbol.is_data:
            if self._overflowed:
                return
            if len(self._current) >= self._max_frame:
                self._overflowed = True
                self.oversize_frames += 1
                self._current.clear()
                return
            self._current.append(symbol.value)
            return
        decoded = decode_control(symbol.value)
        if decoded is None:
            self.undecodable_controls += 1
            return
        if decoded is GAP:
            self._close_frame()
        elif decoded is IDLE:
            return
        elif self._on_control is not None:
            self._on_control(decoded)

    def push_burst(self, burst: List[Symbol]) -> None:
        """Feed a burst of symbols (fused loop over data runs)."""
        current = self._current
        max_frame = self._max_frame
        append = current.append
        for symbol in burst:
            if symbol.is_data:
                if self._overflowed:
                    continue
                if len(current) >= max_frame:
                    self._overflowed = True
                    self.oversize_frames += 1
                    current.clear()
                    continue
                append(symbol.value)
                continue
            self.push(symbol)

    def push_buffer(self, values: bytes, flags: bytes) -> None:
        """Feed a whole buffer from its value/flag planes.

        Byte-exact equivalent of :meth:`push_burst` driven by C-level
        primitives: data runs extend the open frame via slice-extends
        (with the scalar path's exact ``max_frame`` overflow semantics:
        a run is accepted up to the limit and overflow fires on the
        *next* data byte), and control runs collapse to one dispatch per
        run — valid because repeated GAPs beyond the first are no-ops
        and IDLE/undecodable symbols only count.
        """
        n = len(values)
        current = self._current
        max_frame = self._max_frame
        find_data = flags.find
        i = 0
        while i < n:
            if flags[i]:
                j = find_data(0, i)
                if j == -1:
                    j = n
                if not self._overflowed:
                    space = max_frame - len(current)
                    if j - i <= space:
                        current.extend(values[i:j])
                    else:
                        # Fill to the limit; the next data byte trips
                        # the overflow guard exactly as in push().
                        current.extend(values[i:i + space])
                        self._overflowed = True
                        self.oversize_frames += 1
                        current.clear()
                i = j
                continue
            j = find_data(1, i)
            if j == -1:
                j = n
            k = i
            while k < j:
                value = values[k]
                rest = values[k:j].lstrip(values[k:k + 1])
                run = j - k - len(rest)
                decoded = decode_control(value)
                if decoded is None:
                    self.undecodable_controls += run
                elif decoded is GAP:
                    # One close is exact: after the first GAP the frame
                    # is empty and not overflowed, so further GAPs in
                    # the run would be no-ops in the scalar path too.
                    self._close_frame()
                elif decoded is IDLE:
                    pass
                elif self._on_control is not None:
                    handler = self._on_control
                    for _ in range(run):
                        handler(decoded)
                k += run
            i = j

    def _close_frame(self) -> None:
        if self._overflowed:
            self._overflowed = False
            return
        if self._current:
            frame = bytes(self._current)
            self._current.clear()
            self.frames_emitted += 1
            self._on_frame(frame)

    @property
    def partial_length(self) -> int:
        """Bytes accumulated in the currently open frame."""
        return len(self._current)

    def reset(self) -> None:
        """Drop any partial frame (e.g. on link reinitialization)."""
        self._current.clear()
        self._overflowed = False
