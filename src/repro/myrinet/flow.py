"""Myrinet link-level flow control (paper §4.1, §4.3.1 and Figure 9).

Each receiving port owns a slack buffer; crossing its high-water mark makes
the receiver signal STOP to the remote sender, and draining below the
low-water mark signals GO.  The remote sender also runs a *short-period
timeout*: its STOP state decays 16 character periods after the most recent
STOP symbol, so a sender stopped by an erroneous STOP "recovers fairly
quickly by acting as if it received a GO symbol" (paper §4.3.1).  Because
of the decay, a receiver that needs a sender to *stay* stopped refreshes
the STOP continuously; the refresher sends STOP symbols in configurable
bursts so the scheduler cost stays bounded.

Two transports are provided (see DESIGN.md):

* ``symbols`` — STOP/GO travel as real control symbols on the reverse
  channel, where an in-path fault injector can observe and corrupt them;
* ``direct`` — the receiver flips the remote sender's flow state through a
  shared registry with zero scheduler events.  Used on links that carry no
  injector, purely as a performance substitution.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.errors import ConfigurationError
from repro.sim.kernel import Event, Simulator
from repro.myrinet.link import Channel
from repro.myrinet.symbols import GO, STOP, Symbol

#: Short-period timeout: 16 character periods (paper §4.3.1).
SHORT_TIMEOUT_PERIODS = 16

#: Long-period timeout: ~4 million character periods, ~50 ms at 80 MB/s
#: (paper §4.3.1, "Corruption of GAP symbols").
LONG_TIMEOUT_PERIODS = 4_000_000

#: STOP symbols per refresh burst in ``symbols`` transport.  A burst of N
#: STOPs serializes over N character periods and is delivered as one
#: chunk, so consecutive bursts arrive N character periods apart; the
#: remote decay timer (16 periods) must cover that spacing, which bounds
#: the burst at the short-timeout length.  Back-to-back bursts then hold
#: the sender stopped continuously at one scheduler event per burst.
STOP_REFRESH_BURST = SHORT_TIMEOUT_PERIODS


class TxFlowState:
    """Flow-control state gating one transmit direction.

    ``stopped`` is driven two ways: by STOP/GO symbols and by direct
    assertion (held until released).  The short-period timeout follows
    the paper literally: "The timeout counter is set to 16 character
    periods.  If a symbol is received, the counter is reset.  If the
    counter times out, the sender transitions itself to the GO stage."
    Any received symbol — data or control — re-arms the counter, so a
    STOP is *sticky* while the reverse channel carries traffic and only
    decays after 16 quiet character periods.  Receivers therefore report
    every burst through :meth:`note_activity`.

    Senders consult :meth:`blocked` before each burst and may register a
    callback to be poked when the state unblocks.
    """

    def __init__(self, sim: Simulator, char_period_ps: int,
                 short_timeout_periods: int = SHORT_TIMEOUT_PERIODS) -> None:
        self._sim = sim
        self._decay_ps = short_timeout_periods * char_period_ps
        self._stopped = False
        self._last_activity = 0
        self._held = False
        self._on_unblock: List[Callable[[], None]] = []
        self.stops_received = 0
        self.gos_received = 0
        self.timeout_recoveries = 0

    @property
    def decay_ps(self) -> int:
        """Quiet time after which a STOP state decays to GO."""
        return self._decay_ps

    def on_stop_symbol(self) -> None:
        """A STOP symbol arrived: stop, and re-arm the timeout counter."""
        self.stops_received += 1
        self._stopped = True
        self._last_activity = self._sim.now

    def on_go_symbol(self) -> None:
        """A GO symbol arrived: resume immediately."""
        self.gos_received += 1
        if self._stopped:
            self._stopped = False
            if not self._held:
                self._notify()

    def note_activity(self) -> None:
        """Any symbol arrived on the receive side: reset the counter."""
        if self._stopped:
            self._last_activity = self._sim.now

    def on_control_symbol(self, symbol: Symbol) -> None:
        """Dispatch a decoded flow-control symbol."""
        if symbol == STOP:
            self.on_stop_symbol()
        elif symbol == GO:
            self.on_go_symbol()

    def hold(self) -> None:
        """Directly assert backpressure (``direct`` transport)."""
        self._held = True

    def release(self) -> None:
        """Directly release backpressure (``direct`` transport)."""
        if self._held:
            self._held = False
            if not self.blocked():
                self._notify()

    def _decay_check(self) -> None:
        if (
            self._stopped
            and self._sim.now - self._last_activity > self._decay_ps
        ):
            # Short-period timeout: transition to the GO stage.
            self._stopped = False
            self.timeout_recoveries += 1

    def blocked(self) -> bool:
        """True if the sender must not transmit right now."""
        if self._held:
            return True
        self._decay_check()
        return self._stopped

    def earliest_resume(self) -> Optional[int]:
        """A lower bound on when the STOP state can decay, or None if
        held directly (direct holds wake senders via the callback).

        The bound may move later if more symbols arrive; polling senders
        simply re-check and re-schedule.
        """
        if self._held:
            return None
        self._decay_check()
        if self._stopped:
            return self._last_activity + self._decay_ps + 1
        return self._sim.now

    def notify_unblocked(self, callback: Callable[[], None]) -> None:
        """Register a callback fired whenever the state unblocks."""
        self._on_unblock.append(callback)

    def note_timeout_recovery(self) -> None:
        """Record that a sender resumed via decay rather than a GO."""
        self.timeout_recoveries += 1

    def _notify(self) -> None:
        for callback in list(self._on_unblock):
            callback()


class StopRefresher:
    """Receiver-side STOP generator for the ``symbols`` transport.

    While active, sends bursts of STOP symbols on the reverse channel,
    sized and spaced so the remote decay timer never expires.  Stopping
    the refresher sends a single GO.
    """

    def __init__(self, sim: Simulator, channel: Channel,
                 burst_length: int = STOP_REFRESH_BURST) -> None:
        if burst_length < 1:
            raise ConfigurationError("STOP refresh burst must be >= 1 symbol")
        self._sim = sim
        self._channel = channel
        self._burst = [STOP] * burst_length
        self._period_ps = burst_length * channel.char_period_ps
        self._event: Optional[Event] = None
        self._active = False
        self.stop_bursts_sent = 0
        self.gos_sent = 0

    @property
    def active(self) -> bool:
        return self._active

    def start(self) -> None:
        """Begin asserting STOP.  Idempotent."""
        if self._active:
            return
        self._active = True
        self._send_burst()

    def stop(self) -> None:
        """Release: cancel the refresh and send one GO.  Idempotent."""
        if not self._active:
            return
        self._active = False
        if self._event is not None:
            self._event.cancel()
            self._event = None
        self._channel.send([GO])
        self.gos_sent += 1

    def _send_burst(self) -> None:
        if not self._active:
            return
        self._channel.send(self._burst)
        self.stop_bursts_sent += 1
        self._event = self._sim.schedule(
            self._period_ps, self._send_burst, label="stop-refresh"
        )


class PortFlowControl:
    """Both halves of a port's flow control.

    * :attr:`tx_state` gates what *we* transmit out of this port; it is
      driven by control symbols we receive (or by the remote side's
      direct assertions).
    * :meth:`set_backpressure` signals the remote sender to stop/go,
      using whichever transport the link was configured with.
    """

    def __init__(
        self,
        sim: Simulator,
        tx_channel: Channel,
        transport: str = "symbols",
        remote_tx_state: Optional[TxFlowState] = None,
        remote_tx_state_getter: Optional[Callable[[], Optional[TxFlowState]]] = None,
        short_timeout_periods: int = SHORT_TIMEOUT_PERIODS,
        refresh_burst: int = STOP_REFRESH_BURST,
    ) -> None:
        if transport not in ("symbols", "direct"):
            raise ConfigurationError(f"unknown flow transport {transport!r}")
        if (
            transport == "direct"
            and remote_tx_state is None
            and remote_tx_state_getter is None
        ):
            raise ConfigurationError(
                "direct flow transport needs the remote TxFlowState "
                "(or a getter that resolves it at use time)"
            )
        self._sim = sim
        self._transport = transport
        self._remote_tx_state = remote_tx_state
        self._remote_getter = remote_tx_state_getter
        self.tx_state = TxFlowState(
            sim, tx_channel.char_period_ps, short_timeout_periods
        )
        self._refresher = StopRefresher(sim, tx_channel, refresh_burst)
        self._backpressure = False

    @property
    def transport(self) -> str:
        return self._transport

    @property
    def backpressure_active(self) -> bool:
        return self._backpressure

    @property
    def refresher(self) -> StopRefresher:
        return self._refresher

    def bind_remote(self, remote_tx_state: TxFlowState) -> None:
        """Late-bind the remote sender's state (``direct`` transport)."""
        self._remote_tx_state = remote_tx_state

    def _resolve_remote(self) -> TxFlowState:
        if self._remote_tx_state is not None:
            return self._remote_tx_state
        if self._remote_getter is not None:
            state = self._remote_getter()
            if state is not None:
                return state
        raise ConfigurationError(
            "direct flow transport: remote TxFlowState not registered yet"
        )

    def on_control_symbol(self, symbol: Symbol) -> None:
        """Feed a received, decoded control symbol to our TX gate."""
        self.tx_state.on_control_symbol(symbol)

    def set_backpressure(self, active: bool) -> None:
        """Ask the remote sender to stop (True) or resume (False)."""
        if active == self._backpressure:
            return
        self._backpressure = active
        if self._transport == "direct":
            remote = self._resolve_remote()
            if active:
                remote.hold()
            else:
                remote.release()
        else:
            if active:
                self._refresher.start()
            else:
                self._refresher.stop()


def long_timeout_ps(char_period_ps: int,
                    periods: int = LONG_TIMEOUT_PERIODS) -> int:
    """The long-period timeout in picoseconds for a given character rate."""
    return periods * char_period_ps


def short_timeout_ps(char_period_ps: int,
                     periods: int = SHORT_TIMEOUT_PERIODS) -> int:
    """The short-period timeout in picoseconds for a given character rate."""
    return periods * char_period_ps
