"""Topology builder: assembles hosts, switches, links, and MCPs.

:class:`MyrinetNetwork` is the high-level entry point for constructing a
simulated Myrinet LAN.  It wires interfaces to switches, keeps the
:class:`~repro.myrinet.mapping.TopologyOracle` consistent with the
physical wiring, and supports splicing an in-path device (the fault
injector) into any host-to-switch connection — in which case both link
segments carry flow control as real symbols so the device can observe
and corrupt them.

:func:`build_paper_testbed` recreates the paper's Figure 10 network: one
Linux PC and two UltraSPARC workstations on an 8-port Myrinet switch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Protocol, Tuple

from repro.errors import ConfigurationError
from repro.myrinet.addresses import MacAddress, McpAddress
from repro.myrinet.interface import HostInterface
from repro.myrinet.link import DEFAULT_CHAR_PERIOD_PS, DEFAULT_PROPAGATION_PS, Link
from repro.myrinet.mapping import TopologyOracle
from repro.myrinet.mcp import McpController
from repro.myrinet.switch import MyrinetSwitch
from repro.sim.kernel import Simulator
from repro.sim.rng import DeterministicRng
from repro.sim.timebase import MS

#: Locally-administered MAC prefix used for auto-assigned addresses.
_MAC_BASE = 0x02_00_5E_00_00_00
#: Base for auto-assigned MCP addresses.
_MCP_BASE = 0x0000_1000_0000_0000


class InPathDevice(Protocol):
    """Anything that can be spliced into a host-switch connection."""

    def attach_left(self, link: Link, side: str) -> None:
        """Attach the segment facing the host."""

    def attach_right(self, link: Link, side: str) -> None:
        """Attach the segment facing the switch."""


@dataclass
class Host:
    """A host: its interface plus the MCP running on it."""

    name: str
    interface: HostInterface
    mcp: McpController


@dataclass
class Connection:
    """Record of one host-to-switch attachment."""

    host: str
    switch: str
    port: int
    links: List[Link] = field(default_factory=list)
    device: Optional[InPathDevice] = None


class MyrinetNetwork:
    """Builder and container for a simulated Myrinet LAN."""

    def __init__(
        self,
        sim: Simulator,
        char_period_ps: int = DEFAULT_CHAR_PERIOD_PS,
        propagation_ps: int = DEFAULT_PROPAGATION_PS,
        flow_transport: str = "direct",
        rng: Optional[DeterministicRng] = None,
        map_interval_ps: Optional[int] = None,
        mcp_reply_timeout_ps: Optional[int] = None,
        mcp_initial_delay_ps: Optional[int] = None,
    ) -> None:
        self.sim = sim
        self.char_period_ps = char_period_ps
        self.propagation_ps = propagation_ps
        self.flow_transport = flow_transport
        self.rng = rng or DeterministicRng(0)
        self._mcp_kwargs: Dict[str, int] = {}
        if map_interval_ps is not None:
            self._mcp_kwargs["map_interval_ps"] = map_interval_ps
        if mcp_reply_timeout_ps is not None:
            self._mcp_kwargs["reply_timeout_ps"] = mcp_reply_timeout_ps
        if mcp_initial_delay_ps is not None:
            self._mcp_kwargs["initial_delay_ps"] = mcp_initial_delay_ps

        self.oracle = TopologyOracle()
        self.hosts: Dict[str, Host] = {}
        self.switches: Dict[str, MyrinetSwitch] = {}
        self.connections: List[Connection] = []
        self._next_host_index = 0
        self._started = False

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def add_switch(self, name: str, num_ports: int = 8,
                   **kwargs) -> MyrinetSwitch:
        """Create a switch and register it with the topology oracle."""
        if name in self.switches:
            raise ConfigurationError(f"duplicate switch name {name!r}")
        switch = MyrinetSwitch(self.sim, name=name, num_ports=num_ports,
                               **kwargs)
        self.switches[name] = switch
        self.oracle.add_switch(name)
        return switch

    def add_host(
        self,
        name: str,
        mac: Optional[MacAddress] = None,
        mcp_address: Optional[McpAddress] = None,
        **interface_kwargs,
    ) -> Host:
        """Create a host (interface + MCP).

        Addresses are auto-assigned in creation order unless given, so
        the *last* host added holds the highest MCP address and becomes
        the mapper.
        """
        if name in self.hosts:
            raise ConfigurationError(f"duplicate host name {name!r}")
        index = self._next_host_index
        self._next_host_index += 1
        if mac is None:
            mac = MacAddress(_MAC_BASE + index + 1)
        if mcp_address is None:
            mcp_address = McpAddress(_MCP_BASE + index + 1)
        interface = HostInterface(
            self.sim, name=name, mac=mac, mcp_address=mcp_address,
            **interface_kwargs,
        )
        mcp = McpController(
            self.sim,
            interface,
            self.oracle,
            position=name,
            rng=self.rng.fork(f"mcp:{name}"),
            **self._mcp_kwargs,
        )
        host = Host(name=name, interface=interface, mcp=mcp)
        self.hosts[name] = host
        self.oracle.add_host(name)
        return host

    def connect(
        self,
        host_name: str,
        switch_name: str,
        port: int,
        device: Optional[InPathDevice] = None,
        flow_transport: Optional[str] = None,
    ) -> Connection:
        """Wire a host to a switch port, optionally through an in-path device.

        With a device, two link segments are created (host—device and
        device—switch) and flow control is forced onto the ``symbols``
        transport so STOP/GO traverse — and can be corrupted by — the
        device.
        """
        host = self.hosts[host_name]
        switch = self.switches[switch_name]
        connection = Connection(host=host_name, switch=switch_name,
                                port=port, device=device)
        if device is None:
            transport = flow_transport or self.flow_transport
            link = self._new_link(f"{host_name}<->{switch_name}.p{port}")
            host.interface.attach_link(link, "a", flow_transport=transport)
            switch.attach_link(port, link, "b", flow_transport=transport)
            connection.links.append(link)
        else:
            left = self._new_link(f"{host_name}<->dev")
            right = self._new_link(f"dev<->{switch_name}.p{port}")
            host.interface.attach_link(left, "a", flow_transport="symbols")
            device.attach_left(left, "b")
            device.attach_right(right, "a")
            switch.attach_link(port, right, "b", flow_transport="symbols")
            connection.links.extend([left, right])
        self.oracle.connect_host(host_name, switch_name, port)
        self.connections.append(connection)
        return connection

    def connect_switches(
        self,
        switch_a: str,
        port_a: int,
        switch_b: str,
        port_b: int,
        device: Optional[InPathDevice] = None,
        flow_transport: Optional[str] = None,
    ) -> List[Link]:
        """Wire two switches together, optionally through an in-path device.

        Splicing the injector into an inter-switch trunk monitors (and
        can corrupt) every flow crossing it — "allowing previously
        inaccessible portions of the system to be monitored" (paper §1).
        Returns the created link segment(s).
        """
        if device is None:
            transport = flow_transport or self.flow_transport
            link = self._new_link(
                f"{switch_a}.p{port_a}<->{switch_b}.p{port_b}"
            )
            self.switches[switch_a].attach_link(port_a, link, "a",
                                                flow_transport=transport)
            self.switches[switch_b].attach_link(port_b, link, "b",
                                                flow_transport=transport)
            self.oracle.connect_switches(switch_a, port_a, switch_b, port_b)
            return [link]
        left = self._new_link(f"{switch_a}.p{port_a}<->dev")
        right = self._new_link(f"dev<->{switch_b}.p{port_b}")
        self.switches[switch_a].attach_link(port_a, left, "a",
                                            flow_transport="symbols")
        device.attach_left(left, "b")
        device.attach_right(right, "a")
        self.switches[switch_b].attach_link(port_b, right, "b",
                                            flow_transport="symbols")
        self.oracle.connect_switches(switch_a, port_a, switch_b, port_b)
        return [left, right]

    def _new_link(self, name: str) -> Link:
        return Link(
            self.sim,
            name,
            char_period_ps=self.char_period_ps,
            propagation_ps=self.propagation_ps,
        )

    # ------------------------------------------------------------------
    # operation
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Start every MCP.  Idempotent."""
        if self._started:
            return
        self._started = True
        for host in self.hosts.values():
            host.mcp.start()

    def settle(self, duration_ps: int = 5 * MS) -> None:
        """Start the network and run until routing tables are in place.

        The default covers the MCP initial delay, its stagger, one full
        scout round, and the routes distribution for LAN-scale networks.
        """
        self.start()
        self.sim.run_for(duration_ps)

    def host(self, name: str) -> Host:
        return self.hosts[name]

    def switch(self, name: str) -> MyrinetSwitch:
        return self.switches[name]

    def mapper(self) -> Host:
        """The host whose MCP address is highest (the network mapper)."""
        return max(
            self.hosts.values(), key=lambda h: h.interface.mcp_address.value
        )

    def interfaces(self) -> List[HostInterface]:
        return [host.interface for host in self.hosts.values()]

    def connection_for(self, host_name: str) -> Connection:
        """The attachment record of ``host_name``."""
        for connection in self.connections:
            if connection.host == host_name:
                return connection
        raise ConfigurationError(f"host {host_name!r} has no connection")


def build_paper_testbed(
    sim: Simulator,
    device: Optional[InPathDevice] = None,
    instrumented_host: str = "pc",
    rng: Optional[DeterministicRng] = None,
    host_kwargs: Optional[Dict] = None,
    switch_kwargs: Optional[Dict] = None,
    **network_kwargs,
) -> MyrinetNetwork:
    """The paper's Figure 10 test-bed: three nodes on one 8-port switch.

    ``device``, if given, is spliced into ``instrumented_host``'s link —
    the paper placed the fault injector between one host and the switch.
    Hosts: ``pc`` (the 200 MHz Pentium Pro Linux box) on port 0 and
    ``sparc1``/``sparc2`` (the 170 MHz UltraSPARCs) on ports 1 and 2;
    ``sparc2`` holds the highest MCP address and maps the network.
    """
    network = MyrinetNetwork(sim, rng=rng, **network_kwargs)
    network.add_switch("switch", num_ports=8, **(switch_kwargs or {}))
    for name in ("pc", "sparc1", "sparc2"):
        network.add_host(name, **(host_kwargs or {}))
    for port, name in enumerate(("pc", "sparc1", "sparc2")):
        spliced = device if name == instrumented_host else None
        network.connect(name, "switch", port, device=spliced)
    return network


# ---------------------------------------------------------------------------
# declarative fabrics — source-routed topologies beyond the paper's LAN
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FabricSpec:
    """A multi-switch source-routed fabric as frozen, picklable data.

    The wiring vocabulary matches :class:`MyrinetNetwork` one-to-one:

    * ``hosts`` — host names, in creation order (the *last* host holds
      the highest auto-assigned MCP address and becomes the mapper);
    * ``switches`` — ``(name, num_ports)`` pairs;
    * ``host_links`` — ``(host, switch, port)`` attachments, exactly one
      per host;
    * ``trunks`` — ``(switch_a, port_a, switch_b, port_b)`` inter-switch
      wires.

    A spec travels inside
    :class:`~repro.nftape.experiment.TestbedOptions` (and therefore
    inside campaign specs, over the spec codec, and across worker
    processes), so every field is an immutable tuple of scalars.
    :meth:`validate` enforces the wiring rules the mapper depends on;
    :func:`build_fabric` realizes the spec into a live network.
    """

    hosts: Tuple[str, ...]
    switches: Tuple[Tuple[str, int], ...]
    host_links: Tuple[Tuple[str, str, int], ...]
    trunks: Tuple[Tuple[str, int, str, int], ...] = ()

    def __post_init__(self) -> None:
        # Accept lists from hand-built specs; store canonical tuples.
        object.__setattr__(self, "hosts", tuple(self.hosts))
        object.__setattr__(
            self, "switches", tuple(tuple(s) for s in self.switches)
        )
        object.__setattr__(
            self, "host_links", tuple(tuple(l) for l in self.host_links)
        )
        object.__setattr__(
            self, "trunks", tuple(tuple(t) for t in self.trunks)
        )

    def validate(self) -> None:
        """Check the wiring invariants; raise :class:`ConfigurationError`.

        Rules: unique names, known references, in-range and unshared
        ports, exactly one link per host, a *connected and acyclic*
        switch graph (source-routed scouts assume a unique route between
        any two points — a trunk cycle would make routes ambiguous).
        """
        if not self.hosts:
            raise ConfigurationError("fabric has no hosts")
        if not self.switches:
            raise ConfigurationError("fabric has no switches")
        if len(set(self.hosts)) != len(self.hosts):
            raise ConfigurationError("duplicate host name in fabric")
        ports: Dict[str, int] = {}
        for name, num_ports in self.switches:
            if name in ports:
                raise ConfigurationError(
                    f"duplicate switch name {name!r} in fabric"
                )
            if name in self.hosts:
                raise ConfigurationError(
                    f"{name!r} is both a host and a switch"
                )
            if num_ports < 1:
                raise ConfigurationError(
                    f"switch {name!r} needs at least one port"
                )
            ports[name] = num_ports
        used: Dict[Tuple[str, int], str] = {}

        def _claim(switch: str, port: int, what: str) -> None:
            if switch not in ports:
                raise ConfigurationError(
                    f"{what} references unknown switch {switch!r}"
                )
            if not 0 <= port < ports[switch]:
                raise ConfigurationError(
                    f"{what} uses port {port} outside {switch!r}'s "
                    f"0..{ports[switch] - 1} range"
                )
            if (switch, port) in used:
                raise ConfigurationError(
                    f"{what} reuses {switch!r} port {port} "
                    f"(already wired to {used[(switch, port)]})"
                )
            used[(switch, port)] = what

        linked: Dict[str, int] = {}
        for host, switch, port in self.host_links:
            if host not in self.hosts:
                raise ConfigurationError(
                    f"link references unknown host {host!r}"
                )
            linked[host] = linked.get(host, 0) + 1
            _claim(switch, port, f"host {host!r}")
        for host in self.hosts:
            if linked.get(host, 0) != 1:
                raise ConfigurationError(
                    f"host {host!r} must have exactly one switch link, "
                    f"has {linked.get(host, 0)}"
                )
        # Union-find over the switch graph: a trunk joining two already-
        # connected switches closes a cycle (ambiguous source routes).
        parent = {name: name for name in ports}

        def _find(node: str) -> str:
            while parent[node] != node:
                parent[node] = parent[parent[node]]
                node = parent[node]
            return node

        for index, (sw_a, port_a, sw_b, port_b) in enumerate(self.trunks):
            _claim(sw_a, port_a, f"trunk {index}")
            _claim(sw_b, port_b, f"trunk {index}")
            root_a, root_b = _find(sw_a), _find(sw_b)
            if root_a == root_b:
                raise ConfigurationError(
                    f"trunk {index} ({sw_a!r}<->{sw_b!r}) closes a "
                    "switch cycle; source-routed fabrics must be acyclic"
                )
            parent[root_a] = root_b
        roots = {_find(name) for name in ports}
        if len(roots) != 1:
            raise ConfigurationError(
                f"fabric is split into {len(roots)} disconnected switch "
                "islands; add trunks until one fabric remains"
            )

    def oracle(self) -> TopologyOracle:
        """The wiring as a :class:`TopologyOracle` (no simulator needed).

        Offline analyzers (``repro.insight`` blast radius) use this to
        reason about routes of fabric campaigns the same way
        :func:`~repro.myrinet.mapping.paper_oracle` covers the Figure 10
        test bed.
        """
        self.validate()
        oracle = TopologyOracle()
        for name, _num_ports in self.switches:
            oracle.add_switch(name)
        for host in self.hosts:
            oracle.add_host(host)
        for host, switch, port in self.host_links:
            oracle.connect_host(host, switch, port)
        for sw_a, port_a, sw_b, port_b in self.trunks:
            oracle.connect_switches(sw_a, port_a, sw_b, port_b)
        return oracle


def star_fabric(hosts: int, ports: int = 16,
                host_prefix: str = "h") -> FabricSpec:
    """N hosts on one switch — the paper's shape at arbitrary width."""
    names = tuple(f"{host_prefix}{i}" for i in range(hosts))
    return FabricSpec(
        hosts=names,
        switches=(("sw0", max(ports, hosts)),),
        host_links=tuple(
            (name, "sw0", port) for port, name in enumerate(names)
        ),
    )


def line_fabric(switches: int, hosts_per_switch: int,
                ports: int = 8) -> FabricSpec:
    """A chain of switches, each carrying ``hosts_per_switch`` hosts.

    Trunks use the two highest ports of each switch, so every flow
    between non-adjacent segments crosses every intermediate trunk —
    the congestion-collapse shape.
    """
    needed = hosts_per_switch + 2
    num_ports = max(ports, needed)
    hosts: List[str] = []
    host_links: List[Tuple[str, str, int]] = []
    trunks: List[Tuple[str, int, str, int]] = []
    for s in range(switches):
        for h in range(hosts_per_switch):
            name = f"h{s}x{h}"
            hosts.append(name)
            host_links.append((name, f"sw{s}", h))
        if s + 1 < switches:
            trunks.append((f"sw{s}", num_ports - 1,
                           f"sw{s + 1}", num_ports - 2))
    return FabricSpec(
        hosts=tuple(hosts),
        switches=tuple((f"sw{s}", num_ports) for s in range(switches)),
        host_links=tuple(host_links),
        trunks=tuple(trunks),
    )


def tree_fabric(leaves: int, hosts_per_leaf: int,
                ports: int = 8) -> FabricSpec:
    """A spine switch fanning out to ``leaves`` leaf switches."""
    num_ports = max(ports, hosts_per_leaf + 1, leaves)
    hosts: List[str] = []
    host_links: List[Tuple[str, str, int]] = []
    trunks: List[Tuple[str, int, str, int]] = []
    for s in range(leaves):
        for h in range(hosts_per_leaf):
            name = f"h{s}x{h}"
            hosts.append(name)
            host_links.append((name, f"leaf{s}", h))
        trunks.append(("spine", s, f"leaf{s}", num_ports - 1))
    switches = (("spine", num_ports),) + tuple(
        (f"leaf{s}", num_ports) for s in range(leaves)
    )
    return FabricSpec(
        hosts=tuple(hosts),
        switches=switches,
        host_links=tuple(host_links),
        trunks=tuple(trunks),
    )


def build_fabric(
    sim: Simulator,
    fabric: FabricSpec,
    device: Optional[InPathDevice] = None,
    instrumented_host: Optional[str] = None,
    rng: Optional[DeterministicRng] = None,
    host_kwargs: Optional[Dict] = None,
    switch_kwargs: Optional[Dict] = None,
    **network_kwargs,
) -> MyrinetNetwork:
    """Realize a :class:`FabricSpec` into a live :class:`MyrinetNetwork`.

    ``device``, if given, is spliced into ``instrumented_host``'s link
    (default: the fabric's first host) — the same placement contract as
    :func:`build_paper_testbed`, so experiments and campaigns treat
    paper and fabric test beds identically.
    """
    fabric.validate()
    if instrumented_host is None:
        instrumented_host = fabric.hosts[0]
    if instrumented_host not in fabric.hosts:
        raise ConfigurationError(
            f"instrumented host {instrumented_host!r} is not part of "
            f"the fabric (hosts: {', '.join(fabric.hosts)})"
        )
    network = MyrinetNetwork(sim, rng=rng, **network_kwargs)
    for name, num_ports in fabric.switches:
        network.add_switch(name, num_ports=num_ports,
                           **(switch_kwargs or {}))
    for name in fabric.hosts:
        network.add_host(name, **(host_kwargs or {}))
    for host, switch, port in fabric.host_links:
        spliced = device if host == instrumented_host else None
        network.connect(host, switch, port, device=spliced)
    for sw_a, port_a, sw_b, port_b in fabric.trunks:
        network.connect_switches(sw_a, port_a, sw_b, port_b)
    return network
