"""Topology builder: assembles hosts, switches, links, and MCPs.

:class:`MyrinetNetwork` is the high-level entry point for constructing a
simulated Myrinet LAN.  It wires interfaces to switches, keeps the
:class:`~repro.myrinet.mapping.TopologyOracle` consistent with the
physical wiring, and supports splicing an in-path device (the fault
injector) into any host-to-switch connection — in which case both link
segments carry flow control as real symbols so the device can observe
and corrupt them.

:func:`build_paper_testbed` recreates the paper's Figure 10 network: one
Linux PC and two UltraSPARC workstations on an 8-port Myrinet switch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Protocol

from repro.errors import ConfigurationError
from repro.myrinet.addresses import MacAddress, McpAddress
from repro.myrinet.interface import HostInterface
from repro.myrinet.link import DEFAULT_CHAR_PERIOD_PS, DEFAULT_PROPAGATION_PS, Link
from repro.myrinet.mapping import TopologyOracle
from repro.myrinet.mcp import McpController
from repro.myrinet.switch import MyrinetSwitch
from repro.sim.kernel import Simulator
from repro.sim.rng import DeterministicRng
from repro.sim.timebase import MS

#: Locally-administered MAC prefix used for auto-assigned addresses.
_MAC_BASE = 0x02_00_5E_00_00_00
#: Base for auto-assigned MCP addresses.
_MCP_BASE = 0x0000_1000_0000_0000


class InPathDevice(Protocol):
    """Anything that can be spliced into a host-switch connection."""

    def attach_left(self, link: Link, side: str) -> None:
        """Attach the segment facing the host."""

    def attach_right(self, link: Link, side: str) -> None:
        """Attach the segment facing the switch."""


@dataclass
class Host:
    """A host: its interface plus the MCP running on it."""

    name: str
    interface: HostInterface
    mcp: McpController


@dataclass
class Connection:
    """Record of one host-to-switch attachment."""

    host: str
    switch: str
    port: int
    links: List[Link] = field(default_factory=list)
    device: Optional[InPathDevice] = None


class MyrinetNetwork:
    """Builder and container for a simulated Myrinet LAN."""

    def __init__(
        self,
        sim: Simulator,
        char_period_ps: int = DEFAULT_CHAR_PERIOD_PS,
        propagation_ps: int = DEFAULT_PROPAGATION_PS,
        flow_transport: str = "direct",
        rng: Optional[DeterministicRng] = None,
        map_interval_ps: Optional[int] = None,
        mcp_reply_timeout_ps: Optional[int] = None,
        mcp_initial_delay_ps: Optional[int] = None,
    ) -> None:
        self.sim = sim
        self.char_period_ps = char_period_ps
        self.propagation_ps = propagation_ps
        self.flow_transport = flow_transport
        self.rng = rng or DeterministicRng(0)
        self._mcp_kwargs: Dict[str, int] = {}
        if map_interval_ps is not None:
            self._mcp_kwargs["map_interval_ps"] = map_interval_ps
        if mcp_reply_timeout_ps is not None:
            self._mcp_kwargs["reply_timeout_ps"] = mcp_reply_timeout_ps
        if mcp_initial_delay_ps is not None:
            self._mcp_kwargs["initial_delay_ps"] = mcp_initial_delay_ps

        self.oracle = TopologyOracle()
        self.hosts: Dict[str, Host] = {}
        self.switches: Dict[str, MyrinetSwitch] = {}
        self.connections: List[Connection] = []
        self._next_host_index = 0
        self._started = False

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def add_switch(self, name: str, num_ports: int = 8,
                   **kwargs) -> MyrinetSwitch:
        """Create a switch and register it with the topology oracle."""
        if name in self.switches:
            raise ConfigurationError(f"duplicate switch name {name!r}")
        switch = MyrinetSwitch(self.sim, name=name, num_ports=num_ports,
                               **kwargs)
        self.switches[name] = switch
        self.oracle.add_switch(name)
        return switch

    def add_host(
        self,
        name: str,
        mac: Optional[MacAddress] = None,
        mcp_address: Optional[McpAddress] = None,
        **interface_kwargs,
    ) -> Host:
        """Create a host (interface + MCP).

        Addresses are auto-assigned in creation order unless given, so
        the *last* host added holds the highest MCP address and becomes
        the mapper.
        """
        if name in self.hosts:
            raise ConfigurationError(f"duplicate host name {name!r}")
        index = self._next_host_index
        self._next_host_index += 1
        if mac is None:
            mac = MacAddress(_MAC_BASE + index + 1)
        if mcp_address is None:
            mcp_address = McpAddress(_MCP_BASE + index + 1)
        interface = HostInterface(
            self.sim, name=name, mac=mac, mcp_address=mcp_address,
            **interface_kwargs,
        )
        mcp = McpController(
            self.sim,
            interface,
            self.oracle,
            position=name,
            rng=self.rng.fork(f"mcp:{name}"),
            **self._mcp_kwargs,
        )
        host = Host(name=name, interface=interface, mcp=mcp)
        self.hosts[name] = host
        self.oracle.add_host(name)
        return host

    def connect(
        self,
        host_name: str,
        switch_name: str,
        port: int,
        device: Optional[InPathDevice] = None,
        flow_transport: Optional[str] = None,
    ) -> Connection:
        """Wire a host to a switch port, optionally through an in-path device.

        With a device, two link segments are created (host—device and
        device—switch) and flow control is forced onto the ``symbols``
        transport so STOP/GO traverse — and can be corrupted by — the
        device.
        """
        host = self.hosts[host_name]
        switch = self.switches[switch_name]
        connection = Connection(host=host_name, switch=switch_name,
                                port=port, device=device)
        if device is None:
            transport = flow_transport or self.flow_transport
            link = self._new_link(f"{host_name}<->{switch_name}.p{port}")
            host.interface.attach_link(link, "a", flow_transport=transport)
            switch.attach_link(port, link, "b", flow_transport=transport)
            connection.links.append(link)
        else:
            left = self._new_link(f"{host_name}<->dev")
            right = self._new_link(f"dev<->{switch_name}.p{port}")
            host.interface.attach_link(left, "a", flow_transport="symbols")
            device.attach_left(left, "b")
            device.attach_right(right, "a")
            switch.attach_link(port, right, "b", flow_transport="symbols")
            connection.links.extend([left, right])
        self.oracle.connect_host(host_name, switch_name, port)
        self.connections.append(connection)
        return connection

    def connect_switches(
        self,
        switch_a: str,
        port_a: int,
        switch_b: str,
        port_b: int,
        device: Optional[InPathDevice] = None,
        flow_transport: Optional[str] = None,
    ) -> List[Link]:
        """Wire two switches together, optionally through an in-path device.

        Splicing the injector into an inter-switch trunk monitors (and
        can corrupt) every flow crossing it — "allowing previously
        inaccessible portions of the system to be monitored" (paper §1).
        Returns the created link segment(s).
        """
        if device is None:
            transport = flow_transport or self.flow_transport
            link = self._new_link(
                f"{switch_a}.p{port_a}<->{switch_b}.p{port_b}"
            )
            self.switches[switch_a].attach_link(port_a, link, "a",
                                                flow_transport=transport)
            self.switches[switch_b].attach_link(port_b, link, "b",
                                                flow_transport=transport)
            self.oracle.connect_switches(switch_a, port_a, switch_b, port_b)
            return [link]
        left = self._new_link(f"{switch_a}.p{port_a}<->dev")
        right = self._new_link(f"dev<->{switch_b}.p{port_b}")
        self.switches[switch_a].attach_link(port_a, left, "a",
                                            flow_transport="symbols")
        device.attach_left(left, "b")
        device.attach_right(right, "a")
        self.switches[switch_b].attach_link(port_b, right, "b",
                                            flow_transport="symbols")
        self.oracle.connect_switches(switch_a, port_a, switch_b, port_b)
        return [left, right]

    def _new_link(self, name: str) -> Link:
        return Link(
            self.sim,
            name,
            char_period_ps=self.char_period_ps,
            propagation_ps=self.propagation_ps,
        )

    # ------------------------------------------------------------------
    # operation
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Start every MCP.  Idempotent."""
        if self._started:
            return
        self._started = True
        for host in self.hosts.values():
            host.mcp.start()

    def settle(self, duration_ps: int = 5 * MS) -> None:
        """Start the network and run until routing tables are in place.

        The default covers the MCP initial delay, its stagger, one full
        scout round, and the routes distribution for LAN-scale networks.
        """
        self.start()
        self.sim.run_for(duration_ps)

    def host(self, name: str) -> Host:
        return self.hosts[name]

    def switch(self, name: str) -> MyrinetSwitch:
        return self.switches[name]

    def mapper(self) -> Host:
        """The host whose MCP address is highest (the network mapper)."""
        return max(
            self.hosts.values(), key=lambda h: h.interface.mcp_address.value
        )

    def interfaces(self) -> List[HostInterface]:
        return [host.interface for host in self.hosts.values()]

    def connection_for(self, host_name: str) -> Connection:
        """The attachment record of ``host_name``."""
        for connection in self.connections:
            if connection.host == host_name:
                return connection
        raise ConfigurationError(f"host {host_name!r} has no connection")


def build_paper_testbed(
    sim: Simulator,
    device: Optional[InPathDevice] = None,
    instrumented_host: str = "pc",
    rng: Optional[DeterministicRng] = None,
    host_kwargs: Optional[Dict] = None,
    switch_kwargs: Optional[Dict] = None,
    **network_kwargs,
) -> MyrinetNetwork:
    """The paper's Figure 10 test-bed: three nodes on one 8-port switch.

    ``device``, if given, is spliced into ``instrumented_host``'s link —
    the paper placed the fault injector between one host and the switch.
    Hosts: ``pc`` (the 200 MHz Pentium Pro Linux box) on port 0 and
    ``sparc1``/``sparc2`` (the 170 MHz UltraSPARCs) on ports 1 and 2;
    ``sparc2`` holds the highest MCP address and maps the network.
    """
    network = MyrinetNetwork(sim, rng=rng, **network_kwargs)
    network.add_switch("switch", num_ports=8, **(switch_kwargs or {}))
    for name in ("pc", "sparc1", "sparc2"):
        network.add_host(name, **(host_kwargs or {}))
    for port, name in enumerate(("pc", "sparc1", "sparc2")):
        spliced = device if name == instrumented_host else None
        network.connect(name, "switch", port, device=spliced)
    return network
