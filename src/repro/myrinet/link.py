"""Point-to-point Myrinet links.

A :class:`Link` is full-duplex: two independent :class:`Channel` objects,
one per direction.  Channels carry *bursts* (lists of symbols).  A burst
is serialized at the channel's character rate and delivered to the far
endpoint after the propagation delay; back-to-back bursts queue behind
each other, so the wire is never overdriven.

This chunked transport is the performance substitution documented in
DESIGN.md: symbol pacing, occupancy, and flow-control timing are still
resolved at character-period granularity, but the scheduler sees one
event per burst instead of one per symbol.
"""

from __future__ import annotations

from typing import List, Optional, Protocol, Sequence

from repro.errors import ConfigurationError
from repro.fastpath.buffer import SymbolBuffer
from repro.sim.kernel import Simulator
from repro.sim.timebase import from_ns
from repro.myrinet.symbols import Symbol

#: Default character period: 12.5 ns (80 MB/s, the paper's campaign rate).
DEFAULT_CHAR_PERIOD_PS = 12_500

#: Default one-way propagation delay: ~5 ns/m of cable, 3 m default.
DEFAULT_PROPAGATION_PS = from_ns(15.0)


class SymbolSink(Protocol):
    """Anything that can terminate a channel (switch port, host, injector)."""

    def on_burst(self, burst: List[Symbol], channel: "Channel") -> None:
        """Handle a burst of symbols delivered by ``channel``."""


class Channel:
    """One direction of a link: a serializing, delaying symbol pipe."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        char_period_ps: int = DEFAULT_CHAR_PERIOD_PS,
        propagation_ps: int = DEFAULT_PROPAGATION_PS,
    ) -> None:
        if char_period_ps <= 0:
            raise ConfigurationError("character period must be positive")
        if propagation_ps < 0:
            raise ConfigurationError("propagation delay cannot be negative")
        self._sim = sim
        self.name = name
        self.char_period_ps = char_period_ps
        self.propagation_ps = propagation_ps
        self._sink: Optional[SymbolSink] = None
        self._busy_until = 0
        self.symbols_carried = 0
        self.bursts_carried = 0

    def connect(self, sink: SymbolSink) -> None:
        """Attach the receiving endpoint."""
        self._sink = sink

    @property
    def sink(self) -> Optional[SymbolSink]:
        return self._sink

    @property
    def busy_until(self) -> int:
        """Simulation time at which the transmit side becomes free."""
        return self._busy_until

    def free_at(self) -> int:
        """Earliest time a new burst could begin transmitting."""
        return max(self._sim.now, self._busy_until)

    def send(self, burst: Sequence[Symbol]) -> int:
        """Queue a burst for transmission.

        The burst begins serializing when the wire frees up, takes one
        character period per symbol, and arrives in full after the
        propagation delay.  Returns the delivery completion time.
        """
        if self._sink is None:
            raise ConfigurationError(f"channel {self.name} has no sink connected")
        if not burst:
            return self._sim.now
        if type(burst) is SymbolBuffer:
            # Preserve the buffer's cached value/flag planes across the
            # defensive copy so the receiving device's fast path never
            # rebuilds them (the planes are immutable bytes — sharing
            # them is safe).
            symbols: List[Symbol] = SymbolBuffer.copy_from(burst)
        else:
            symbols = list(burst)
        start = self.free_at()
        end_of_serialization = start + len(symbols) * self.char_period_ps
        self._busy_until = end_of_serialization
        delivery = end_of_serialization + self.propagation_ps
        sink = self._sink
        self._sim.schedule_at(
            delivery,
            lambda: sink.on_burst(symbols, self),
            label=f"deliver:{self.name}",
        )
        self.symbols_carried += len(symbols)
        self.bursts_carried += 1
        return delivery

    def burst_duration(self, length: int) -> int:
        """Serialization time of a burst of ``length`` symbols."""
        return length * self.char_period_ps


class Link:
    """A full-duplex point-to-point link between endpoints A and B."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        char_period_ps: int = DEFAULT_CHAR_PERIOD_PS,
        propagation_ps: int = DEFAULT_PROPAGATION_PS,
    ) -> None:
        self.sim = sim
        self.name = name
        self.a_to_b = Channel(sim, f"{name}:a->b", char_period_ps, propagation_ps)
        self.b_to_a = Channel(sim, f"{name}:b->a", char_period_ps, propagation_ps)
        self._tx_states: dict = {"a": None, "b": None}

    def attach_a(self, sink: SymbolSink) -> Channel:
        """Attach endpoint A; returns the channel A transmits on."""
        self.b_to_a.connect(sink)
        return self.a_to_b

    def attach_b(self, sink: SymbolSink) -> Channel:
        """Attach endpoint B; returns the channel B transmits on."""
        self.a_to_b.connect(sink)
        return self.b_to_a

    def register_tx_state(self, side: str, state: object) -> None:
        """Record an endpoint's transmit flow state.

        Used by the ``direct`` flow-control transport: the opposite
        endpoint resolves this state at use time to assert backpressure
        without sending symbols (see :mod:`repro.myrinet.flow`).
        """
        if side not in self._tx_states:
            raise ConfigurationError(f"link side must be 'a' or 'b', got {side!r}")
        self._tx_states[side] = state

    def peer_tx_state(self, side: str) -> object:
        """The flow state of the endpoint *opposite* to ``side``."""
        if side not in self._tx_states:
            raise ConfigurationError(f"link side must be 'a' or 'b', got {side!r}")
        return self._tx_states["b" if side == "a" else "a"]

    @property
    def char_period_ps(self) -> int:
        return self.a_to_b.char_period_ps
