"""Myrinet addressing.

Two address spaces appear in the paper:

* 48-bit Ethernet-style **physical addresses** identify Myrinet host
  ports and appear in data-packet headers (paper §4.3.3);
* 64-bit **MCP addresses** identify Myrinet Control Program instances;
  the MCP with the highest address maps the network (paper §4.1).
"""

from __future__ import annotations

from typing import Iterable


class _IntAddress:
    """An immutable fixed-width integer address."""

    __slots__ = ("value",)

    BITS = 0
    SEPARATOR = ":"

    def __init__(self, value: int) -> None:
        limit = 1 << self.BITS
        if not 0 <= value < limit:
            raise ValueError(
                f"{type(self).__name__} value {value:#x} outside "
                f"{self.BITS}-bit range"
            )
        object.__setattr__(self, "value", value)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError(f"{type(self).__name__} instances are immutable")

    def __eq__(self, other: object) -> bool:
        if isinstance(other, type(self)):
            return self.value == other.value
        return NotImplemented

    def __lt__(self, other: "_IntAddress") -> bool:
        if isinstance(other, type(self)):
            return self.value < other.value
        return NotImplemented

    def __le__(self, other: "_IntAddress") -> bool:
        if isinstance(other, type(self)):
            return self.value <= other.value
        return NotImplemented

    def __gt__(self, other: "_IntAddress") -> bool:
        if isinstance(other, type(self)):
            return self.value > other.value
        return NotImplemented

    def __ge__(self, other: "_IntAddress") -> bool:
        if isinstance(other, type(self)):
            return self.value >= other.value
        return NotImplemented

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.value))

    def __repr__(self) -> str:
        return f"{type(self).__name__}({str(self)!r})"

    def __str__(self) -> str:
        width = self.BITS // 8
        raw = self.value.to_bytes(width, "big")
        return self.SEPARATOR.join(f"{b:02x}" for b in raw)

    def to_bytes(self) -> bytes:
        """Big-endian wire encoding."""
        return self.value.to_bytes(self.BITS // 8, "big")

    @classmethod
    def from_bytes(cls, raw: Iterable[int]) -> "_IntAddress":
        """Decode from big-endian bytes (must be exactly BITS/8 long)."""
        data = bytes(raw)
        if len(data) != cls.BITS // 8:
            raise ValueError(
                f"{cls.__name__} needs {cls.BITS // 8} bytes, got {len(data)}"
            )
        return cls(int.from_bytes(data, "big"))

    @classmethod
    def parse(cls, text: str) -> "_IntAddress":
        """Parse the colon-separated hex form produced by ``str()``."""
        parts = text.split(cls.SEPARATOR)
        if len(parts) != cls.BITS // 8:
            raise ValueError(f"bad {cls.__name__} text: {text!r}")
        return cls(int("".join(parts), 16))


class MacAddress(_IntAddress):
    """48-bit Ethernet-style physical address of a Myrinet port."""

    BITS = 48

    @classmethod
    def broadcast(cls) -> "MacAddress":
        """The all-ones broadcast address."""
        return cls((1 << 48) - 1)


class McpAddress(_IntAddress):
    """64-bit address of a Myrinet Control Program instance."""

    BITS = 64
