"""Myrinet packet structure (paper Figure 6).

A Myrinet packet consists of::

    | arbitrarily long source route | 4-byte type | payload | CRC-8 |

* Every **route byte** has its most-significant bit set (MSB=1 marks "this
  hop is a switch"); a switch consumes the leading byte and uses the low
  bits to select an output port, then recomputes the trailing CRC-8.
  When a packet reaches a host interface the route must be exhausted, so
  the first byte the host sees (the first type byte, 0x00) has MSB=0.
  A host receiving a leading byte with MSB=1 consumes the packet and
  handles it as an error (paper §4.3.2, "source route corruption").
* The **type field** is 4 bytes; its two significant bytes carry the
  values the paper's experiments corrupt: 0x0004 (data) and 0x0005
  (mapping).
* **CRC-8** covers everything from the current head of the packet to the
  end of the payload and is recomputed at every hop as route bytes are
  stripped (paper §4.1).

.. note::
   Real Myrinet route bytes are *relative* port deltas; we use absolute
   output-port numbers (documented substitution in DESIGN.md).  The MSB
   semantics the experiments depend on are identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

from repro.errors import CrcError, ProtocolError, RoutingError
from repro.myrinet.crc8 import crc8

#: Width of the packet type field on the wire.
TYPE_FIELD_LEN = 4

#: Packet type carried by ordinary data packets (paper §4.3.2).
PACKET_TYPE_DATA = 0x0004
#: Packet type carried by hardware-generated mapping packets (paper §4.3.2).
PACKET_TYPE_MAPPING = 0x0005

#: Mask/flag for the MSB of a route byte.
ROUTE_MSB = 0x80
#: Low bits of a route byte carry the absolute output port (up to 64 ports).
ROUTE_PORT_MASK = 0x3F


def route_byte(port: int) -> int:
    """Encode an output-port selection as a route byte (MSB set)."""
    if not 0 <= port <= ROUTE_PORT_MASK:
        raise RoutingError(f"switch port {port} outside route-byte range")
    return ROUTE_MSB | port


def route_port(byte: int) -> int:
    """Decode the output port from a route byte."""
    return byte & ROUTE_PORT_MASK


def is_route_byte(byte: int) -> bool:
    """True if a leading packet byte is a (remaining) route byte."""
    return bool(byte & ROUTE_MSB)


@dataclass
class MyrinetPacket:
    """A parsed (or to-be-sent) Myrinet packet.

    ``route`` holds the *remaining* route as raw route bytes; it shrinks
    as the packet crosses switches.
    """

    route: List[int] = field(default_factory=list)
    packet_type: int = PACKET_TYPE_DATA
    payload: bytes = b""

    def __post_init__(self) -> None:
        if not 0 <= self.packet_type < (1 << (8 * TYPE_FIELD_LEN)):
            raise ProtocolError(f"packet type {self.packet_type:#x} too wide")
        for byte in self.route:
            if not 0 <= byte <= 0xFF:
                raise ProtocolError(f"route byte {byte!r} out of range")

    @classmethod
    def for_route(
        cls,
        ports: Sequence[int],
        packet_type: int,
        payload: bytes,
    ) -> "MyrinetPacket":
        """Build a packet whose route visits switch output ``ports`` in order."""
        return cls(
            route=[route_byte(p) for p in ports],
            packet_type=packet_type,
            payload=bytes(payload),
        )

    def header_bytes(self) -> bytes:
        """Route bytes followed by the 4-byte type field."""
        return bytes(self.route) + self.packet_type.to_bytes(TYPE_FIELD_LEN, "big")

    def to_bytes(self) -> bytes:
        """Wire encoding: header, payload, and the trailing CRC-8."""
        body = self.header_bytes() + self.payload
        return body + bytes([crc8(body)])

    @classmethod
    def from_bytes(cls, raw: Sequence[int], route_len: int = 0) -> "MyrinetPacket":
        """Parse a frame as seen on a link.

        ``route_len`` says how many route bytes remain at the head of the
        frame (a host parses with 0; test code inspecting mid-network
        frames passes the remaining hop count).  Raises :class:`CrcError`
        if the trailing CRC-8 does not verify, :class:`ProtocolError` on
        truncated frames.
        """
        data = bytes(raw)
        minimum = route_len + TYPE_FIELD_LEN + 1
        if len(data) < minimum:
            raise ProtocolError(
                f"frame of {len(data)} bytes shorter than minimum {minimum}"
            )
        if crc8(data) != 0:
            raise CrcError(
                f"CRC-8 mismatch on {len(data)}-byte frame "
                f"(residue {crc8(data):#04x})"
            )
        route = list(data[:route_len])
        type_end = route_len + TYPE_FIELD_LEN
        packet_type = int.from_bytes(data[route_len:type_end], "big")
        payload = data[type_end:-1]
        return cls(route=route, packet_type=packet_type, payload=payload)

    def strip_hop(self) -> int:
        """Consume the leading route byte, returning the output port.

        Models a switch hop; the caller re-serializes (which recomputes
        the CRC over the shortened packet).
        """
        if not self.route:
            raise RoutingError("no route bytes left to strip")
        return route_port(self.route.pop(0))

    @property
    def wire_length(self) -> int:
        """Total length on the wire including CRC byte."""
        return len(self.route) + TYPE_FIELD_LEN + len(self.payload) + 1

    def __repr__(self) -> str:
        route = ",".join(f"{b:#04x}" for b in self.route)
        return (
            f"MyrinetPacket(route=[{route}], type={self.packet_type:#06x}, "
            f"payload={len(self.payload)}B)"
        )
