"""repro — reproduction of "An Adaptive Architecture for Monitoring and
Failure Analysis of High-Speed Networks" (Floering, Brothers, Kalbarczyk,
Iyer; DSN 2002).

The package simulates the paper's FPGA-based in-path fault injector and
every substrate it depends on: a symbol-level Myrinet LAN, a Fibre Channel
medium, host protocol stacks, and an NFTAPE-style campaign framework.

Quickstart::

    from repro import Simulator, build_paper_testbed

    sim = Simulator()
    network = build_paper_testbed(sim)
    network.settle()

See README.md for the full tour and DESIGN.md for the system inventory.
"""

from repro.sim import DeterministicRng, Simulator
from repro.core import FaultInjectorDevice, InjectorSession
from repro.myrinet import (
    HostInterface,
    MyrinetNetwork,
    MyrinetPacket,
    MyrinetSwitch,
    build_paper_testbed,
)

__version__ = "1.0.0"

__all__ = [
    "Simulator",
    "DeterministicRng",
    "FaultInjectorDevice",
    "InjectorSession",
    "HostInterface",
    "MyrinetNetwork",
    "MyrinetPacket",
    "MyrinetSwitch",
    "build_paper_testbed",
    "__version__",
]
