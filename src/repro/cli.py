"""Command-line interface: run the paper's experiments from a shell.

::

    python -m repro list
    python -m repro run table2 sec434
    python -m repro run all --scale 0.5 --out report.md
    python -m repro run sec434 --artifacts-dir out/
    python -m repro campaign --experiments 8 --workers 4 --artifacts-dir out/
    python -m repro campaign --experiments 8 --fabric 4 --artifacts-dir out/
    python -m repro campaign --resume --artifacts-dir out/
    python -m repro store query --artifacts-dir out/
    python -m repro store export --artifacts-dir out/ 'cli control-symbol campaign'
    python -m repro campaign --follow | jq .kind
    python -m repro campaign --scenario dual-injector --artifacts-dir out/
    python -m repro scenario list
    python -m repro scenario compile fabric-congestion --json
    python -m repro scenario run paper-sec35 --artifacts-dir out/
    python -m repro serve --root srv --port 8321
    python -m repro capture decode --input out/capture
    python -m repro capture summarize --input out/capture
    python -m repro insight analyze --input out --store incidents.db
    python -m repro insight similar --store incidents.db --label run-a
    python -m repro metrics --input out/metrics.json --format summary
    python -m repro synthesis
    python -m repro lint          # simlint static analysis (CI gate)
    python -m repro sanitize      # identical-seed determinism replay

Each experiment regenerates one of the paper's tables/figures (the same
code paths the benchmarks drive) and prints it; ``--out`` additionally
collects everything into a text or markdown report via
:class:`repro.nftape.report.CampaignReport`.

Artifacts land under one umbrella: ``--artifacts-dir DIR`` writes
``DIR/telemetry/`` (metrics.json, spans.jsonl, trace.json) and
``DIR/capture/`` (capture.rcap); sharded campaigns additionally keep
``DIR/journal.jsonl`` and per-experiment shards under
``DIR/experiments/``.  The PR-4-era ``--telemetry-dir``/``--capture-dir``
aliases are retired: passing either now fails with a ``DeprecationWarning``
naming the replacement (see docs/runtime.md).
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional, Tuple

from repro.nftape.report import CampaignReport
from repro.nftape.results import ResultTable
from repro.sim.timebase import MS

#: Registry: name -> (description, runner).  Runners take a scale factor
#: and return (tables, notes).
Runner = Callable[[float], Tuple[List[ResultTable], List[str]]]


def _scaled(base_ms: float, scale: float) -> int:
    return max(1 * MS, int(base_ms * scale * MS))


def _run_table1(scale: float):
    from repro.hw.synthesis import format_report, synthesis_report
    table = ResultTable("Table 1 — synthesis (see text form below)")
    return [table], [format_report(synthesis_report())]


def _run_table2(scale: float):
    from repro.nftape.paper import table2_latency
    exchanges = max(100, int(600 * scale))
    return [table2_latency(exchanges=exchanges, experiments=5)], []


def _run_sec35(scale: float):
    from repro.nftape.paper import sec35_passthrough
    return [sec35_passthrough(duration_ps=_scaled(10, scale))], []


def _run_table4(scale: float):
    from repro.nftape.paper import table4_control_symbols
    return [table4_control_symbols(duration_ps=_scaled(12, scale))], []


def _run_sec431(scale: float):
    from repro.nftape.paper import sec431_throughput
    return [sec431_throughput(duration_ps=_scaled(15, scale))], []


def _run_sec432(scale: float):
    from repro.nftape.paper import sec432_packet_types
    return [sec432_packet_types()], []


def _run_sec433(scale: float):
    from repro.nftape.paper import sec433_addresses
    table, artifacts = sec433_addresses()
    notes = (
        ["Figure 11 — before:"] + artifacts["fig11_before"]
        + ["Figure 11 — after (corrupted rounds):"] + artifacts["fig11_after"]
    )
    return [table], notes


def _run_sec434(scale: float):
    from repro.nftape.paper import sec434_udp_checksum
    return [sec434_udp_checksum()], []


EXPERIMENTS: Dict[str, Tuple[str, Runner]] = {
    "table1": ("FPGA synthesis results", _run_table1),
    "table2": ("added latency of the device in the data path", _run_table2),
    "sec35": ("pass-through transparency", _run_sec35),
    "table4": ("control-symbol corruption campaign (slow)", _run_table4),
    "sec431": ("throughput under flow-control faults (slow)", _run_sec431),
    "sec432": ("packet type and source route corruption", _run_sec432),
    "sec433": ("physical address corruption + Figure 11", _run_sec433),
    "sec434": ("UDP checksum corruption", _run_sec434),
}


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for ``python -m repro``."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'An Adaptive Architecture for Monitoring and "
            "Failure Analysis of High-Speed Networks' (DSN 2002): run the "
            "paper's experiments on the simulated test bed."
        ),
    )
    sub = parser.add_subparsers(dest="command")

    sub.add_parser("list", help="list the available experiments")

    run = sub.add_parser("run", help="run one or more experiments")
    run.add_argument("experiments", nargs="+",
                     help="experiment names, or 'all'")
    run.add_argument("--scale", type=float, default=1.0,
                     help="duration scale factor (default 1.0)")
    run.add_argument("--pipeline", choices=("scalar", "fast"), default=None,
                     help="data-path implementation: the cycle-stepped "
                          "reference ('scalar', default) or the batched "
                          "symbol-stream engine ('fast'); see "
                          "docs/fastpath.md")
    run.add_argument("--out", default=None,
                     help="write a combined report (.md or .txt)")
    run.add_argument("--artifacts-dir", default=None,
                     help="write all artifacts under this directory "
                          "(DIR/telemetry/ and DIR/capture/)")
    run.add_argument("--telemetry-dir", default=None,
                     help=argparse.SUPPRESS)
    run.add_argument("--capture-dir", default=None,
                     help=argparse.SUPPRESS)

    campaign = sub.add_parser(
        "campaign",
        help="run a control-symbol fault-injection campaign (telemetry demo)",
    )
    campaign.add_argument("--experiments", type=int, default=4,
                          help="number of experiments (default 4)")
    campaign.add_argument("--duration-ms", type=float, default=3.0,
                          help="per-experiment duration in simulated ms")
    campaign.add_argument("--seed", type=int, default=0,
                          help="base campaign seed (default 0); per-"
                               "experiment seeds are derived from it")
    campaign.add_argument("--pipeline", choices=("scalar", "fast"),
                          default=None,
                          help="data-path implementation (scalar|fast); "
                               "exported as REPRO_PIPELINE so pooled "
                               "workers inherit it")
    campaign.add_argument("--workers", type=int, default=1,
                          help="worker processes; >1 shards experiments "
                               "across a pool with bit-identical results "
                               "(default 1 = in-process serial)")
    campaign.add_argument("--fabric", type=int, default=0, metavar="N",
                          help="run on the distributed campaign fabric "
                               "with N pull-queue workers: results land "
                               "in ARTIFACTS_DIR/results.sqlite (query "
                               "with 'store query') and crashed or hung "
                               "workers forfeit their leases and are "
                               "re-issued; results stay bit-identical "
                               "at any N (default 0 = off)")
    campaign.add_argument("--resume", action="store_true",
                          help="resume an interrupted campaign from "
                               "ARTIFACTS_DIR/journal.jsonl — or, with "
                               "--fabric, from ARTIFACTS_DIR/"
                               "results.sqlite (requires "
                               "--artifacts-dir)")
    campaign.add_argument("--artifacts-dir", default=None,
                          help="write all artifacts under this directory: "
                               "DIR/telemetry/, DIR/capture/, "
                               "DIR/journal.jsonl, DIR/experiments/")
    campaign.add_argument("--telemetry-dir", default=None,
                          help=argparse.SUPPRESS)
    campaign.add_argument("--capture-dir", default=None,
                          help=argparse.SUPPRESS)
    campaign.add_argument("--scenario", default=None, metavar="NAME",
                          help="run a library scenario (or a .yaml/.json "
                               "scenario file) instead of the built-in "
                               "control-symbol campaign; see "
                               "'scenario list'")
    campaign.add_argument("--follow", action="store_true",
                          help="print live NDJSON lifecycle events "
                               "(campaign_started, experiment_finished, "
                               "snapshot, ...) to stdout while the "
                               "campaign runs; the table and summary "
                               "move to stderr so stdout stays pure "
                               "NDJSON")
    campaign.add_argument("--no-progress", action="store_true",
                          help="suppress the live progress line")

    scenario = sub.add_parser(
        "scenario",
        help="compile or run declarative scenario documents "
             "(topology + traffic + fault plans -> campaigns)",
    )
    scenario_sub = scenario.add_subparsers(dest="scenario_command")
    scenario_sub.add_parser(
        "list", help="list the built-in scenario library"
    )
    compile_cmd = scenario_sub.add_parser(
        "compile",
        help="compile a scenario to its campaign spec without running it",
    )
    compile_cmd.add_argument(
        "scenario", metavar="NAME_OR_PATH",
        help="a library scenario name, or a .yaml/.json scenario file",
    )
    compile_cmd.add_argument(
        "--json", dest="json_out", action="store_true",
        help="print the full campaign spec JSON instead of the summary",
    )
    scenario_run = scenario_sub.add_parser(
        "run", help="compile a scenario and run the campaign"
    )
    scenario_run.add_argument(
        "scenario", metavar="NAME_OR_PATH",
        help="a library scenario name, or a .yaml/.json scenario file",
    )
    scenario_run.add_argument(
        "--workers", type=int, default=1,
        help="worker processes (default 1; results are bit-identical "
             "at any worker count)",
    )
    scenario_run.add_argument(
        "--fabric", type=int, default=0, metavar="N",
        help="run on the distributed campaign fabric with N pull-queue "
             "workers (see 'campaign --fabric')",
    )
    scenario_run.add_argument(
        "--artifacts-dir", default=None,
        help="write journal + merged artifacts under this directory",
    )
    scenario_run.add_argument(
        "--resume", action="store_true",
        help="resume from ARTIFACTS_DIR/journal.jsonl",
    )
    scenario_run.add_argument(
        "--pipeline", choices=("scalar", "fast"), default=None,
        help="data-path implementation (scalar|fast)",
    )
    scenario_run.add_argument(
        "--no-progress", action="store_true",
        help="suppress the live progress line",
    )

    serve = sub.add_parser(
        "serve",
        help="run the monitoring-as-a-service campaign server "
             "(POST /campaigns, live event streams, insight reports)",
    )
    serve.add_argument("--root", default="srv",
                       help="artifact root; campaigns land under "
                            "ROOT/<tenant>/<id>/ (default: srv)")
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default: 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8321,
                       help="bind port; 0 picks an ephemeral port "
                            "(default: 8321)")
    serve.add_argument("--workers", type=int, default=1,
                       help="default worker processes per campaign "
                            "(submissions may override; default: 1)")
    serve.add_argument("--runners", type=int, default=1,
                       help="concurrent campaign runners; >1 drains the "
                            "queue N campaigns at a time through the "
                            "fabric executor (default: 1 = serial queue)")
    serve.add_argument("--queue-limit", type=int, default=8,
                       help="pending campaigns before POST /campaigns "
                            "answers 429 (default: 8)")
    serve.add_argument("--timeout-s", type=float, default=None,
                       help="per-experiment wall-clock timeout for "
                            "pooled campaigns (default: none)")

    store = sub.add_parser(
        "store",
        help="query or export the fabric result store "
             "(ARTIFACTS_DIR/results.sqlite)",
    )
    store_sub = store.add_subparsers(dest="store_command")
    store_query = store_sub.add_parser(
        "query",
        help="list stored campaigns and their progress; with a campaign "
             "reference, show its aggregate counters and attempt audit",
    )
    store_export = store_sub.add_parser(
        "export",
        help="dump one campaign's winning rows as NDJSON, index order",
    )
    for store_cmd in (store_query, store_export):
        store_cmd.add_argument(
            "--store", default=None, metavar="PATH",
            help="results.sqlite path (alternative to --artifacts-dir)",
        )
        store_cmd.add_argument(
            "--artifacts-dir", default=None, metavar="DIR",
            help="campaign artifacts root holding DIR/results.sqlite",
        )
    store_query.add_argument(
        "campaign", nargs="?", default=None, metavar="REF",
        help="a spec-digest prefix or exact campaign name (optional)",
    )
    store_export.add_argument(
        "campaign", metavar="REF",
        help="a spec-digest prefix or exact campaign name",
    )
    store_export.add_argument(
        "--out", default=None,
        help="write the NDJSON to PATH instead of stdout",
    )

    capture = sub.add_parser(
        "capture",
        help="decode or summarize a capture.rcap artifact offline",
    )
    capture_sub = capture.add_subparsers(dest="capture_command")
    decode = capture_sub.add_parser(
        "decode",
        help="reassemble packets, mark injected symbols, join verdicts",
    )
    decode.add_argument("--input", default="out/cap",
                        help="a capture.rcap file or its directory")
    decode.add_argument("--json", dest="json_out", default=None,
                        help="also write the full analysis tree as JSON")
    decode.add_argument("--out", default=None,
                        help="write the report (.md or .txt)")
    summarize = capture_sub.add_parser(
        "summarize",
        help="print record counts and experiment markers without decoding",
    )
    summarize.add_argument("--input", default="out/cap",
                           help="a capture.rcap file or its directory")

    metrics = sub.add_parser(
        "metrics",
        help="re-render a metrics.json artifact (json, Prometheus text, "
             "or a quantile summary)",
    )
    metrics.add_argument("--input", default="out/metrics.json",
                         help="path to a metrics.json artifact")
    metrics.add_argument("--format", choices=("json", "prom", "summary"),
                         default="prom", help="output format ('summary' "
                         "adds p50/p95/p99 histogram quantiles)")

    insight = sub.add_parser(
        "insight",
        help="correlate campaign artifacts into ranked incident reports",
    )
    insight_sub = insight.add_subparsers(dest="insight_command")
    analyze = insight_sub.add_parser(
        "analyze",
        help="join capture+telemetry+topology; print the incident summary",
    )
    analyze.add_argument("--input", default="out",
                         help="campaign artifact directory (engine or "
                              "flat layout)")
    analyze.add_argument("--label", default=None,
                         help="override the report label (defaults to the "
                              "campaign name)")
    analyze.add_argument("--json", dest="json_out", default=None,
                         help="write the canonical report JSON to PATH")
    analyze.add_argument("--store", default=None,
                         help="also persist the report into this sqlite "
                              "incident store")
    analyze.add_argument("--result-store", default=None, metavar="PATH",
                         help="cross-check the report against a fabric "
                              "result store (ARTIFACTS_DIR/results.sqlite): "
                              "indices, names, seeds, and aggregate "
                              "consistency; exit 1 on mismatch")
    analyze.add_argument("--digest-only", action="store_true",
                         help="print only the report digest (CI gate)")
    report_cmd = insight_sub.add_parser(
        "report",
        help="print the full incident report for one campaign",
    )
    report_cmd.add_argument("--input", default="out",
                            help="campaign artifact directory")
    report_cmd.add_argument("--label", default=None,
                            help="override the report label")
    report_cmd.add_argument("--out", default=None,
                            help="also write the rendered report to PATH")
    similar = insight_sub.add_parser(
        "similar",
        help="rank stored campaigns by feature-vector similarity",
    )
    similar.add_argument("--store", required=True,
                         help="sqlite incident store path")
    similar.add_argument("--input", default=None,
                         help="query campaign: analyze this artifact "
                              "directory")
    similar.add_argument("--label", default=None,
                         help="query campaign: a label already in the "
                              "store (alternative to --input)")
    similar.add_argument("--top", type=int, default=5,
                         help="number of results (default 5)")

    sub.add_parser("synthesis", help="print the Table 1 synthesis estimate")

    lint = sub.add_parser(
        "lint",
        help="run the simlint static-analysis rules over the source tree",
    )
    lint.add_argument(
        "paths", nargs="*",
        help="directories to lint (default: the installed repro package)",
    )
    lint.add_argument(
        "--list-rules", action="store_true",
        help="print the rule table and exit",
    )
    lint.add_argument(
        "--flow", action="store_true",
        help="additionally run the simflow dataflow rules "
             "(FLOW1xx determinism taint, FLOW2xx parallel safety, "
             "FLOW3xx fastpath effect divergence)",
    )
    lint.add_argument(
        "--format", choices=("text", "sarif"), default="text",
        help="stdout format: parseable text lines (default) or a "
             "SARIF 2.1.0 report for code scanning",
    )
    lint.add_argument(
        "--sarif-out", default=None, metavar="PATH",
        help="additionally write a SARIF report to PATH "
             "(independent of --format)",
    )
    lint.add_argument(
        "--baseline", default=None, metavar="PATH",
        help="accepted-findings baseline: new findings fail, baseline "
             "findings warn, stale entries are reported "
             "(default: auto-discover lint-baseline.json upward from "
             "the lint root; 'none' disables)",
    )
    lint.add_argument(
        "--write-baseline", action="store_true",
        help="accept the current findings: (re)write the baseline "
             "file and exit 0",
    )

    sanitize = sub.add_parser(
        "sanitize",
        help="replay an identical-seed campaign twice; fail on divergence",
    )
    sanitize.add_argument("--seed", type=int, default=0,
                          help="campaign seed (default 0)")
    sanitize.add_argument("--runs", type=int, default=2,
                          help="number of identical replays (default 2)")
    sanitize.add_argument("--duration-ms", type=float, default=4.0,
                          help="workload duration in simulated ms (default 4)")
    sanitize.add_argument("--pipeline", choices=("scalar", "fast"),
                          default=None,
                          help="data-path implementation to replay under")

    golden = sub.add_parser(
        "golden",
        help="check or regenerate the tests/golden/*.digest corpus",
    )
    golden_mode = golden.add_mutually_exclusive_group(required=True)
    golden_mode.add_argument("--check", action="store_true",
                             help="recompute every digest and compare "
                                  "against the committed corpus")
    golden_mode.add_argument("--regen", action="store_true",
                             help="rewrite the corpus from the current "
                                  "scalar reference pipeline")
    golden.add_argument("--dir", default="tests/golden",
                        help="corpus directory (default tests/golden)")
    golden.add_argument("--pipeline", choices=("scalar", "fast"),
                        default=None,
                        help="pipeline to check with (--check only; "
                             "--regen always uses the scalar reference)")
    golden.add_argument("--only", default=None,
                        help="restrict to one name, from either the "
                             "fastpath run corpus or the scenario "
                             "compile corpus")
    return parser


def _resolve_artifact_dirs(args) -> Tuple[Optional[str], Optional[str]]:
    """Map ``--artifacts-dir`` to ``(telemetry_dir, capture_dir)``.

    The PR-4-era ``--telemetry-dir``/``--capture-dir`` aliases went
    through a deprecation-warning release and are now retired: passing
    either exits 2 with a ``DeprecationWarning`` line naming the
    replacement, so old scripts fail loudly with the fix in the message
    instead of silently producing a different artifact layout.
    """
    from pathlib import Path

    retired = [
        flag for flag, value in (
            ("--telemetry-dir", getattr(args, "telemetry_dir", None)),
            ("--capture-dir", getattr(args, "capture_dir", None)),
        ) if value
    ]
    if retired:
        print(
            f"DeprecationWarning: {'/'.join(retired)} "
            "has been removed; use --artifacts-dir DIR (writes "
            "DIR/telemetry/ and DIR/capture/ — see docs/runtime.md)",
            file=sys.stderr,
        )
        raise SystemExit(2)
    telemetry_dir = capture_dir = None
    artifacts_dir = getattr(args, "artifacts_dir", None)
    if artifacts_dir:
        root = Path(artifacts_dir)
        telemetry_dir = str(root / "telemetry")
        capture_dir = str(root / "capture")
    return telemetry_dir, capture_dir


def _list_experiments() -> str:
    width = max(len(name) for name in EXPERIMENTS)
    lines = ["available experiments:"]
    for name, (description, _runner) in EXPERIMENTS.items():
        lines.append(f"  {name:<{width}}  {description}")
    lines.append(f"  {'all':<{width}}  every experiment in order")
    return "\n".join(lines)


def _run_lint(args) -> int:
    """``lint``: print one parseable line per finding; exit 1 if any.

    Text output format is ``file:line:col RULE message`` — one finding
    per line, nothing else on stdout except the trailing summary on
    stderr, so CI annotation parsers can consume it directly.  With
    ``--format sarif`` stdout carries a SARIF 2.1.0 report instead.

    Under ``--flow`` findings are additionally screened against the
    committed ``lint-baseline.json``: baseline findings warn, *new*
    findings fail, stale baseline entries are reported so the baseline
    can be re-accepted with ``--write-baseline``.
    """
    import json
    from pathlib import Path

    from repro.analysis import default_engine, run_lint, rule_table

    if args.list_rules:
        for rule_id, title in rule_table(flow=args.flow).items():
            print(f"{rule_id}  {title}")
        return 0

    if args.paths:
        engine = default_engine(flow=args.flow)
        findings = []
        roots = []
        for raw in args.paths:
            root = Path(raw).resolve()
            roots.append(root)
            # Module names are package-relative: src/repro -> repro.*
            scan_root = root.parent if root.name == "repro" else root
            findings.extend(engine.run(root, scan_root))
    else:
        findings = run_lint(flow=args.flow)
        roots = [Path(__file__).resolve().parent]

    titles = rule_table(flow=args.flow)

    # Baseline screening (FLOW runs only; plain lint stays absolute).
    baseline_path = None
    delta = None
    if args.flow:
        from repro.analysis.flow import (
            apply_baseline,
            find_baseline,
            load_baseline,
            write_baseline,
        )

        if args.baseline == "none":
            baseline_path = None
        elif args.baseline:
            baseline_path = Path(args.baseline)
        else:
            baseline_path = find_baseline(roots[0])
        if args.write_baseline:
            out = baseline_path or Path("lint-baseline.json")
            write_baseline(out, findings)
            print(
                f"simlint: wrote {len(findings)} finding(s) to {out}",
                file=sys.stderr,
            )
            return 0
        if baseline_path is not None and baseline_path.is_file():
            delta = apply_baseline(findings, load_baseline(baseline_path))

    if args.sarif_out or args.format == "sarif":
        from repro.analysis.sarif import to_sarif

        report = to_sarif(findings, rule_titles=titles, base_dir=Path.cwd())
        if args.sarif_out:
            Path(args.sarif_out).write_text(
                json.dumps(report, indent=2, sort_keys=True) + "\n",
                encoding="utf-8",
            )
        if args.format == "sarif":
            print(json.dumps(report, indent=2, sort_keys=True))

    if delta is not None:
        if args.format == "text":
            for finding in delta.new:
                print(finding.format())
        for finding in delta.matched:
            print(f"warning (baseline): {finding.format()}", file=sys.stderr)
        for key in delta.stale:
            print(
                "simlint: stale baseline entry "
                f"{key[0]} {key[1]}: {key[2]}",
                file=sys.stderr,
            )
        print(
            f"simlint: {len(delta.new)} new finding(s), "
            f"{len(delta.matched)} baseline, {len(delta.stale)} stale",
            file=sys.stderr,
        )
        return 1 if delta.new else 0

    if args.format == "text":
        for finding in findings:
            print(finding.format())
    count = len(findings)
    print(
        f"simlint: {count} finding{'s' if count != 1 else ''}",
        file=sys.stderr,
    )
    return 1 if findings else 0


def _campaign_spec(args, capture_enabled: bool):
    """The CLI campaign as a declarative, picklable CampaignSpec."""
    from repro.core.faults import control_symbol_swap
    from repro.core.monitor import MonitorConfig
    from repro.hw.registers import MatchMode
    from repro.myrinet.symbols import GAP, GO, IDLE, STOP
    from repro.nftape.experiment import TestbedOptions
    from repro.runtime.spec import CampaignSpec, ExperimentSpec, PlanSpec

    pairs = [
        ("IDLE", "GAP"), ("GAP", "IDLE"), ("STOP", "GO"), ("GO", "STOP"),
        ("IDLE", "STOP"), ("GAP", "GO"), ("STOP", "IDLE"), ("GO", "GAP"),
    ]
    symbols = {"IDLE": IDLE, "GAP": GAP, "STOP": STOP, "GO": GO}
    duration_ps = max(1 * MS, int(args.duration_ms * MS))

    device_kwargs = {}
    if capture_enabled:
        # The campaign's ~96-byte wire packets must fit in the windows
        # for the offline decoder to reassemble them whole.
        device_kwargs["monitor_config"] = MonitorConfig(
            enabled=True, pre_symbols=128, post_symbols=128
        )

    specs = []
    for index in range(max(1, args.experiments)):
        source, target = pairs[index % len(pairs)]
        specs.append(ExperimentSpec(
            name=f"{source}->{target}",
            duration_ps=duration_ps,
            plan=PlanSpec(
                "duty_cycle", "RL",
                control_symbol_swap(symbols[source], symbols[target],
                                    MatchMode.ON),
                use_serial=False,
                on_ps=duration_ps // 8,
                off_ps=duration_ps // 2,
            ),
            testbed=TestbedOptions(device_kwargs=dict(device_kwargs)),
        ))
    return CampaignSpec.build(
        "cli control-symbol campaign", specs, base_seed=args.seed
    )


def _load_scenario_doc(ref: str):
    """Resolve a scenario reference: library name, or a file path."""
    import json
    from pathlib import Path

    from repro.scenario import scenario_from_json
    from repro.scenario.library import load_scenario
    from repro.scenario.yamlish import loads as yamlish_loads

    path = Path(ref)
    if path.suffix in (".yaml", ".yml", ".json") or path.is_file():
        text = path.read_text(encoding="utf-8")
        if path.suffix == ".json":
            data = json.loads(text)
        else:
            data = yamlish_loads(text)
        return scenario_from_json(data)
    return load_scenario(ref)


def _execute_spec(spec, *, workers: int, resume: bool,
                  engine_root: Optional[str], follow_events: bool,
                  no_progress: bool, fabric: int = 0) -> int:
    """Run ``spec`` through the campaign engine and print the results.

    The shared back half of ``campaign`` and ``scenario run``: executor
    selection (serial vs pooled vs fabric), journalling or the result
    store, deterministic artifact merging, and the human summary.
    """
    from contextlib import nullcontext
    from pathlib import Path

    from repro.nftape.campaign import Campaign
    from repro.runtime.executors import PooledExecutor, SerialExecutor
    from repro.runtime.fabric import FabricExecutor

    progress = None
    if not no_progress:
        def progress(message: str) -> None:
            print(f"\r{message:<60}", end="", file=sys.stderr, flush=True)

    campaign = Campaign.from_spec(spec, on_progress=progress)
    table_out = sys.stderr if follow_events else sys.stdout
    follow = _FollowEvents() if follow_events else nullcontext()

    journal_path = (
        None if engine_root is None
        else Path(engine_root) / "journal.jsonl"
    )
    if fabric > 0:
        executor = FabricExecutor(
            workers=fabric, resume=resume,
            artifacts_dir=engine_root, label=spec.name,
        )
    elif workers > 1:
        executor = PooledExecutor(
            workers=workers, journal_path=journal_path,
            resume=resume, artifacts_dir=engine_root,
            label=spec.name,
        )
    else:
        executor = SerialExecutor(
            journal_path=journal_path, resume=resume,
            artifacts_dir=engine_root, label=spec.name,
        )
    with follow:
        table = campaign.run(executor=executor)
    if progress is not None:
        print(file=sys.stderr)
    print(table.render(), file=table_out)
    if fabric > 0:
        line = (
            f"campaign: {len(executor.executed)} experiment(s) executed "
            f"on the fabric with {fabric} worker(s)"
        )
        if executor.skipped:
            line += f", {len(executor.skipped)} restored from store"
        reissued = sum(executor.reissues.values())
        if reissued:
            line += f", {reissued} lease(s) re-issued"
        if engine_root is not None:
            line += f"; store: {Path(engine_root) / 'results.sqlite'}"
    else:
        line = (
            f"campaign: {len(executor.executed)} experiment(s) executed "
            f"with {workers} worker(s)"
        )
        if executor.skipped:
            line += f", {len(executor.skipped)} restored from journal"
        retries = sum(executor.retries.values())
        if retries:
            line += f", {retries} retried"
    print(line, file=table_out)
    summary = executor.merge_summary
    if summary is not None:
        print(
            f"artifacts merged under {engine_root}/: "
            f"{summary['telemetry_shards']} telemetry shard(s) -> "
            f"telemetry/, {summary['capture_shards']} capture "
            f"shard(s) -> capture/capture.rcap",
            file=table_out,
        )
    return 0


class _FollowEvents:
    """Install an :class:`~repro.runtime.events.EventBus` for a block
    and pump every lifecycle event to stdout as NDJSON, live.

    ``repro.cli campaign --follow`` uses this — no server required: the
    executors publish onto the ambient bus and a printer thread drains
    a bounded subscription, one JSON object per line.
    """

    def __enter__(self) -> "_FollowEvents":
        import threading

        from repro.runtime.events import EventBus, EventBusSession

        self._stop = threading.Event()
        bus = EventBus()
        self._session = EventBusSession(bus)
        self._session.__enter__()

        def _pump() -> None:
            with bus.subscribe() as subscription:
                while True:
                    event = subscription.get(timeout=0.2)
                    if event is not None:
                        print(event.to_json(), flush=True)
                    elif self._stop.is_set():
                        for event in subscription.drain():
                            print(event.to_json(), flush=True)
                        return

        self._thread = threading.Thread(
            target=_pump, name="repro-follow", daemon=True)
        self._thread.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._stop.set()
        self._thread.join(timeout=5.0)
        self._session.__exit__(exc_type, exc, tb)
        return False


def _run_campaign(args) -> int:
    """``campaign``: a Table 4 style control-symbol swap campaign.

    The campaign cycles through control-symbol corruption pairs with a
    duty-cycled trigger.  With ``--artifacts-dir`` the run is journalled
    (``--resume`` restores completed experiments) and drops merged
    telemetry (``metrics.json``, ``spans.jsonl``, a Perfetto-loadable
    ``trace.json``) plus a binary ``capture.rcap`` that ``python -m
    repro capture decode`` analyzes; ``--workers N`` shards the
    experiments across N worker processes with bit-identical output.
    ``--scenario NAME_OR_PATH`` swaps the built-in swap matrix for a
    compiled scenario document (library name or YAML/JSON file) —
    sugar for ``python -m repro scenario run``.
    """
    from contextlib import nullcontext

    from repro.capture import CaptureSession
    from repro.errors import ConfigurationError
    from repro.nftape.campaign import Campaign
    from repro.telemetry import TelemetrySession

    telemetry_dir, capture_dir = _resolve_artifact_dirs(args)
    workers = max(1, args.workers)
    engine_root = args.artifacts_dir

    if args.resume and engine_root is None:
        print(
            "--resume reads the campaign journal; pass --artifacts-dir DIR "
            "(the journal lives at DIR/journal.jsonl)",
            file=sys.stderr,
        )
        return 2

    capture_enabled = bool(capture_dir) or engine_root is not None
    if getattr(args, "scenario", None):
        from repro.scenario import compile_scenario

        try:
            spec = compile_scenario(_load_scenario_doc(args.scenario))
        except (ConfigurationError, OSError) as exc:
            print(f"scenario error: {exc}", file=sys.stderr)
            return 2
    else:
        spec = _campaign_spec(args, capture_enabled)

    fabric = max(0, getattr(args, "fabric", 0))
    if engine_root is not None or workers > 1 or fabric > 0:
        # Engine path: journal (or result store) + per-experiment
        # artifact shards, merged deterministically on completion
        # (same layout at any -w / --fabric N).
        return _execute_spec(
            spec, workers=workers, resume=args.resume,
            engine_root=engine_root, follow_events=args.follow,
            no_progress=args.no_progress, fabric=fabric,
        )

    progress = None
    if not args.no_progress:
        def progress(message: str) -> None:
            print(f"\r{message:<60}", end="", file=sys.stderr, flush=True)

    campaign = Campaign.from_spec(spec, on_progress=progress)

    # --follow: stdout carries pure NDJSON events; human output moves
    # to stderr so `... --follow | jq .kind` just works.
    table_out = sys.stderr if args.follow else sys.stdout
    follow = _FollowEvents() if args.follow else nullcontext()

    # Legacy ambient-session path (serial, deprecated per-artifact
    # flags): one process-wide session brackets the whole campaign.
    session = TelemetrySession(out_dir=telemetry_dir, label=spec.name)
    capture = (
        CaptureSession(out_dir=capture_dir, label=spec.name)
        if capture_dir else nullcontext()
    )
    with follow:
        with session:
            with capture:
                table = campaign.run()
    if progress is not None:
        print(file=sys.stderr)
    print(table.render(), file=table_out)
    fired = session.registry.value("sim.events_fired")
    rate = session.registry.value("sim.events_per_s")
    print(
        f"telemetry: {int(fired)} kernel events in {session.wall_s:.2f}s "
        f"wall ({rate:,.0f} events/s)",
        file=table_out,
    )
    if telemetry_dir:
        print(f"telemetry artifacts written to {telemetry_dir}/"
              f" (metrics.json, spans.jsonl, trace.json)",
              file=table_out)
    if capture_dir:
        recorder = capture.recorder
        print(
            f"capture: {len(recorder.events)} lifecycle events, "
            f"{recorder.corr_ids_assigned} correlation ids, "
            f"{len(recorder.experiments)} experiment(s) -> {capture.path}",
            file=table_out,
        )
    return 0


def _run_serve(args) -> int:
    """``serve``: the monitoring-as-a-service campaign server.

    Binds, prints the address and route summary, then blocks until
    interrupted.  See docs/server.md for the HTTP contract.
    """
    import time

    from repro.errors import ConfigurationError
    from repro.server import MonitorServer

    server = MonitorServer(
        root=args.root, host=args.host, port=args.port,
        workers=args.workers, queue_limit=args.queue_limit,
        timeout_s=args.timeout_s, runners=args.runners,
    )
    try:
        server.start()
    except ConfigurationError as exc:
        print(f"serve: {exc}", file=sys.stderr)
        return 2
    host, port = server.address
    print(f"repro.server listening on http://{host}:{port} "
          f"(artifact root: {args.root}/)")
    print("  POST /campaigns                submit a CampaignSpec (JSON)")
    print("  GET  /campaigns                list this tenant's campaigns")
    print("  GET  /campaigns/{id}           status")
    print("  GET  /campaigns/{id}/events    live NDJSON (SSE via Accept)")
    print("  GET  /campaigns/{id}/report    insight verdict (JSON)")
    print("  GET  /campaigns/{id}/artifacts/{table|metrics|capture|insight}")
    print("  GET  /metrics                  Prometheus text exposition")
    print("  GET  /healthz                  liveness + queue depth")
    try:
        while True:
            time.sleep(1.0)
    except KeyboardInterrupt:
        print("\nserve: shutting down", file=sys.stderr)
    finally:
        server.stop()
    return 0


def _run_store(args) -> int:
    """``store query|export``: inspect the fabric result store.

    ``query`` with no reference prints the campaign progress view (one
    line per stored campaign); with a reference it adds the aggregate
    counters and the per-experiment attempt audit (lease re-issues and
    duplicate deliveries leave losing attempt rows behind).  ``export``
    dumps the winning rows as NDJSON in experiment-index order.
    """
    import json
    from pathlib import Path

    from repro.errors import CampaignError
    from repro.runtime.fabric import STORE_FILE_NAME
    from repro.runtime.store import ResultStore

    if args.store:
        store_path = Path(args.store)
    elif args.artifacts_dir:
        store_path = Path(args.artifacts_dir) / STORE_FILE_NAME
    else:
        print("pass --store PATH or --artifacts-dir DIR", file=sys.stderr)
        return 2
    if not store_path.exists():
        print(f"no result store at {store_path} (run a campaign with "
              "--fabric N --artifacts-dir DIR first)", file=sys.stderr)
        return 2

    with ResultStore(store_path) as store:
        if args.store_command == "query" and args.campaign is None:
            campaigns = store.campaigns()
            if not campaigns:
                print("result store is empty")
                return 0
            width = max(len(row["name"]) for row in campaigns)
            for row in campaigns:
                print(
                    f"{row['spec_digest'][:12]}  {row['name']:<{width}}  "
                    f"{row['experiments_done']}/{row['experiments']} done  "
                    f"injections={row['injections']} "
                    f"sent={row['messages_sent']} "
                    f"received={row['messages_received']}"
                )
            return 0

        try:
            digest = store.resolve(args.campaign)
        except CampaignError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        if digest is None:
            print(f"no stored campaign matches {args.campaign!r}",
                  file=sys.stderr)
            return 2

        if args.store_command == "query":
            totals = store.aggregate(digest)
            print(f"campaign {digest}")
            for field, value in totals.items():
                print(f"  {field}: {value}")
            for row in store.export_rows(digest):
                attempts = store.attempts(digest, row["index"])
                audit = "" if len(attempts) == 1 else (
                    f"  ({len(attempts)} attempts recorded)"
                )
                print(
                    f"  [{row['index']:3d}] {row['name']} "
                    f"seed={row['seed']} won by attempt "
                    f"{row['attempt']}{audit}"
                )
            return 0

        # store export
        lines = [json.dumps(row, sort_keys=True)
                 for row in store.export_rows(digest)]
    body = "\n".join(lines) + ("\n" if lines else "")
    if args.out:
        target = Path(args.out)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(body)
        print(f"{len(lines)} row(s) written to {target}")
    else:
        print(body, end="")
    return 0


def _run_capture(args) -> int:
    """``capture decode|summarize``: offline ``.rcap`` analysis."""
    import json
    from pathlib import Path

    from repro.capture.format import read_capture
    from repro.capture.session import CAPTURE_FILE_NAME

    path = Path(args.input)
    if path.is_dir():
        path = path / CAPTURE_FILE_NAME
    if not path.exists():
        print(
            f"no capture artifact at {path} (run a campaign with "
            "--capture-dir first)",
            file=sys.stderr,
        )
        return 2

    if args.capture_command == "summarize":
        data = read_capture(path)
        meta = data.meta
        print(f"capture file: {path}")
        print(f"label: {meta.get('label', '?')}")
        print(
            f"records: {len(data.captures)} capture windows, "
            f"{len(data.events)} lifecycle events, "
            f"{len(data.experiments)} experiment markers"
            + (
                f", {data.unknown_records_skipped} unknown records skipped"
                if data.unknown_records_skipped else ""
            )
        )
        print(f"events dropped at record time: {meta.get('events_dropped', 0)}")
        for marker in data.experiments:
            print(
                f"  [{marker.get('index')}] {marker.get('name')} "
                f"seed={marker.get('seed')} class={marker.get('fault_class')} "
                f"injections={marker.get('injections')} "
                f"captures={marker.get('captures')} "
                f"span={marker.get('span_id')}"
            )
        return 0

    from repro.capture.decode import analyze_capture

    analysis = analyze_capture(path)
    print(analysis.report().render_text())
    if args.json_out:
        target = Path(args.json_out)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(
            json.dumps(analysis.to_dict(), indent=2, sort_keys=True) + "\n"
        )
        print(f"analysis JSON written to {target}")
    if args.out:
        target = analysis.report().write(args.out)
        print(f"report written to {target}")
    return 0


def _run_metrics(args) -> int:
    """``metrics``: re-render a metrics.json artifact."""
    import json
    from pathlib import Path

    from repro.telemetry import MetricsRegistry, to_prometheus
    from repro.telemetry.metrics import Counter, Gauge, Histogram

    path = Path(args.input)
    if not path.exists():
        print(f"no metrics artifact at {path} (run a campaign with "
              "--telemetry-dir first)", file=sys.stderr)
        return 2
    document = json.loads(path.read_text())
    if args.format == "json":
        print(json.dumps(document, indent=2, sort_keys=True))
        return 0
    registry = MetricsRegistry.from_dict(document.get("metrics", {}))
    if args.format == "summary":
        for metric in registry:
            labels = metric.label_dict()
            rendered = "" if not labels else (
                "{" + ",".join(f"{k}={v}"
                               for k, v in sorted(labels.items())) + "}"
            )
            name = f"{metric.name}{rendered}"
            if isinstance(metric, Histogram):
                quantiles = metric.quantiles()
                print(
                    f"{name}  count={metric.count} "
                    f"mean={metric.mean:.1f} "
                    f"p50={quantiles['p50']:.1f} "
                    f"p95={quantiles['p95']:.1f} "
                    f"p99={quantiles['p99']:.1f}"
                )
            elif isinstance(metric, Gauge):
                print(
                    f"{name}  value={metric.value:g} "
                    f"high={metric.high} low={metric.low}"
                )
            elif isinstance(metric, Counter):
                print(f"{name}  total={metric.value:g}")
        return 0
    print(to_prometheus(registry), end="")
    return 0


def _run_insight(args) -> int:
    """``insight analyze|report|similar``: offline incident correlation.

    ``analyze`` joins one campaign's artifacts and prints the per-
    incident verdict summary plus the report digest (``--digest-only``
    restricts output to the digest — the CI golden gate consumes that);
    ``report`` renders the full human-readable report; ``similar``
    queries a sqlite incident store by feature-vector cosine distance.
    """
    from pathlib import Path

    from repro.errors import ConfigurationError
    from repro.insight import InsightStore, analyze_artifacts

    if args.insight_command in ("analyze", "report"):
        root = Path(args.input)
        if not root.is_dir():
            print(
                f"no artifact directory at {root} (run a campaign with "
                "--artifacts-dir first)",
                file=sys.stderr,
            )
            return 2
        report = analyze_artifacts(root, label=args.label)
        if args.insight_command == "report":
            text = report.render_text()
            print(text)
            if args.out:
                target = Path(args.out)
                target.parent.mkdir(parents=True, exist_ok=True)
                target.write_text(text + "\n")
                print(f"report written to {target}")
            return 0
        if args.digest_only:
            print(report.digest())
        else:
            print(
                f"analyzed {report.label}: "
                f"{report.counts.get('incidents', 0)} incident(s), "
                f"{report.counts.get('windows', 0)} window(s), "
                f"{report.counts.get('degradations', 0)} degradation(s)"
            )
            for incident in sorted(report.incidents, key=lambda i: i.index):
                print(
                    f"  [{incident.index}] {incident.name} "
                    f"-> {incident.top_cause}"
                )
            print(f"report digest: {report.digest()}")
        if args.json_out:
            target = Path(args.json_out)
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_text(report.canonical_json() + "\n")
            if not args.digest_only:
                print(f"report JSON written to {target}")
        if args.store:
            with InsightStore(args.store) as store:
                key = store.add_report(report)
            if not args.digest_only:
                print(f"stored as {key!r} in {args.store}")
        if args.result_store:
            from repro.insight.store_ingest import crosscheck_report

            if not Path(args.result_store).exists():
                print(f"no result store at {args.result_store}",
                      file=sys.stderr)
                return 2
            ok, lines = crosscheck_report(report, args.result_store)
            for text in lines:
                print(text)
            if not ok:
                return 1
        return 0

    if args.insight_command == "similar":
        if bool(args.input) == bool(args.label):
            print("pass exactly one of --input DIR or --label NAME",
                  file=sys.stderr)
            return 2
        with InsightStore(args.store) as store:
            if args.input:
                query = analyze_artifacts(Path(args.input))
                results = store.similar(
                    query, top=args.top, exclude_label=query.label
                )
            else:
                try:
                    results = store.similar(args.label, top=args.top)
                except ConfigurationError as exc:
                    print(str(exc), file=sys.stderr)
                    return 2
        if not results:
            print("no stored campaigns to compare against")
            return 0
        for rank, row in enumerate(results, 1):
            print(
                f"#{rank} {row['label']}  distance={row['distance']:.6f}  "
                f"cause={row['dominant_cause']}"
            )
        return 0

    return 2


def _run_sanitize(args) -> int:
    """``sanitize``: identical-seed replay; exit 1 on digest divergence."""
    from repro.analysis.sanitize import check_determinism

    duration_ps = max(1, int(args.duration_ms * MS))
    report = check_determinism(
        seed=args.seed, runs=max(2, args.runs), duration_ps=duration_ps
    )
    print(report.render())
    return 0 if report.deterministic else 1


def _run_scenario(args) -> int:
    """``scenario list|compile|run``: the declarative front door."""
    import hashlib
    import json

    from repro.errors import ConfigurationError
    from repro.scenario import compile_scenario
    from repro.scenario.library import list_scenarios, load_scenario

    if args.scenario_command == "list":
        names = list_scenarios()
        if not names:
            print("no library scenarios found")
            return 0
        width = max(len(name) for name in names)
        print("built-in scenario library:")
        for name in names:
            doc = load_scenario(name)
            print(f"  {name:<{width}}  {doc.description}")
        return 0

    try:
        doc = _load_scenario_doc(args.scenario)
        spec = compile_scenario(doc)
    except (ConfigurationError, OSError) as exc:
        print(f"scenario error: {exc}", file=sys.stderr)
        return 2

    if args.scenario_command == "compile":
        from repro.runtime.spec_codec import spec_to_json

        payload = spec_to_json(spec)
        if args.json_out:
            print(json.dumps(payload, indent=2, sort_keys=True))
            return 0
        canonical = json.dumps(
            payload, sort_keys=True, separators=(",", ":")
        )
        digest = hashlib.blake2b(
            canonical.encode("utf-8"), digest_size=16
        ).hexdigest()
        print(
            f"scenario {doc.name}: {len(spec.experiments)} experiment(s), "
            f"compile digest {digest}"
        )
        width = max(len(exp.name) for exp in spec.experiments)
        for exp in spec.experiments:
            plans = (1 if exp.plan is not None else 0) + len(exp.extra_plans)
            total_ms = (exp.duration_ps + exp.drain_ps) / MS
            print(
                f"  {exp.name:<{width}}  {total_ms:g} ms simulated, "
                f"{plans} fault plan(s)"
            )
        return 0

    # scenario run
    if args.resume and args.artifacts_dir is None:
        print(
            "--resume reads the campaign journal; pass --artifacts-dir DIR "
            "(the journal lives at DIR/journal.jsonl)",
            file=sys.stderr,
        )
        return 2
    return _execute_spec(
        spec, workers=max(1, args.workers), resume=args.resume,
        engine_root=args.artifacts_dir, follow_events=False,
        no_progress=args.no_progress,
        fabric=max(0, getattr(args, "fabric", 0)),
    )


def _run_golden(args) -> int:
    """``golden --check|--regen``: the digest corpus gate.

    Covers two corpora in one pass: the fast-path run digests
    (``*.digest``) and the scenario compile digests
    (``scenario_*.expected``).  ``--only NAME`` restricts to whichever
    corpus owns that name.
    """
    from pathlib import Path

    from repro.fastpath.golden import (
        GOLDEN_SCENARIOS,
        check_corpus,
        regen_corpus,
    )
    from repro.scenario.golden import (
        check_scenario_corpus,
        regen_scenario_corpus,
    )
    from repro.scenario.library import list_scenarios

    directory = Path(args.dir)
    run_fastpath = run_scenarios = True
    fast_only = None
    scenario_only = None
    if args.only is not None:
        if args.only in GOLDEN_SCENARIOS:
            fast_only, run_scenarios = args.only, False
        elif args.only in list_scenarios():
            scenario_only, run_fastpath = [args.only], False
        else:
            print(
                f"unknown golden name {args.only!r}; fastpath corpus: "
                f"{list(GOLDEN_SCENARIOS)}; scenario corpus: "
                f"{list_scenarios()}",
                file=sys.stderr,
            )
            return 2

    if args.regen:
        if run_fastpath:
            for path in regen_corpus(args.dir, only=fast_only):
                print(f"wrote {path}")
        if run_scenarios:
            for name in sorted(regen_scenario_corpus(
                    directory, only=scenario_only)):
                print(f"wrote {directory / f'scenario_{name}.expected'}")
        return 0

    ok = True
    if run_fastpath:
        report = check_corpus(
            args.dir, pipeline=args.pipeline, only=fast_only
        )
        print(report.render())
        ok = ok and report.ok
    if run_scenarios:
        scenario_ok, messages = check_scenario_corpus(
            directory, only=scenario_only
        )
        for message in messages:
            print(message)
        ok = ok and scenario_ok
    return 0 if ok else 1


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    pipeline = getattr(args, "pipeline", None)
    if pipeline is not None and args.command != "golden":
        from repro.fastpath import set_default_pipeline
        set_default_pipeline(pipeline)

    if args.command == "golden":
        return _run_golden(args)

    if args.command in (None, "list"):
        print(_list_experiments())
        return 0

    if args.command == "synthesis":
        from repro.hw.synthesis import format_report, synthesis_report
        print(format_report(synthesis_report()))
        return 0

    if args.command == "lint":
        return _run_lint(args)

    if args.command == "sanitize":
        return _run_sanitize(args)

    if args.command == "campaign":
        return _run_campaign(args)

    if args.command == "scenario":
        if args.scenario_command is None:
            parser.parse_args(["scenario", "--help"])
            return 2
        return _run_scenario(args)

    if args.command == "serve":
        return _run_serve(args)

    if args.command == "metrics":
        return _run_metrics(args)

    if args.command == "insight":
        if args.insight_command is None:
            parser.parse_args(["insight", "--help"])
            return 2
        return _run_insight(args)

    if args.command == "capture":
        if args.capture_command is None:
            parser.parse_args(["capture", "--help"])
            return 2
        return _run_capture(args)

    if args.command == "store":
        if args.store_command is None:
            parser.parse_args(["store", "--help"])
            return 2
        return _run_store(args)

    names = list(args.experiments)
    if names == ["all"]:
        names = list(EXPERIMENTS)
    unknown = [name for name in names if name not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}",
              file=sys.stderr)
        print(_list_experiments(), file=sys.stderr)
        return 2

    report = CampaignReport("DSN 2002 reproduction — experiment report")
    from contextlib import nullcontext

    from repro.capture import CaptureSession
    from repro.telemetry import TelemetrySession
    from repro.telemetry.spans import span

    telemetry_dir, capture_dir = _resolve_artifact_dirs(args)
    telemetry = (
        TelemetrySession(out_dir=telemetry_dir, label="repro run")
        if telemetry_dir else nullcontext()
    )
    capture = (
        CaptureSession(out_dir=capture_dir, label="repro run")
        if capture_dir else nullcontext()
    )
    with telemetry:
        with capture:
            for name in names:
                description, runner = EXPERIMENTS[name]
                print(f"== {name}: {description}")
                with span("paper-experiment", name=name):
                    tables, notes = runner(args.scale)
                for table in tables:
                    print(table.render())
                    report.add_table(table)
                for note in notes:
                    print(note)
                    report.add_note(note)
                print()
    if telemetry_dir:
        print(f"telemetry artifacts written to {telemetry_dir}/")
    if capture_dir:
        recorder = capture.recorder
        print(
            f"capture: {len(recorder.events)} lifecycle events, "
            f"{recorder.corr_ids_assigned} correlation ids -> {capture.path}"
        )
    if args.out:
        target = report.write(args.out)
        print(f"report written to {target}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
