"""Command-line interface: run the paper's experiments from a shell.

::

    python -m repro list
    python -m repro run table2 sec434
    python -m repro run all --scale 0.5 --out report.md
    python -m repro synthesis
    python -m repro lint          # simlint static analysis (CI gate)
    python -m repro sanitize      # identical-seed determinism replay

Each experiment regenerates one of the paper's tables/figures (the same
code paths the benchmarks drive) and prints it; ``--out`` additionally
collects everything into a text or markdown report via
:class:`repro.nftape.report.CampaignReport`.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional, Tuple

from repro.nftape.report import CampaignReport
from repro.nftape.results import ResultTable
from repro.sim.timebase import MS

#: Registry: name -> (description, runner).  Runners take a scale factor
#: and return (tables, notes).
Runner = Callable[[float], Tuple[List[ResultTable], List[str]]]


def _scaled(base_ms: float, scale: float) -> int:
    return max(1 * MS, int(base_ms * scale * MS))


def _run_table1(scale: float):
    from repro.hw.synthesis import format_report, synthesis_report
    table = ResultTable("Table 1 — synthesis (see text form below)")
    return [table], [format_report(synthesis_report())]


def _run_table2(scale: float):
    from repro.nftape.paper import table2_latency
    exchanges = max(100, int(600 * scale))
    return [table2_latency(exchanges=exchanges, experiments=5)], []


def _run_sec35(scale: float):
    from repro.nftape.paper import sec35_passthrough
    return [sec35_passthrough(duration_ps=_scaled(10, scale))], []


def _run_table4(scale: float):
    from repro.nftape.paper import table4_control_symbols
    return [table4_control_symbols(duration_ps=_scaled(12, scale))], []


def _run_sec431(scale: float):
    from repro.nftape.paper import sec431_throughput
    return [sec431_throughput(duration_ps=_scaled(15, scale))], []


def _run_sec432(scale: float):
    from repro.nftape.paper import sec432_packet_types
    return [sec432_packet_types()], []


def _run_sec433(scale: float):
    from repro.nftape.paper import sec433_addresses
    table, artifacts = sec433_addresses()
    notes = (
        ["Figure 11 — before:"] + artifacts["fig11_before"]
        + ["Figure 11 — after (corrupted rounds):"] + artifacts["fig11_after"]
    )
    return [table], notes


def _run_sec434(scale: float):
    from repro.nftape.paper import sec434_udp_checksum
    return [sec434_udp_checksum()], []


EXPERIMENTS: Dict[str, Tuple[str, Runner]] = {
    "table1": ("FPGA synthesis results", _run_table1),
    "table2": ("added latency of the device in the data path", _run_table2),
    "sec35": ("pass-through transparency", _run_sec35),
    "table4": ("control-symbol corruption campaign (slow)", _run_table4),
    "sec431": ("throughput under flow-control faults (slow)", _run_sec431),
    "sec432": ("packet type and source route corruption", _run_sec432),
    "sec433": ("physical address corruption + Figure 11", _run_sec433),
    "sec434": ("UDP checksum corruption", _run_sec434),
}


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for ``python -m repro``."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'An Adaptive Architecture for Monitoring and "
            "Failure Analysis of High-Speed Networks' (DSN 2002): run the "
            "paper's experiments on the simulated test bed."
        ),
    )
    sub = parser.add_subparsers(dest="command")

    sub.add_parser("list", help="list the available experiments")

    run = sub.add_parser("run", help="run one or more experiments")
    run.add_argument("experiments", nargs="+",
                     help="experiment names, or 'all'")
    run.add_argument("--scale", type=float, default=1.0,
                     help="duration scale factor (default 1.0)")
    run.add_argument("--out", default=None,
                     help="write a combined report (.md or .txt)")

    sub.add_parser("synthesis", help="print the Table 1 synthesis estimate")

    lint = sub.add_parser(
        "lint",
        help="run the simlint static-analysis rules over the source tree",
    )
    lint.add_argument(
        "paths", nargs="*",
        help="directories to lint (default: the installed repro package)",
    )
    lint.add_argument(
        "--list-rules", action="store_true",
        help="print the rule table and exit",
    )

    sanitize = sub.add_parser(
        "sanitize",
        help="replay an identical-seed campaign twice; fail on divergence",
    )
    sanitize.add_argument("--seed", type=int, default=0,
                          help="campaign seed (default 0)")
    sanitize.add_argument("--runs", type=int, default=2,
                          help="number of identical replays (default 2)")
    sanitize.add_argument("--duration-ms", type=float, default=4.0,
                          help="workload duration in simulated ms (default 4)")
    return parser


def _list_experiments() -> str:
    width = max(len(name) for name in EXPERIMENTS)
    lines = ["available experiments:"]
    for name, (description, _runner) in EXPERIMENTS.items():
        lines.append(f"  {name:<{width}}  {description}")
    lines.append(f"  {'all':<{width}}  every experiment in order")
    return "\n".join(lines)


def _run_lint(args) -> int:
    """``lint``: print one parseable line per finding; exit 1 if any.

    Output format is ``file:line:col RULE message`` — one finding per
    line, nothing else on stdout except the trailing summary on stderr,
    so CI annotation parsers can consume it directly.
    """
    from pathlib import Path

    from repro.analysis import default_engine, run_lint, rule_table

    if args.list_rules:
        for rule_id, title in rule_table().items():
            print(f"{rule_id}  {title}")
        return 0

    if args.paths:
        engine = default_engine()
        findings = []
        for raw in args.paths:
            root = Path(raw).resolve()
            # Module names are package-relative: src/repro -> repro.*
            scan_root = root.parent if root.name == "repro" else root
            findings.extend(engine.run(root, scan_root))
    else:
        findings = run_lint()

    for finding in findings:
        print(finding.format())
    count = len(findings)
    print(
        f"simlint: {count} finding{'s' if count != 1 else ''}",
        file=sys.stderr,
    )
    return 1 if findings else 0


def _run_sanitize(args) -> int:
    """``sanitize``: identical-seed replay; exit 1 on digest divergence."""
    from repro.analysis.sanitize import check_determinism

    duration_ps = max(1, int(args.duration_ms * MS))
    report = check_determinism(
        seed=args.seed, runs=max(2, args.runs), duration_ps=duration_ps
    )
    print(report.render())
    return 0 if report.deterministic else 1


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.command in (None, "list"):
        print(_list_experiments())
        return 0

    if args.command == "synthesis":
        from repro.hw.synthesis import format_report, synthesis_report
        print(format_report(synthesis_report()))
        return 0

    if args.command == "lint":
        return _run_lint(args)

    if args.command == "sanitize":
        return _run_sanitize(args)

    names = list(args.experiments)
    if names == ["all"]:
        names = list(EXPERIMENTS)
    unknown = [name for name in names if name not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}",
              file=sys.stderr)
        print(_list_experiments(), file=sys.stderr)
        return 2

    report = CampaignReport("DSN 2002 reproduction — experiment report")
    for name in names:
        description, runner = EXPERIMENTS[name]
        print(f"== {name}: {description}")
        tables, notes = runner(args.scale)
        for table in tables:
            print(table.render())
            report.add_table(table)
        for note in notes:
            print(note)
            report.add_note(note)
        print()
    if args.out:
        target = report.write(args.out)
        print(f"report written to {target}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
