"""A tiny YAML-subset loader for scenario files (stdlib only).

The container has no PyYAML, and scenario documents do not need full
YAML — they need mappings, lists, scalars, comments, and indentation.
This module parses exactly that subset:

* block mappings (``key: value`` / ``key:`` + indented block);
* block sequences (``- item`` / ``-`` + indented block);
* flow collections on one line (``[1, 2]``, ``{a: 1, b: 2}``), nestable;
* scalars: integers, floats, booleans (``true``/``false``), ``null``,
  quoted and bare strings;
* ``#`` comments and blank lines.

Anchors, aliases, multi-document streams, block scalars, and multi-line
flow collections are intentionally **not** supported; an input that
needs them raises :class:`YamlishError` with the line number.  The
subset is deliberately small enough that every accepted document means
the same thing to a real YAML parser.
"""

from __future__ import annotations

from typing import Any, List, Tuple

from repro.errors import ReproError

__all__ = ["YamlishError", "loads"]


class YamlishError(ReproError):
    """Raised on input outside the supported YAML subset."""

    def __init__(self, line_no: int, message: str) -> None:
        self.line_no = line_no
        super().__init__(f"line {line_no}: {message}")


def _strip_comment(text: str) -> str:
    """Remove a trailing comment, respecting quoted strings."""
    quote = None
    for index, char in enumerate(text):
        if quote is not None:
            if char == quote:
                quote = None
        elif char in "\"'":
            quote = char
        elif char == "#" and (index == 0 or text[index - 1] in " \t"):
            return text[:index]
    return text


def _parse_scalar(token: str, line_no: int) -> Any:
    token = token.strip()
    if not token:
        return None
    if token[0] in "\"'":
        if len(token) < 2 or token[-1] != token[0]:
            raise YamlishError(line_no, f"unterminated string {token!r}")
        return token[1:-1]
    low = token.lower()
    if low in ("null", "~"):
        return None
    if low == "true":
        return True
    if low == "false":
        return False
    for cast in (lambda text: int(text, 0), float):
        try:
            return cast(token)
        except ValueError:
            continue  # not this numeric shape; fall through to string
    if token[0] in "&*|>":
        raise YamlishError(
            line_no,
            f"{token[0]!r} scalars (anchors/aliases/block text) are "
            "outside the supported YAML subset"
        )
    return token


def _split_flow(body: str, line_no: int) -> List[str]:
    """Split a flow-collection body on top-level commas."""
    items: List[str] = []
    depth = 0
    quote = None
    start = 0
    for index, char in enumerate(body):
        if quote is not None:
            if char == quote:
                quote = None
        elif char in "\"'":
            quote = char
        elif char in "[{":
            depth += 1
        elif char in "]}":
            depth -= 1
            if depth < 0:
                raise YamlishError(line_no, "unbalanced flow collection")
        elif char == "," and depth == 0:
            items.append(body[start:index])
            start = index + 1
    if depth != 0 or quote is not None:
        raise YamlishError(
            line_no,
            "flow collections must open and close on one line"
        )
    items.append(body[start:])
    return [item for item in (i.strip() for i in items) if item]


def _parse_value(token: str, line_no: int) -> Any:
    token = token.strip()
    if token.startswith("["):
        if not token.endswith("]"):
            raise YamlishError(line_no, "unterminated flow list")
        return [
            _parse_value(item, line_no)
            for item in _split_flow(token[1:-1], line_no)
        ]
    if token.startswith("{"):
        if not token.endswith("}"):
            raise YamlishError(line_no, "unterminated flow mapping")
        out = {}
        for item in _split_flow(token[1:-1], line_no):
            key, sep, value = item.partition(":")
            if not sep:
                raise YamlishError(
                    line_no, f"flow mapping entry {item!r} lacks ':'"
                )
            out[str(_parse_scalar(key, line_no))] = _parse_value(
                value, line_no
            )
        return out
    return _parse_scalar(token, line_no)


def _split_key(content: str, line_no: int) -> Tuple[str, str]:
    """Split ``key: rest`` respecting quotes and flow collections."""
    quote = None
    depth = 0
    for index, char in enumerate(content):
        if quote is not None:
            if char == quote:
                quote = None
        elif char in "\"'":
            quote = char
        elif char in "[{":
            depth += 1
        elif char in "]}":
            depth -= 1
        elif char == ":" and depth == 0 and (
            index + 1 == len(content) or content[index + 1] in " \t"
        ):
            return content[:index], content[index + 1:]
    return "", ""


class _Line:
    __slots__ = ("no", "indent", "content")

    def __init__(self, no: int, indent: int, content: str) -> None:
        self.no = no
        self.indent = indent
        self.content = content


def _logical_lines(text: str) -> List[_Line]:
    lines: List[_Line] = []
    for no, raw in enumerate(text.splitlines(), start=1):
        if "\t" in raw[: len(raw) - len(raw.lstrip())]:
            raise YamlishError(no, "indent with spaces, not tabs")
        stripped = _strip_comment(raw).rstrip()
        if not stripped.strip():
            continue
        if stripped.strip() == "---":
            if lines:
                raise YamlishError(
                    no, "multi-document streams are not supported"
                )
            continue
        indent = len(stripped) - len(stripped.lstrip())
        lines.append(_Line(no, indent, stripped.strip()))
    return lines


def _parse_block(lines: List[_Line], pos: int, indent: int) -> Tuple[Any, int]:
    """Parse the block starting at ``lines[pos]`` (indent-delimited)."""
    first = lines[pos]
    if first.content.startswith("- ") or first.content == "-":
        return _parse_sequence(lines, pos, first.indent)
    return _parse_mapping(lines, pos, first.indent)


def _parse_sequence(lines: List[_Line], pos: int,
                    indent: int) -> Tuple[List[Any], int]:
    items: List[Any] = []
    while pos < len(lines) and lines[pos].indent == indent:
        line = lines[pos]
        if not (line.content.startswith("- ") or line.content == "-"):
            break
        rest = line.content[1:].strip()
        if rest:
            # "- key: value" opens an inline mapping item.
            key, value = _split_key(rest, line.no)
            if key:
                synthetic = _Line(line.no, indent + 2, rest)
                block = lines[: pos] + [synthetic] + lines[pos + 1:]
                item, pos = _parse_mapping(block, pos, indent + 2)
                items.append(item)
                continue
            items.append(_parse_value(rest, line.no))
            pos += 1
        else:
            pos += 1
            if pos < len(lines) and lines[pos].indent > indent:
                item, pos = _parse_block(lines, pos, lines[pos].indent)
                items.append(item)
            else:
                items.append(None)
    return items, pos


def _parse_mapping(lines: List[_Line], pos: int,
                   indent: int) -> Tuple[dict, int]:
    out: dict = {}
    while pos < len(lines) and lines[pos].indent == indent:
        line = lines[pos]
        if line.content.startswith("- ") or line.content == "-":
            break
        key_text, rest = _split_key(line.content, line.no)
        if not key_text and not rest:
            raise YamlishError(
                line.no, f"expected 'key: value', got {line.content!r}"
            )
        key = str(_parse_scalar(key_text, line.no))
        if key in out:
            raise YamlishError(line.no, f"duplicate key {key!r}")
        rest = rest.strip()
        if rest:
            out[key] = _parse_value(rest, line.no)
            pos += 1
        else:
            pos += 1
            if pos < len(lines) and lines[pos].indent > indent:
                out[key], pos = _parse_block(lines, pos, lines[pos].indent)
            else:
                out[key] = None
    return out, pos


def loads(text: str) -> Any:
    """Parse a YAML-subset document into plain Python data."""
    lines = _logical_lines(text)
    if not lines:
        return None
    value, pos = _parse_block(lines, 0, lines[0].indent)
    if pos != len(lines):
        line = lines[pos]
        raise YamlishError(
            line.no,
            f"unexpected content {line.content!r} (check indentation)"
        )
    return value
