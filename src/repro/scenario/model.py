"""The scenario document model — frozen, declarative, compiler-facing.

A *scenario* is one level above a campaign: it names a topology, a
traffic model, and a set of fault plans in domain vocabulary ("a line
fabric of three switches", "UDP flood", "swap STOP into GO on a duty
cycle") and leaves the translation into concrete
:class:`~repro.runtime.spec.CampaignSpec` machinery to
:func:`repro.scenario.compile.compile_scenario`.  Every class here is a
frozen dataclass holding scalars and tuples only, so documents hash,
compare, and pickle exactly like the campaign specs they compile into.

Authors normally write scenarios as YAML-subset text (see
:mod:`repro.scenario.yamlish`) or JSON and go through
:func:`repro.scenario.codec.scenario_from_json`; the dataclasses are the
canonical in-memory form both share.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.hw.registers import InjectorConfig
from repro.myrinet.network import FabricSpec

__all__ = [
    "SCENARIO_VERSION",
    "TOPOLOGY_KINDS",
    "TRAFFIC_KINDS",
    "FAULT_KINDS",
    "SWEEP_FIELDS",
    "TopologySpec",
    "TrafficSpec",
    "FaultSpec",
    "SweepSpec",
    "ScenarioExperiment",
    "ScenarioDoc",
]

#: Scenario document format version (the ``scenario:`` header field).
SCENARIO_VERSION = 1

#: Topology vocabularies the compiler understands.
TOPOLOGY_KINDS = ("paper", "star", "line", "tree", "custom")

#: Traffic models, each a preset over the all-pairs workload.
TRAFFIC_KINDS = ("paper", "udp_flood", "ping_pong", "heavy_tail",
                 "mapping_storm")

#: Fault kinds — the :data:`repro.runtime.spec.PLAN_KINDS` vocabulary.
FAULT_KINDS = ("fault", "duty_cycle", "inject_now", "seu")

#: Fields a :class:`SweepSpec` may vary.
SWEEP_FIELDS = ("duration_ms", "on_us", "off_us", "interval_us",
                "mean_interval_us", "payload_size", "send_interval_us",
                "burst_max")


@dataclass(frozen=True, eq=True)
class TopologySpec:
    """Which fabric the scenario runs on.

    ``kind`` selects the generator; only the fields that apply to the
    selected kind are consulted (``hosts`` for ``star``; ``switches`` /
    ``hosts_per_switch`` for ``line``; ``leaves`` / ``hosts_per_leaf``
    for ``tree``; ``custom`` carries an explicit
    :class:`~repro.myrinet.network.FabricSpec`).  ``paper`` is the
    Figure 10 three-node LAN.
    """

    kind: str = "paper"
    hosts: int = 4
    switches: int = 2
    hosts_per_switch: int = 2
    leaves: int = 2
    hosts_per_leaf: int = 2
    ports: int = 8
    instrumented_host: Optional[str] = None
    custom: Optional[FabricSpec] = None


@dataclass(frozen=True, eq=True)
class TrafficSpec:
    """Which load the hosts generate while faults are active.

    ``kind`` picks a preset; the optional fields override individual
    preset knobs (``None`` keeps the preset value).
    """

    kind: str = "paper"
    payload_size: Optional[int] = None
    send_interval_us: Optional[float] = None
    burst_max: Optional[int] = None
    burst_alpha: Optional[float] = None
    flood_ping: Optional[bool] = None
    #: ``mapping_storm``: how often the mapper re-maps the network.
    map_interval_ms: Optional[float] = None


@dataclass(frozen=True, eq=True)
class FaultSpec:
    """One named fault injector activation within an experiment.

    ``swap`` is sugar for the paper's control-symbol corruption
    (``("STOP", "GO")`` compiles through
    :func:`repro.core.faults.control_symbol_swap`); ``config`` carries an
    explicit injector register file instead.  ``seu`` faults need
    neither — they synthesize per-flip configurations and derive their
    rng seed from the scenario seed when ``seed`` is left ``None``.
    """

    id: str
    kind: str = "fault"
    direction: str = "R"
    swap: Optional[Tuple[str, str]] = None
    config: Optional[InjectorConfig] = None
    use_serial: bool = False
    rearm_interval_us: Optional[float] = None
    on_us: float = 1000.0
    off_us: float = 3000.0
    interval_us: float = 1000.0
    mean_interval_us: float = 2000.0
    seed: Optional[int] = None
    flip_control_bit_probability: float = 0.0


@dataclass(frozen=True, eq=True)
class SweepSpec:
    """Expand an experiment over a parameter axis (one value each)."""

    field: str
    values: Tuple[float, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "values", tuple(self.values))


@dataclass(frozen=True, eq=True)
class ScenarioExperiment:
    """One experiment template: faults + optional overrides + sweep."""

    name: str
    faults: Tuple[FaultSpec, ...] = ()
    traffic: Optional[TrafficSpec] = None
    duration_ms: Optional[float] = None
    drain_ms: Optional[float] = None
    sweep: Optional[SweepSpec] = None
    params: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))


@dataclass(frozen=True, eq=True)
class ScenarioDoc:
    """A complete scenario document (the in-memory form of the DSL)."""

    name: str
    description: str = ""
    seed: int = 0
    capture: bool = False
    topology: TopologySpec = field(default_factory=TopologySpec)
    traffic: TrafficSpec = field(default_factory=TrafficSpec)
    duration_ms: float = 10.0
    drain_ms: float = 5.0
    settle_ms: float = 5.0
    experiments: Tuple[ScenarioExperiment, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "experiments", tuple(self.experiments))
