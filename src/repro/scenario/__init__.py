"""Declarative scenarios: the front door of the campaign runtime.

``repro.scenario`` turns *scenario documents* — topology + traffic model
+ fault plans, written as YAML-subset text, JSON, or frozen dataclasses
— into the :class:`~repro.runtime.spec.CampaignSpec` objects the rest of
the system already runs, journals, serves, and analyzes.  The package
splits cleanly:

* :mod:`repro.scenario.model` — the frozen document dataclasses;
* :mod:`repro.scenario.codec` — strict JSON codec with JSON-pointer
  error locations;
* :mod:`repro.scenario.yamlish` — stdlib YAML-subset loader;
* :mod:`repro.scenario.compile` — the pure document → campaign compiler;
* :mod:`repro.scenario.library` — named built-in scenarios, each pinned
  by a golden compile digest;
* :mod:`repro.scenario.golden` — the digest corpus behind the CI gate.
"""

from repro.scenario.compile import (
    MAX_FABRIC_HOSTS,
    MAX_FABRIC_SWITCHES,
    compile_scenario,
)
from repro.scenario.codec import scenario_from_json, scenario_to_json
from repro.scenario.library import list_scenarios, load_scenario
from repro.scenario.model import (
    SCENARIO_VERSION,
    FaultSpec,
    ScenarioDoc,
    ScenarioExperiment,
    SweepSpec,
    TopologySpec,
    TrafficSpec,
)

__all__ = [
    "SCENARIO_VERSION",
    "MAX_FABRIC_HOSTS",
    "MAX_FABRIC_SWITCHES",
    "ScenarioDoc",
    "ScenarioExperiment",
    "TopologySpec",
    "TrafficSpec",
    "FaultSpec",
    "SweepSpec",
    "compile_scenario",
    "scenario_from_json",
    "scenario_to_json",
    "list_scenarios",
    "load_scenario",
]
