"""The scenario compiler: declarative documents → campaign specs.

:func:`compile_scenario` is a **pure function** from a
:class:`~repro.scenario.model.ScenarioDoc` (or its plain-dict form) to a
:class:`~repro.runtime.spec.CampaignSpec`.  It allocates nothing global,
draws no randomness of its own (SEU seeds are *derived* from the
scenario seed with the campaign seed rule), and therefore compiles the
same document to an equal spec every time — which is what lets library
scenarios be gated by golden digests.

Compilation errors are :class:`~repro.errors.ScenarioError` with a
JSON-pointer location, same as the codec: the caller cannot tell (and
does not care) whether a document died in parsing or in compilation.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.core.faults import control_symbol_swap
from repro.core.monitor import MonitorConfig
from repro.errors import ConfigurationError, ScenarioError
from repro.hw.registers import MatchMode
from repro.myrinet.network import (
    FabricSpec,
    line_fabric,
    star_fabric,
    tree_fabric,
)
from repro.myrinet.symbols import GAP, GO, IDLE, STOP
from repro.nftape.experiment import TestbedOptions
from repro.nftape.workload import WorkloadConfig
from repro.runtime.seeding import derive_seed
from repro.runtime.spec import CampaignSpec, ExperimentSpec, PlanSpec
from repro.scenario.codec import scenario_from_json
from repro.scenario.model import (
    FaultSpec,
    ScenarioDoc,
    ScenarioExperiment,
    TrafficSpec,
)
from repro.sim.timebase import MS, US

__all__ = [
    "MAX_FABRIC_HOSTS",
    "MAX_FABRIC_SWITCHES",
    "compile_scenario",
]

#: Budget caps: fabrics compile to full simulations, and settling a
#: network grows with hosts × switches — beyond this the document is
#: rejected rather than silently compiling an hours-long campaign.
MAX_FABRIC_HOSTS = 12
MAX_FABRIC_SWITCHES = 6

_SYMBOLS = {"STOP": STOP, "GO": GO, "GAP": GAP, "IDLE": IDLE}

#: Per-kind traffic presets (fields a TrafficSpec override can replace).
_TRAFFIC_PRESETS: Dict[str, Dict[str, Any]] = {
    "paper": {},
    "udp_flood": {"send_interval_us": 4.0, "payload_size": 64},
    "ping_pong": {"send_interval_us": 1000.0, "flood_ping": True},
    "heavy_tail": {"send_interval_us": 500.0, "burst_max": 16,
                   "burst_alpha": 1.3},
    "mapping_storm": {"map_interval_ms": 2.0},
}


def _ps(value_us: float) -> int:
    """Microseconds (possibly fractional) → integer picoseconds."""
    return int(round(value_us * US))


def _ps_ms(value_ms: float) -> int:
    return int(round(value_ms * MS))


def _build_fabric_spec(doc: ScenarioDoc) -> Optional[FabricSpec]:
    topology = doc.topology
    location = "/topology"
    if topology.kind == "paper":
        return None
    if topology.kind == "star":
        fabric = star_fabric(topology.hosts, ports=topology.ports)
    elif topology.kind == "line":
        fabric = line_fabric(topology.switches, topology.hosts_per_switch,
                             ports=topology.ports)
    elif topology.kind == "tree":
        fabric = tree_fabric(topology.leaves, topology.hosts_per_leaf,
                             ports=topology.ports)
    elif topology.kind == "custom":
        if topology.custom is None:
            raise ScenarioError(
                f"{location}/custom", "a custom topology needs a fabric"
            )
        fabric = topology.custom
    else:
        raise ScenarioError(
            f"{location}/kind", f"unknown topology kind {topology.kind!r}"
        )
    try:
        fabric.validate()
    except ConfigurationError as exc:
        raise ScenarioError(location, str(exc)) from None
    if len(fabric.hosts) > MAX_FABRIC_HOSTS:
        raise ScenarioError(
            location,
            f"{len(fabric.hosts)} hosts exceeds the fabric budget of "
            f"{MAX_FABRIC_HOSTS}"
        )
    if len(fabric.switches) > MAX_FABRIC_SWITCHES:
        raise ScenarioError(
            location,
            f"{len(fabric.switches)} switches exceeds the fabric budget "
            f"of {MAX_FABRIC_SWITCHES}"
        )
    return fabric


def _merge_traffic(base: TrafficSpec,
                   override: Optional[TrafficSpec]) -> TrafficSpec:
    """Experiment-level traffic replaces the scenario-level model."""
    if override is None:
        return base
    return override


def _effective_traffic(traffic: TrafficSpec, location: str) -> Dict[str, Any]:
    """Preset values with the spec's explicit overrides applied."""
    if traffic.kind not in _TRAFFIC_PRESETS:
        raise ScenarioError(
            f"{location}/kind", f"unknown traffic kind {traffic.kind!r}"
        )
    values = dict(_TRAFFIC_PRESETS[traffic.kind])
    for key in ("payload_size", "send_interval_us", "burst_max",
                "burst_alpha", "flood_ping", "map_interval_ms"):
        override = getattr(traffic, key)
        if override is not None:
            values[key] = override
    return values


def _build_workload(values: Dict[str, Any]) -> WorkloadConfig:
    kwargs: Dict[str, Any] = {}
    if "payload_size" in values:
        kwargs["payload_size"] = int(values["payload_size"])
    if "send_interval_us" in values:
        kwargs["send_interval_ps"] = _ps(values["send_interval_us"])
    if "flood_ping" in values:
        kwargs["flood_ping"] = bool(values["flood_ping"])
    if "burst_max" in values:
        kwargs["burst_max"] = int(values["burst_max"])
    if "burst_alpha" in values:
        kwargs["burst_alpha"] = float(values["burst_alpha"])
    return WorkloadConfig(**kwargs)


def _build_plan(fault: FaultSpec, location: str, *,
                scenario_seed: int, experiment_index: int,
                experiment_name: str) -> PlanSpec:
    config = None
    if fault.kind != "seu":
        if fault.swap is not None and fault.config is not None:
            raise ScenarioError(
                location, "give either swap or config, not both"
            )
        if fault.swap is not None:
            source, target = fault.swap
            for position, name in enumerate(fault.swap):
                if name not in _SYMBOLS:
                    raise ScenarioError(
                        f"{location}/swap/{position}",
                        f"unknown control symbol {name!r}; expected one "
                        f"of {sorted(_SYMBOLS)}"
                    )
            match_mode = (
                MatchMode.ONCE if fault.kind == "fault"
                and fault.rearm_interval_us is not None
                else MatchMode.ON
            )
            config = control_symbol_swap(
                _SYMBOLS[source], _SYMBOLS[target], match_mode
            )
        elif fault.config is not None:
            config = fault.config
        else:
            raise ScenarioError(
                location,
                f"fault kind {fault.kind!r} needs a swap or a config"
            )
    elif fault.swap is not None or fault.config is not None:
        raise ScenarioError(
            location, "seu faults synthesize their own configs; "
            "drop swap/config"
        )
    seed = fault.seed
    if seed is None:
        seed = derive_seed(
            scenario_seed, experiment_index,
            f"{experiment_name}:{fault.id}",
        )
    try:
        return PlanSpec(
            kind=fault.kind,
            direction=fault.direction,
            config=config,
            use_serial=fault.use_serial,
            rearm_interval_ps=(
                None if fault.rearm_interval_us is None
                else _ps(fault.rearm_interval_us)
            ),
            on_ps=_ps(fault.on_us),
            off_ps=_ps(fault.off_us),
            interval_ps=_ps(fault.interval_us),
            mean_interval_ps=_ps(fault.mean_interval_us),
            seed=seed,
            flip_control_bit_probability=(
                fault.flip_control_bit_probability
            ),
        )
    except ConfigurationError as exc:
        raise ScenarioError(location, str(exc)) from None


def _check_faults(experiment: ScenarioExperiment, location: str) -> None:
    seen_ids: Dict[str, int] = {}
    seen_directions: Dict[str, str] = {}
    for index, fault in enumerate(experiment.faults):
        if fault.id in seen_ids:
            raise ScenarioError(
                f"{location}/faults/{index}/id",
                f"duplicate injector id {fault.id!r} "
                f"(first used at {location}/faults/{seen_ids[fault.id]})"
            )
        seen_ids[fault.id] = index
        for direction in fault.direction:
            if direction in seen_directions:
                raise ScenarioError(
                    f"{location}/faults/{index}/direction",
                    f"injector direction {direction!r} already driven by "
                    f"fault {seen_directions[direction]!r}; simultaneous "
                    "faults need distinct directions"
                )
            seen_directions[direction] = fault.id


def _sweep_points(
    experiment: ScenarioExperiment,
) -> List[Tuple[str, Optional[str], Optional[float]]]:
    """``(name, swept_field, value)`` rows, one per compiled experiment."""
    if experiment.sweep is None:
        return [(experiment.name, None, None)]
    points = []
    for value in experiment.sweep.values:
        rendered = int(value) if float(value).is_integer() else value
        points.append((
            f"{experiment.name}@{experiment.sweep.field}={rendered}",
            experiment.sweep.field,
            float(value),
        ))
    return points


def _apply_sweep_to_fault(fault: FaultSpec, field_name: str,
                          value: float) -> FaultSpec:
    if field_name == "on_us":
        return dataclasses.replace(fault, on_us=value)
    if field_name == "off_us":
        return dataclasses.replace(fault, off_us=value)
    if field_name == "interval_us":
        return dataclasses.replace(fault, interval_us=value)
    if field_name == "mean_interval_us":
        return dataclasses.replace(fault, mean_interval_us=value)
    return fault


def compile_scenario(
    doc: Union[ScenarioDoc, Dict[str, Any]],
) -> CampaignSpec:
    """Compile a scenario document into a runnable campaign spec.

    Accepts either the dataclass form or plain JSON data (which goes
    through the strict codec first).  Pure and deterministic: equal
    documents compile to equal specs.
    """
    if isinstance(doc, dict):
        doc = scenario_from_json(doc)
    if not isinstance(doc, ScenarioDoc):
        raise ScenarioError(
            "/", f"expected a scenario document, got {type(doc).__name__}"
        )
    if not doc.experiments:
        raise ScenarioError("/experiments", "scenario has no experiments")

    fabric = _build_fabric_spec(doc)
    instrumented_host = doc.topology.instrumented_host
    if fabric is not None:
        if instrumented_host is None:
            instrumented_host = fabric.hosts[0]
        elif instrumented_host not in fabric.hosts:
            raise ScenarioError(
                "/topology/instrumented_host",
                f"{instrumented_host!r} is not one of the fabric's hosts"
            )
    elif instrumented_host is None:
        instrumented_host = "pc"

    device_kwargs: Dict[str, Any] = {}
    if doc.capture:
        device_kwargs["monitor_config"] = MonitorConfig(
            enabled=True, pre_symbols=128, post_symbols=128
        )

    specs: List[ExperimentSpec] = []
    experiment_index = 0
    for doc_index, experiment in enumerate(doc.experiments):
        location = f"/experiments/{doc_index}"
        if not experiment.name:
            raise ScenarioError(f"{location}/name", "must not be empty")
        _check_faults(experiment, location)
        traffic = _merge_traffic(doc.traffic, experiment.traffic)
        traffic_location = (
            f"{location}/traffic" if experiment.traffic is not None
            else "/traffic"
        )
        for name, swept_field, swept_value in _sweep_points(experiment):
            values = _effective_traffic(traffic, traffic_location)
            duration_ms = (
                experiment.duration_ms
                if experiment.duration_ms is not None
                else doc.duration_ms
            )
            drain_ms = (
                experiment.drain_ms
                if experiment.drain_ms is not None
                else doc.drain_ms
            )
            faults = experiment.faults
            if swept_field is not None and swept_value is not None:
                if swept_field == "duration_ms":
                    duration_ms = swept_value
                elif swept_field in ("payload_size", "send_interval_us",
                                     "burst_max"):
                    values[swept_field] = swept_value
                else:
                    faults = tuple(
                        _apply_sweep_to_fault(f, swept_field, swept_value)
                        for f in faults
                    )

            map_interval_ms = values.pop("map_interval_ms", None)
            testbed_kwargs: Dict[str, Any] = {
                "seed": doc.seed,
                "instrumented_host": instrumented_host,
                "settle_ps": _ps_ms(doc.settle_ms),
                "device_kwargs": dict(device_kwargs),
            }
            if fabric is not None:
                testbed_kwargs["topology"] = fabric
                # Fabric campaigns re-map often enough that experiments
                # see routes without waiting out the paper's interval.
                testbed_kwargs["map_interval_ps"] = 25 * MS
            if map_interval_ms is not None:
                testbed_kwargs["map_interval_ps"] = _ps_ms(map_interval_ms)

            plans = tuple(
                _build_plan(
                    fault, f"{location}/faults/{fault_index}",
                    scenario_seed=doc.seed,
                    experiment_index=experiment_index,
                    experiment_name=name,
                )
                for fault_index, fault in enumerate(faults)
            )
            params: Dict[str, Any] = {
                "scenario": doc.name,
                "traffic": traffic.kind,
                "topology": doc.topology.kind,
            }
            if plans:
                params["faults"] = ",".join(f.id for f in faults)
            if swept_field is not None:
                params["sweep_field"] = swept_field
                params["sweep_value"] = swept_value
            params.update(experiment.params)
            specs.append(ExperimentSpec(
                name=name,
                duration_ps=_ps_ms(duration_ms),
                plan=plans[0] if plans else None,
                extra_plans=plans[1:],
                workload=_build_workload(values),
                testbed=TestbedOptions(**testbed_kwargs),
                drain_ps=_ps_ms(drain_ms),
                params=params,
            ))
            experiment_index += 1
    return CampaignSpec.build(doc.name, specs, base_seed=doc.seed)
