"""Golden compile digests for the scenario library.

Every library scenario's compiled :class:`CampaignSpec` is reduced to a
single blake2b digest over its canonical codec JSON and pinned in
``tests/golden/scenario_<name>.expected`` (one hex line per file).  The
``repro.cli golden`` gate checks these alongside the fast-path run
digests, so any change to the compiler, the traffic presets, the fabric
generators, or a library file shows up as a failing diff — and is
re-pinned deliberately with ``--regen``.

A *compile* digest, not a *run* digest: it pins the contract "this
document means this campaign" cheaply enough to cover the whole library
on every CI run.  The two cheapest scenarios additionally run end-to-end
in the CI ``scenario`` job.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.runtime.spec_codec import spec_to_json
from repro.scenario.compile import compile_scenario
from repro.scenario.library import list_scenarios, load_scenario

__all__ = [
    "compile_digest",
    "check_scenario_corpus",
    "regen_scenario_corpus",
]


def compile_digest(name: str) -> str:
    """The canonical digest of library scenario ``name``'s compilation."""
    spec = compile_scenario(load_scenario(name))
    canonical = json.dumps(
        spec_to_json(spec), sort_keys=True, separators=(",", ":")
    )
    return hashlib.blake2b(
        canonical.encode("utf-8"), digest_size=16
    ).hexdigest()


def _expected_path(directory: Path, name: str) -> Path:
    return directory / f"scenario_{name}.expected"


def _select(only: Optional[Iterable[str]]) -> List[str]:
    names = list_scenarios()
    if only is None:
        return names
    requested = list(only)
    unknown = sorted(set(requested) - set(names))
    if unknown:
        raise ConfigurationError(
            f"unknown scenario(s) {unknown}; available: {names}"
        )
    return [name for name in names if name in requested]


def check_scenario_corpus(
    directory: Path, only: Optional[Iterable[str]] = None,
) -> Tuple[bool, List[str]]:
    """Compare every library scenario against its committed digest.

    Returns ``(ok, messages)`` — one message per scenario, prefixed
    ``ok``/``MISSING``/``MISMATCH`` in the same style as the fast-path
    golden corpus.
    """
    ok = True
    messages: List[str] = []
    for name in _select(only):
        digest = compile_digest(name)
        path = _expected_path(directory, name)
        if not path.is_file():
            ok = False
            messages.append(
                f"MISSING scenario {name}: no {path.name}; "
                f"run golden --regen (computed {digest})"
            )
            continue
        expected = path.read_text(encoding="utf-8").strip()
        if expected != digest:
            ok = False
            messages.append(
                f"MISMATCH scenario {name}: expected {expected}, "
                f"computed {digest}"
            )
        else:
            messages.append(f"ok scenario {name}: {digest}")
    return ok, messages


def regen_scenario_corpus(
    directory: Path, only: Optional[Iterable[str]] = None,
) -> Dict[str, str]:
    """Recompute and rewrite the committed scenario digests."""
    directory.mkdir(parents=True, exist_ok=True)
    written: Dict[str, str] = {}
    for name in _select(only):
        digest = compile_digest(name)
        _expected_path(directory, name).write_text(
            digest + "\n", encoding="utf-8"
        )
        written[name] = digest
    return written
