"""The built-in scenario library.

Each ``.yaml`` file next to this module is one named scenario; the name
is the file stem.  :func:`list_scenarios` enumerates them,
:func:`load_scenario` parses one into a
:class:`~repro.scenario.model.ScenarioDoc` — from which
:func:`~repro.scenario.compile.compile_scenario` produces the runnable
campaign.  Every library scenario's compiled form is pinned by a golden
digest (``tests/golden/scenario_<name>.expected``, checked in CI via
``repro.cli golden``), so a change to the compiler, the presets, or a
library file is always a *visible* change.
"""

from __future__ import annotations

from pathlib import Path
from typing import List

from repro.errors import ScenarioError
from repro.scenario.codec import scenario_from_json
from repro.scenario.model import ScenarioDoc
from repro.scenario.yamlish import loads

__all__ = ["list_scenarios", "load_scenario", "scenario_path"]

_LIBRARY_DIR = Path(__file__).resolve().parent


def list_scenarios() -> List[str]:
    """Names of every library scenario, sorted."""
    return sorted(
        path.stem for path in _LIBRARY_DIR.glob("*.yaml")
    )


def scenario_path(name: str) -> Path:
    """Filesystem path of library scenario ``name``."""
    path = _LIBRARY_DIR / f"{name}.yaml"
    if not path.is_file():
        raise ScenarioError(
            "/",
            f"unknown library scenario {name!r}; "
            f"available: {', '.join(list_scenarios())}"
        )
    return path


def load_scenario(name: str) -> ScenarioDoc:
    """Parse library scenario ``name`` into its document form."""
    text = scenario_path(name).read_text(encoding="utf-8")
    return scenario_from_json(loads(text))
