"""Strict dict/JSON codec for scenario documents.

Mirrors :mod:`repro.runtime.spec_codec`'s error discipline, with one
upgrade: every failure raises :class:`~repro.errors.ScenarioError`
carrying a JSON-pointer-style location (``/experiments/0/faults/1/kind``)
so scenario authors see exactly which node of their document is wrong —
never a bare ``KeyError`` and never a message without an address.

``scenario_from_json(scenario_to_json(doc)) == doc`` holds for every
representable document.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from repro.errors import ConfigurationError, ScenarioError
from repro.runtime.spec_codec import _decode_injector, _encode_injector
from repro.scenario.model import (
    FAULT_KINDS,
    SCENARIO_VERSION,
    SWEEP_FIELDS,
    TOPOLOGY_KINDS,
    TRAFFIC_KINDS,
    FaultSpec,
    ScenarioDoc,
    ScenarioExperiment,
    SweepSpec,
    TopologySpec,
    TrafficSpec,
)
from repro.myrinet.network import FabricSpec

__all__ = ["scenario_to_json", "scenario_from_json"]

_MISSING = object()


def _require_mapping(doc: Any, location: str) -> Dict[str, Any]:
    if not isinstance(doc, dict):
        raise ScenarioError(
            location, f"expected a mapping, got {type(doc).__name__}"
        )
    return doc


def _reject_unknown(doc: Dict[str, Any], known: Tuple[str, ...],
                    location: str) -> None:
    unknown = sorted(set(doc) - set(known))
    if unknown:
        raise ScenarioError(
            location,
            f"unknown field(s) {unknown}; expected only {sorted(known)}"
        )


def _take(doc: Dict[str, Any], key: str, location: str,
          kind: type, default: Any = _MISSING,
          allow_none: bool = False) -> Any:
    """Fetch ``key`` with type enforcement and a pointered error."""
    if key not in doc:
        if default is _MISSING:
            raise ScenarioError(f"{location}/{key}", "is required")
        return default
    value = doc[key]
    if value is None and allow_none:
        return None
    if kind is float and isinstance(value, int) \
            and not isinstance(value, bool):
        return float(value)
    if kind is not bool and isinstance(value, bool):
        raise ScenarioError(
            f"{location}/{key}",
            f"expected {kind.__name__}, got bool"
        )
    if not isinstance(value, kind):
        raise ScenarioError(
            f"{location}/{key}",
            f"expected {kind.__name__}, got {type(value).__name__}"
        )
    return value


def _take_enum(doc: Dict[str, Any], key: str, location: str,
               allowed: Tuple[str, ...], default: Any = _MISSING) -> Any:
    value = _take(doc, key, location, str, default=default)
    if value is not default and value not in allowed:
        raise ScenarioError(
            f"{location}/{key}",
            f"unknown {key} {value!r}; expected one of {sorted(allowed)}"
        )
    return value


# ---------------------------------------------------------------------------
# decode
# ---------------------------------------------------------------------------


def _decode_topology(doc: Any, location: str) -> TopologySpec:
    doc = _require_mapping(doc, location)
    _reject_unknown(
        doc,
        ("kind", "hosts", "switches", "hosts_per_switch", "leaves",
         "hosts_per_leaf", "ports", "instrumented_host", "custom"),
        location,
    )
    kind = _take_enum(doc, "kind", location, TOPOLOGY_KINDS,
                      default="paper")
    kwargs: Dict[str, Any] = {"kind": kind}
    for key in ("hosts", "switches", "hosts_per_switch", "leaves",
                "hosts_per_leaf", "ports"):
        if key in doc:
            kwargs[key] = _take(doc, key, location, int)
    if "instrumented_host" in doc:
        kwargs["instrumented_host"] = _take(
            doc, "instrumented_host", location, str, allow_none=True,
            default=None,
        )
    if kind == "custom":
        custom = _require_mapping(
            doc.get("custom"), f"{location}/custom"
        )
        _reject_unknown(
            custom, ("hosts", "switches", "host_links", "trunks"),
            f"{location}/custom",
        )

        def _rows(key: str, width: int) -> Tuple[tuple, ...]:
            raw = custom.get(key, [])
            if not isinstance(raw, list) or any(
                not isinstance(row, list) or len(row) != width
                for row in raw
            ):
                raise ScenarioError(
                    f"{location}/custom/{key}",
                    f"must be a list of {width}-element lists"
                )
            return tuple(tuple(row) for row in raw)

        hosts = custom.get("hosts")
        if not isinstance(hosts, list) or any(
            not isinstance(h, str) for h in hosts
        ):
            raise ScenarioError(
                f"{location}/custom/hosts", "must be a list of host names"
            )
        try:
            kwargs["custom"] = FabricSpec(
                hosts=tuple(hosts),
                switches=tuple(
                    (str(n), int(p)) for n, p in _rows("switches", 2)
                ),
                host_links=tuple(
                    (str(h), str(s), int(p))
                    for h, s, p in _rows("host_links", 3)
                ),
                trunks=tuple(
                    (str(a), int(pa), str(b), int(pb))
                    for a, pa, b, pb in _rows("trunks", 4)
                ),
            )
        except (TypeError, ValueError) as exc:
            raise ScenarioError(f"{location}/custom", str(exc)) from None
    elif "custom" in doc:
        raise ScenarioError(
            f"{location}/custom",
            f"only kind 'custom' takes a custom fabric (kind is {kind!r})"
        )
    return TopologySpec(**kwargs)


def _decode_traffic(doc: Any, location: str) -> TrafficSpec:
    doc = _require_mapping(doc, location)
    _reject_unknown(
        doc,
        ("kind", "payload_size", "send_interval_us", "burst_max",
         "burst_alpha", "flood_ping", "map_interval_ms"),
        location,
    )
    kwargs: Dict[str, Any] = {
        "kind": _take_enum(doc, "kind", location, TRAFFIC_KINDS,
                           default="paper"),
    }
    for key in ("payload_size", "burst_max"):
        if key in doc:
            kwargs[key] = _take(doc, key, location, int)
    for key in ("send_interval_us", "burst_alpha", "map_interval_ms"):
        if key in doc:
            kwargs[key] = _take(doc, key, location, float)
    if "flood_ping" in doc:
        kwargs["flood_ping"] = _take(doc, "flood_ping", location, bool)
    return TrafficSpec(**kwargs)


def _decode_fault(doc: Any, location: str) -> FaultSpec:
    doc = _require_mapping(doc, location)
    _reject_unknown(
        doc,
        ("id", "kind", "direction", "swap", "config", "use_serial",
         "rearm_interval_us", "on_us", "off_us", "interval_us",
         "mean_interval_us", "seed", "flip_control_bit_probability"),
        location,
    )
    kwargs: Dict[str, Any] = {
        "id": _take(doc, "id", location, str),
        "kind": _take_enum(doc, "kind", location, FAULT_KINDS,
                           default="fault"),
    }
    if "direction" in doc:
        kwargs["direction"] = _take(doc, "direction", location, str)
    if "swap" in doc:
        swap = doc["swap"]
        if (not isinstance(swap, list) or len(swap) != 2
                or any(not isinstance(s, str) for s in swap)):
            raise ScenarioError(
                f"{location}/swap",
                "must be a [SOURCE, TARGET] pair of control symbol names"
            )
        kwargs["swap"] = (swap[0], swap[1])
    if "config" in doc and doc["config"] is not None:
        try:
            kwargs["config"] = _decode_injector(doc["config"], "config")
        except ConfigurationError as exc:
            raise ScenarioError(f"{location}/config", str(exc)) from None
    if "use_serial" in doc:
        kwargs["use_serial"] = _take(doc, "use_serial", location, bool)
    if "rearm_interval_us" in doc:
        kwargs["rearm_interval_us"] = _take(
            doc, "rearm_interval_us", location, float, allow_none=True,
            default=None,
        )
    for key in ("on_us", "off_us", "interval_us", "mean_interval_us",
                "flip_control_bit_probability"):
        if key in doc:
            kwargs[key] = _take(doc, key, location, float)
    if "seed" in doc:
        kwargs["seed"] = _take(doc, "seed", location, int,
                               allow_none=True, default=None)
    return FaultSpec(**kwargs)


def _decode_sweep(doc: Any, location: str) -> SweepSpec:
    doc = _require_mapping(doc, location)
    _reject_unknown(doc, ("field", "values"), location)
    name = _take(doc, "field", location, str)
    if name not in SWEEP_FIELDS:
        raise ScenarioError(
            f"{location}/field",
            f"unknown sweep field {name!r}; "
            f"expected one of {sorted(SWEEP_FIELDS)}"
        )
    values = doc.get("values")
    if (not isinstance(values, list) or not values or any(
            isinstance(v, bool) or not isinstance(v, (int, float))
            for v in values)):
        raise ScenarioError(
            f"{location}/values", "must be a non-empty list of numbers"
        )
    return SweepSpec(field=name, values=tuple(float(v) for v in values))


def _decode_experiment(doc: Any, location: str) -> ScenarioExperiment:
    doc = _require_mapping(doc, location)
    _reject_unknown(
        doc,
        ("name", "faults", "traffic", "duration_ms", "drain_ms",
         "sweep", "params"),
        location,
    )
    kwargs: Dict[str, Any] = {
        "name": _take(doc, "name", location, str),
    }
    faults = doc.get("faults", [])
    if not isinstance(faults, list):
        raise ScenarioError(f"{location}/faults", "must be a list")
    kwargs["faults"] = tuple(
        _decode_fault(entry, f"{location}/faults/{index}")
        for index, entry in enumerate(faults)
    )
    if doc.get("traffic") is not None:
        kwargs["traffic"] = _decode_traffic(
            doc["traffic"], f"{location}/traffic"
        )
    for key in ("duration_ms", "drain_ms"):
        if key in doc:
            kwargs[key] = _take(doc, key, location, float,
                                allow_none=True, default=None)
    if doc.get("sweep") is not None:
        kwargs["sweep"] = _decode_sweep(doc["sweep"], f"{location}/sweep")
    if "params" in doc:
        params = _require_mapping(doc["params"], f"{location}/params")
        for key, value in params.items():
            if value is not None and not isinstance(
                value, (bool, int, float, str)
            ):
                raise ScenarioError(
                    f"{location}/params/{key}",
                    "params carry scalars only"
                )
        kwargs["params"] = dict(params)
    return ScenarioExperiment(**kwargs)


def scenario_from_json(doc: Any) -> ScenarioDoc:
    """Reconstruct a :class:`ScenarioDoc` from plain JSON data.

    Strict: unknown fields, wrong types, unknown kinds, and version
    mismatches all raise :class:`~repro.errors.ScenarioError` with a
    JSON-pointer location.
    """
    doc = _require_mapping(doc, "/")
    _reject_unknown(
        doc,
        ("scenario", "name", "description", "seed", "capture", "topology",
         "traffic", "duration_ms", "drain_ms", "settle_ms",
         "experiments"),
        "/",
    )
    version = _take(doc, "scenario", "/", int, default=SCENARIO_VERSION)
    if version != SCENARIO_VERSION:
        raise ScenarioError(
            "/scenario",
            f"version {version!r} is not supported "
            f"(this build speaks {SCENARIO_VERSION})"
        )
    kwargs: Dict[str, Any] = {
        "name": _take(doc, "name", "/", str),
    }
    if "description" in doc:
        kwargs["description"] = _take(doc, "description", "/", str)
    if "seed" in doc:
        kwargs["seed"] = _take(doc, "seed", "/", int)
    if "capture" in doc:
        kwargs["capture"] = _take(doc, "capture", "/", bool)
    if doc.get("topology") is not None:
        kwargs["topology"] = _decode_topology(doc["topology"], "/topology")
    if doc.get("traffic") is not None:
        kwargs["traffic"] = _decode_traffic(doc["traffic"], "/traffic")
    for key in ("duration_ms", "drain_ms", "settle_ms"):
        if key in doc:
            kwargs[key] = _take(doc, key, "/", float)
    experiments = doc.get("experiments", [])
    if not isinstance(experiments, list) or not experiments:
        raise ScenarioError(
            "/experiments", "must be a non-empty list of experiments"
        )
    kwargs["experiments"] = tuple(
        _decode_experiment(entry, f"/experiments/{index}")
        for index, entry in enumerate(experiments)
    )
    return ScenarioDoc(**kwargs)


# ---------------------------------------------------------------------------
# encode
# ---------------------------------------------------------------------------


def _prune(doc: Dict[str, Any]) -> Dict[str, Any]:
    """Drop ``None`` values — absent and null decode identically."""
    return {key: value for key, value in doc.items() if value is not None}


def _encode_topology(topology: TopologySpec) -> Dict[str, Any]:
    doc: Dict[str, Any] = {"kind": topology.kind}
    if topology.kind == "star":
        doc["hosts"] = topology.hosts
        doc["ports"] = topology.ports
    elif topology.kind == "line":
        doc["switches"] = topology.switches
        doc["hosts_per_switch"] = topology.hosts_per_switch
        doc["ports"] = topology.ports
    elif topology.kind == "tree":
        doc["leaves"] = topology.leaves
        doc["hosts_per_leaf"] = topology.hosts_per_leaf
        doc["ports"] = topology.ports
    elif topology.kind == "custom" and topology.custom is not None:
        doc["custom"] = {
            "hosts": list(topology.custom.hosts),
            "switches": [list(s) for s in topology.custom.switches],
            "host_links": [list(l) for l in topology.custom.host_links],
            "trunks": [list(t) for t in topology.custom.trunks],
        }
    if topology.instrumented_host is not None:
        doc["instrumented_host"] = topology.instrumented_host
    return doc


def _encode_traffic(traffic: TrafficSpec) -> Dict[str, Any]:
    return _prune({
        "kind": traffic.kind,
        "payload_size": traffic.payload_size,
        "send_interval_us": traffic.send_interval_us,
        "burst_max": traffic.burst_max,
        "burst_alpha": traffic.burst_alpha,
        "flood_ping": traffic.flood_ping,
        "map_interval_ms": traffic.map_interval_ms,
    })


def _encode_fault(fault: FaultSpec) -> Dict[str, Any]:
    doc = _prune({
        "id": fault.id,
        "kind": fault.kind,
        "direction": fault.direction,
        "swap": None if fault.swap is None else list(fault.swap),
        "config": (
            None if fault.config is None
            else _encode_injector(fault.config)
        ),
        "rearm_interval_us": fault.rearm_interval_us,
        "seed": fault.seed,
    })
    doc["use_serial"] = fault.use_serial
    doc["on_us"] = fault.on_us
    doc["off_us"] = fault.off_us
    doc["interval_us"] = fault.interval_us
    doc["mean_interval_us"] = fault.mean_interval_us
    doc["flip_control_bit_probability"] = (
        fault.flip_control_bit_probability
    )
    return doc


def _encode_experiment(experiment: ScenarioExperiment) -> Dict[str, Any]:
    doc: Dict[str, Any] = {"name": experiment.name}
    if experiment.faults:
        doc["faults"] = [_encode_fault(f) for f in experiment.faults]
    if experiment.traffic is not None:
        doc["traffic"] = _encode_traffic(experiment.traffic)
    if experiment.duration_ms is not None:
        doc["duration_ms"] = experiment.duration_ms
    if experiment.drain_ms is not None:
        doc["drain_ms"] = experiment.drain_ms
    if experiment.sweep is not None:
        doc["sweep"] = {
            "field": experiment.sweep.field,
            "values": list(experiment.sweep.values),
        }
    if experiment.params:
        doc["params"] = dict(experiment.params)
    return doc


def scenario_to_json(doc: ScenarioDoc) -> Dict[str, Any]:
    """The plain-JSON form of ``doc`` (round-trips losslessly)."""
    out: Dict[str, Any] = {
        "scenario": SCENARIO_VERSION,
        "name": doc.name,
    }
    if doc.description:
        out["description"] = doc.description
    out["seed"] = doc.seed
    out["capture"] = doc.capture
    out["topology"] = _encode_topology(doc.topology)
    out["traffic"] = _encode_traffic(doc.traffic)
    out["duration_ms"] = doc.duration_ms
    out["drain_ms"] = doc.drain_ms
    out["settle_ms"] = doc.settle_ms
    out["experiments"] = [
        _encode_experiment(e) for e in doc.experiments
    ]
    return out
