"""The per-experiment unit of work, shared by every executor.

One :class:`ExperimentJob` fully describes one experiment run: the
(picklable) spec, the derived seed, the attempt number, and where the
shard's artifacts go.  :func:`execute_job` is **the** code path that
runs an experiment — the serial executor calls it in-process, the
pooled executor ships the job to a child process whose entry point
(:func:`run_job_in_child`) calls the very same function — so serial and
sharded campaigns cannot drift apart behaviourally.

When a job carries an artifacts directory, the experiment runs under
its own private :class:`~repro.telemetry.TelemetrySession` and
:class:`~repro.capture.CaptureSession`, dropping shard artifacts that
:mod:`repro.runtime.artifacts` later merges.

Fault-injection hooks
---------------------
Fittingly for a fault-injection framework, the engine can inject faults
into *itself*: two reserved ``params`` keys let tests (and CI) exercise
the crash-retry and timeout paths end-to-end —

* ``"_crash_until_attempt": n`` — the child process dies abruptly
  (``os._exit``) on attempts ``< n``, then succeeds;
* ``"_hang_wall_s": s`` — the child sleeps ``s`` wall seconds before
  running, tripping the per-experiment timeout.

Both only ever fire inside a sacrificial worker process; the in-process
serial executor ignores them.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.capture import CaptureSession
from repro.nftape.results import ExperimentResult
from repro.runtime import artifacts as _artifacts
from repro.runtime.journal import result_to_dict
from repro.runtime.spec import CampaignSpec, ExperimentSpec
from repro.telemetry import TelemetrySession

__all__ = [
    "ExperimentJob",
    "job_for",
    "execute_job",
    "payload_for",
    "run_job_in_child",
    "CRASH_PARAM",
    "HANG_PARAM",
]

#: Reserved params key: crash the worker on attempts below the value.
CRASH_PARAM = "_crash_until_attempt"
#: Reserved params key: sleep this many wall seconds before running.
HANG_PARAM = "_hang_wall_s"
#: Exit code of a deliberately crashed worker (distinctive in logs).
CRASH_EXIT_CODE = 86


@dataclass(frozen=True)
class ExperimentJob:
    """Everything a process needs to run one experiment."""

    index: int
    name: str
    seed: int
    spec: ExperimentSpec
    attempt: int = 0
    artifacts_dir: Optional[str] = None
    label: str = "campaign"


def job_for(
    spec: CampaignSpec,
    index: int,
    attempt: int = 0,
    artifacts_root: Optional[str] = None,
    label: Optional[str] = None,
) -> ExperimentJob:
    """Build the job for experiment ``index`` of a campaign spec.

    The seed comes from the campaign's derivation rule and the shard
    directory from the artifact layout — both pure functions of
    ``(spec, index)``, so every attempt of every executor builds the
    same job (modulo ``attempt``).
    """
    experiment = spec.experiments[index]
    shard = (
        None if artifacts_root is None
        else str(_artifacts.shard_dir(artifacts_root, index,
                                      experiment.name))
    )
    return ExperimentJob(
        index=index,
        name=experiment.name,
        seed=spec.seed_for(index),
        spec=experiment,
        attempt=attempt,
        artifacts_dir=shard,
        label=label or spec.name,
    )


def execute_job(job: ExperimentJob,
                in_process: bool = False) -> ExperimentResult:
    """Run one experiment job to completion; the shared code path.

    With ``job.artifacts_dir`` set, telemetry and capture sessions are
    opened around the run and shard artifacts written on exit.  The
    fault-injection hooks (module docstring) fire only when
    ``in_process`` is false — they exist to kill sacrificial workers,
    never the orchestrating process.
    """
    if not in_process:
        crash_until = job.spec.params.get(CRASH_PARAM)
        if crash_until is not None and job.attempt < int(crash_until):
            os._exit(CRASH_EXIT_CODE)
        hang_s = job.spec.params.get(HANG_PARAM)
        if hang_s:
            time.sleep(float(hang_s))

    experiment = job.spec.materialize(seed=job.seed)
    label = f"{job.label}/{job.name}"
    if job.artifacts_dir is not None:
        telemetry = TelemetrySession(
            out_dir=_artifacts.telemetry_dir(job.artifacts_dir), label=label
        )
        capture = CaptureSession(
            out_dir=_artifacts.capture_dir(job.artifacts_dir), label=label
        )
        with telemetry, capture:
            return experiment.run()
    return experiment.run()


def payload_for(job: ExperimentJob,
                result: ExperimentResult) -> Dict[str, Any]:
    """The JSON/pickle-safe completion message for a finished job."""
    return {
        "index": job.index,
        "name": job.name,
        "seed": job.seed,
        "attempt": job.attempt,
        "result": result_to_dict(result),
    }


def run_job_in_child(conn: Any, job: ExperimentJob) -> None:
    """Child-process entry point: run the job, send one message back.

    Protocol: exactly one ``("ok", payload)`` or ``("error", info)``
    tuple is sent over ``conn``; a connection that closes without a
    message means the worker crashed (the parent then retries with a
    fresh worker and the same seed).
    """
    try:
        result = execute_job(job)
    except BaseException as exc:  # deterministic failure: do not retry
        import traceback

        try:
            conn.send(("error", {
                "index": job.index,
                "name": job.name,
                "type": type(exc).__name__,
                "message": str(exc),
                "traceback": traceback.format_exc(),
            }))
        finally:
            conn.close()
        return
    conn.send(("ok", payload_for(job, result)))
    conn.close()
