"""The per-experiment unit of work, shared by every executor.

One :class:`ExperimentJob` fully describes one experiment run: the
(picklable) spec, the derived seed, the attempt number, and where the
shard's artifacts go.  :func:`execute_job` is **the** code path that
runs an experiment — the serial executor calls it in-process, the
pooled executor ships the job to a child process whose entry point
(:func:`run_job_in_child`) calls the very same function — so serial and
sharded campaigns cannot drift apart behaviourally.

When a job carries an artifacts directory, the experiment runs under
its own private :class:`~repro.telemetry.TelemetrySession` and
:class:`~repro.capture.CaptureSession`, dropping shard artifacts that
:mod:`repro.runtime.artifacts` later merges.

Fault-injection hooks
---------------------
Fittingly for a fault-injection framework, the engine can inject faults
into *itself*: two reserved ``params`` keys let tests (and CI) exercise
the crash-retry and timeout paths end-to-end —

* ``"_crash_until_attempt": n`` — the child process dies abruptly
  (``os._exit``) on attempts ``< n``, then succeeds;
* ``"_hang_wall_s": s`` — the child sleeps ``s`` wall seconds before
  running, tripping the per-experiment timeout (or, on the fabric, the
  lease deadline).  ``"_hang_until_attempt": n`` scopes the hang to
  attempts ``< n`` so re-issued attempts run clean;
* ``"_crash_after_artifacts": n`` — like ``_crash_until_attempt`` but
  the crash lands *after* the shard artifacts are written and promoted,
  exercising the retry-must-not-double-count merge invariant.

All of them only ever fire inside a sacrificial worker process; the
in-process serial executor ignores them.

Lease protocol
--------------
The campaign fabric's work-queue leases also live here (they are part
of the per-experiment contract, not of any one executor): a lease is a
JSON file claimed atomically with ``O_CREAT | O_EXCL``, carrying the
claimer's identity and a wall-clock deadline.  A forfeited lease is
*renamed* to a numbered tombstone — the tombstone count **is** the next
attempt number, so re-issued attempts are derivable from the filesystem
alone, with no coordinator state to lose.
"""

from __future__ import annotations

import errno
import json
import os
import shutil
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.capture import CaptureSession
from repro.nftape.results import ExperimentResult
from repro.runtime import artifacts as _artifacts
from repro.runtime.journal import result_to_dict
from repro.runtime.spec import CampaignSpec, ExperimentSpec
from repro.telemetry import TelemetrySession

__all__ = [
    "ExperimentJob",
    "job_for",
    "execute_job",
    "payload_for",
    "run_job_in_child",
    "CRASH_PARAM",
    "HANG_PARAM",
    "HANG_UNTIL_PARAM",
    "CRASH_AFTER_PARAM",
    "Lease",
    "lease_path",
    "claim_lease",
    "read_lease",
    "release_lease",
    "forfeit_lease",
    "forfeit_count",
]

#: Reserved params key: crash the worker on attempts below the value.
CRASH_PARAM = "_crash_until_attempt"
#: Reserved params key: sleep this many wall seconds before running.
HANG_PARAM = "_hang_wall_s"
#: Reserved params key: limit the hang to attempts below the value.
HANG_UNTIL_PARAM = "_hang_until_attempt"
#: Reserved params key: crash *after* artifact promotion on attempts
#: below the value (the double-count regression hook).
CRASH_AFTER_PARAM = "_crash_after_artifacts"
#: Exit code of a deliberately crashed worker (distinctive in logs).
CRASH_EXIT_CODE = 86


@dataclass(frozen=True)
class ExperimentJob:
    """Everything a process needs to run one experiment."""

    index: int
    name: str
    seed: int
    spec: ExperimentSpec
    attempt: int = 0
    artifacts_dir: Optional[str] = None
    label: str = "campaign"


def job_for(
    spec: CampaignSpec,
    index: int,
    attempt: int = 0,
    artifacts_root: Optional[str] = None,
    label: Optional[str] = None,
) -> ExperimentJob:
    """Build the job for experiment ``index`` of a campaign spec.

    The seed comes from the campaign's derivation rule and the shard
    directory from the artifact layout — both pure functions of
    ``(spec, index)``, so every attempt of every executor builds the
    same job (modulo ``attempt``).
    """
    experiment = spec.experiments[index]
    shard = (
        None if artifacts_root is None
        else str(_artifacts.shard_dir(artifacts_root, index,
                                      experiment.name))
    )
    return ExperimentJob(
        index=index,
        name=experiment.name,
        seed=spec.seed_for(index),
        spec=experiment,
        attempt=attempt,
        artifacts_dir=shard,
        label=label or spec.name,
    )


def _promote_shard(staging: Path, final: Path) -> bool:
    """Atomically install a fully written shard; False when outraced.

    Workers write artifacts into a per-attempt staging directory and
    rename it into place — a crash mid-write leaves only staging debris
    (ignored by the merge), never a torn shard, and when a re-issued or
    duplicate attempt finds the shard already promoted its own copy is
    discarded whole.  Either way the merged artifacts fold each
    experiment exactly once.
    """
    if final.exists():
        shutil.rmtree(staging)
        return False
    try:
        os.rename(staging, final)
    except OSError as exc:
        if exc.errno not in (errno.EEXIST, errno.ENOTEMPTY):
            raise
        shutil.rmtree(staging)  # lost the promotion race
        return False
    return True


def execute_job(job: ExperimentJob,
                in_process: bool = False) -> ExperimentResult:
    """Run one experiment job to completion; the shared code path.

    With ``job.artifacts_dir`` set, telemetry and capture sessions are
    opened around the run and shard artifacts written on exit.  Worker
    processes stage artifacts under ``<shard>.a<attempt>.p<pid>.tmp``
    (pid-qualified so a duplicate lease delivery running the same
    attempt in two processes can never write into one staging dir) and
    promote them with one atomic rename (see :func:`_promote_shard`);
    the in-process serial executor writes directly (it cannot be killed
    mid-experiment without killing the campaign).  The fault-injection
    hooks (module docstring) fire only when ``in_process`` is false —
    they exist to kill sacrificial workers, never the orchestrator.
    """
    if not in_process:
        crash_until = job.spec.params.get(CRASH_PARAM)
        if crash_until is not None and job.attempt < int(crash_until):
            os._exit(CRASH_EXIT_CODE)
        hang_s = job.spec.params.get(HANG_PARAM)
        if hang_s:
            hang_until = job.spec.params.get(HANG_UNTIL_PARAM)
            if hang_until is None or job.attempt < int(hang_until):
                time.sleep(float(hang_s))

    experiment = job.spec.materialize(seed=job.seed)
    label = f"{job.label}/{job.name}"
    if job.artifacts_dir is None:
        return experiment.run()

    final = Path(job.artifacts_dir)
    out_dir = final
    if not in_process:
        out_dir = final.with_name(
            f"{final.name}.a{job.attempt}.p{os.getpid()}.tmp")
        if out_dir.exists():
            shutil.rmtree(out_dir)  # stale debris of a crashed attempt
    telemetry = TelemetrySession(
        out_dir=_artifacts.telemetry_dir(out_dir), label=label
    )
    capture = CaptureSession(
        out_dir=_artifacts.capture_dir(out_dir), label=label
    )
    with telemetry, capture:
        result = experiment.run()
    if not in_process:
        _promote_shard(out_dir, final)
        crash_after = job.spec.params.get(CRASH_AFTER_PARAM)
        if crash_after is not None and job.attempt < int(crash_after):
            os._exit(CRASH_EXIT_CODE)
    return result


def payload_for(job: ExperimentJob,
                result: ExperimentResult) -> Dict[str, Any]:
    """The JSON/pickle-safe completion message for a finished job."""
    return {
        "index": job.index,
        "name": job.name,
        "seed": job.seed,
        "attempt": job.attempt,
        "result": result_to_dict(result),
    }


def run_job_in_child(conn: Any, job: ExperimentJob) -> None:
    """Child-process entry point: run the job, send one message back.

    Protocol: exactly one ``("ok", payload)`` or ``("error", info)``
    tuple is sent over ``conn``; a connection that closes without a
    message means the worker crashed (the parent then retries with a
    fresh worker and the same seed).
    """
    try:
        result = execute_job(job)
    except BaseException as exc:  # deterministic failure: do not retry
        import traceback

        try:
            conn.send(("error", {
                "index": job.index,
                "name": job.name,
                "type": type(exc).__name__,
                "message": str(exc),
                "traceback": traceback.format_exc(),
            }))
        finally:
            conn.close()
        return
    conn.send(("ok", payload_for(job, result)))
    conn.close()


# ---------------------------------------------------------------------------
# the fabric lease protocol (filesystem-backed; see module docstring)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Lease:
    """One claimed experiment: who runs it, which attempt, until when.

    ``deadline_unix`` is wall-clock (``time.time``): leases must be
    comparable across processes — and, tomorrow, across hosts sharing
    the queue directory — which rules out per-process monotonic clocks.
    """

    index: int
    attempt: int
    worker: str
    pid: int
    deadline_unix: float


def lease_path(leases_dir: Union[str, Path], index: int) -> Path:
    """The lease file of experiment ``index``."""
    return Path(leases_dir) / f"exp-{index:03d}.lease"


def _tombstone_path(leases_dir: Union[str, Path], index: int,
                    generation: int) -> Path:
    return Path(leases_dir) / f"exp-{index:03d}.forfeit-{generation}"


def forfeit_count(leases_dir: Union[str, Path], index: int) -> int:
    """Forfeited attempts so far == the next attempt number."""
    count = 0
    while _tombstone_path(leases_dir, index, count).exists():
        count += 1
    return count


def claim_lease(
    leases_dir: Union[str, Path],
    index: int,
    worker: str,
    timeout_s: float,
) -> Optional[Lease]:
    """Atomically claim experiment ``index``; None when already held.

    ``O_CREAT | O_EXCL`` makes the claim a single filesystem
    compare-and-swap — two workers racing for the same index cannot
    both win, whatever the shared filesystem's caching does to reads.
    The attempt number is derived from the forfeit tombstones, so a
    re-issued experiment automatically claims as the next attempt.
    """
    path = lease_path(leases_dir, index)
    lease = Lease(
        index=index,
        attempt=forfeit_count(leases_dir, index),
        worker=worker,
        pid=os.getpid(),
        deadline_unix=time.time() + timeout_s,
    )
    try:
        handle = os.open(str(path), os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return None
    try:
        os.write(handle, json.dumps({
            "index": lease.index,
            "attempt": lease.attempt,
            "worker": lease.worker,
            "pid": lease.pid,
            "deadline_unix": lease.deadline_unix,
        }, sort_keys=True).encode("utf-8"))
    finally:
        os.close(handle)
    return lease


def read_lease(path: Union[str, Path]) -> Optional[Lease]:
    """Parse a lease file; None when missing or torn mid-write."""
    try:
        doc = json.loads(Path(path).read_text(encoding="utf-8"))
        return Lease(
            index=int(doc["index"]),
            attempt=int(doc["attempt"]),
            worker=str(doc["worker"]),
            pid=int(doc["pid"]),
            deadline_unix=float(doc["deadline_unix"]),
        )
    except (OSError, ValueError, KeyError, json.JSONDecodeError):
        return None


def release_lease(leases_dir: Union[str, Path], index: int) -> None:
    """Drop a completed experiment's lease (missing is fine — the
    coordinator may have forfeited it while the worker finished)."""
    try:
        lease_path(leases_dir, index).unlink()
    except FileNotFoundError:
        pass  # simlint: disable=ERR001 -- release is idempotent


def forfeit_lease(leases_dir: Union[str, Path], index: int) -> int:
    """Rename an expired lease to its tombstone; returns next attempt.

    The rename is atomic: either the tombstone exists (forfeit
    happened, exactly once) or the lease file is still claimable.  A
    concurrent release by the (actually alive) worker is tolerated —
    the experiment then completed and re-issue is a no-op because the
    result store keeps one winner regardless.
    """
    generation = forfeit_count(leases_dir, index)
    try:
        os.rename(
            str(lease_path(leases_dir, index)),
            str(_tombstone_path(leases_dir, index, generation)),
        )
    except FileNotFoundError:
        return generation
    return generation + 1
